//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! exposing the API surface this workspace uses (`Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`).
//!
//! There is no statistical analysis, warm-up schedule, or HTML report;
//! each benchmark runs a fixed sampling loop and prints mean time per
//! iteration. Good enough to keep `cargo bench` compiling and giving
//! ballpark numbers offline.

use std::time::{Duration, Instant};

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, preventing its result from being optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

const SAMPLES: usize = 10;
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate iterations per sample to roughly TARGET_SAMPLE.
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(1),
    };
    f(&mut probe);
    let once = probe.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters = if once.is_zero() {
        1000
    } else {
        (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(SAMPLES),
    };
    f(&mut b);
    let total: Duration = b.samples.iter().sum();
    let per_iter = total.as_nanos() as f64 / (iters as f64 * b.samples.len().max(1) as f64);
    println!("bench {id:<40} {per_iter:>12.1} ns/iter ({iters} iters x {SAMPLES} samples)");
}

impl Criterion {
    /// Benchmarks `f` under the name `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs configuration hook (no-op in this shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export point for `black_box` (criterion 0.8 forwards to std).
pub use std::hint::black_box;

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("noop", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
