//! Offline shim for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API implemented over `std::sync`. A poisoned std lock (a writer
//! panicked) is recovered rather than propagated, matching parking_lot's
//! behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (parking_lot-style, non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&self.0).finish()
    }
}

/// Reader-writer lock (parking_lot-style, non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
