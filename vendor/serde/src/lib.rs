//! Offline shim for `serde`: marker traits plus the no-op derive macros.
//!
//! The workspace only *annotates* types with the derives today; nothing
//! serializes through the traits. The macro and trait namespaces are
//! separate, so `serde::Serialize` resolves to the derive macro in
//! `#[derive(...)]` position and to the marker trait in bound position,
//! exactly as with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
