//! Offline shim for `crossbeam`: scoped threads with the crossbeam
//! calling convention, implemented over `std::thread::scope`.
//!
//! The crossbeam API differs from std in two ways this shim preserves:
//! the spawned closure receives a `&Scope` argument (for nested spawns),
//! and `scope` returns a `Result` rather than propagating worker panics
//! directly.

pub mod thread {
    use std::thread::Result as ThreadResult;

    /// A scope for spawning borrowing threads (crossbeam calling
    /// convention over [`std::thread::Scope`]).
    #[repr(transparent)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the worker's panic as
    /// an `Err` instead of propagating it.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> ThreadResult<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it
        /// can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(self)))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// Unjoined-worker panics surface when `std::thread::scope` unwinds,
    /// as with crossbeam; the `Ok` wrapper keeps crossbeam's
    /// `Result`-returning signature for call sites that `.expect()` it.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            // SAFETY: `Scope` is a `repr(transparent)` wrapper around
            // `std::thread::Scope`, so the reference cast is layout- and
            // lifetime-preserving.
            let wrapped: &Scope<'_, 'env> =
                unsafe { &*(s as *const std::thread::Scope<'_, 'env> as *const Scope<'_, 'env>) };
            f(wrapped)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn worker_panic_is_a_join_error() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> usize { panic!("boom") });
            h.join().is_err()
        })
        .unwrap();
        assert!(r);
    }
}
