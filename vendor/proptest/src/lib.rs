//! Offline shim for `proptest`: a deterministic property-testing
//! mini-engine implementing the API surface this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics immediately with the
//!   assertion message; rerun with the same build to reproduce (the RNG
//!   is seeded from the test name, overridable via `PROPTEST_SEED`).
//! - **Strategies are samplers.** [`strategy::Strategy`] generates a
//!   value per case; there is no `ValueTree`.
//! - Default case count is 64 (override per-block with
//!   `ProptestConfig::with_cases` or globally with `PROPTEST_CASES`).

pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    /// The name proptest exports in its prelude.
    pub use Config as ProptestConfig;

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and is not counted.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (filtered input) with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic RNG driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from the test name (FNV-1a), mixed with `PROPTEST_SEED`
        /// when set, so every test draws an independent stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                h ^= seed.rotate_left(17);
            }
            Self(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Bias is irrelevant for test-input generation.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic sampler over the input domain.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the next level. `depth` bounds
        /// the recursion; the remaining parameters (desired size and
        /// branching hints) are accepted for API compatibility.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let leaf = base.clone();
                let deeper = current.clone();
                // Each level's children are a 50/50 mix of leaves and
                // the previous level, keeping expected tree size linear
                // in depth while still exercising full-depth nesting.
                let mixed = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
                current = f(mixed).boxed();
            }
            current
        }

        /// Type-erases the strategy into a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let x = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    // Guard against rounding up to the excluded endpoint.
                    if x >= self.end { self.start } else { x }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }

    /// Strings from a `[class]{m,n}`-style pattern (see
    /// [`crate::string::pattern`]); real proptest interprets `&str` as a
    /// full regex, this shim supports the subset the workspace uses.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::pattern(self).generate(rng)
        }
    }

    /// Lazy strategy marker used by this shim's `any::<T>()`.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{AnyStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Samples an arbitrary value of the type.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Finite full-range doubles (no NaN/inf: the workspace's
        /// properties quantify over the valid numeric domain).
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = (rng.below(613) as i32 - 306) as f64;
            m * 10f64.powf(e)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone + 'static>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }

    /// The [`select`] strategy.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `[class]{m,n}`-subset regex pattern: sequences of
    /// literal characters or `[...]` classes (with `a-z` ranges), each
    /// optionally repeated with `{m}`, `{m,n}`, `?`, `+`, or `*`.
    pub fn pattern(pat: &str) -> PatternStrategy {
        PatternStrategy::parse(pat)
    }

    #[derive(Debug, Clone)]
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize, // inclusive
    }

    /// A parsed string pattern.
    #[derive(Debug, Clone)]
    pub struct PatternStrategy {
        atoms: Vec<Atom>,
    }

    impl PatternStrategy {
        fn parse(pat: &str) -> Self {
            let chars: Vec<char> = pat.chars().collect();
            let mut atoms = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let choices = if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated character class")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "inverted class range");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                let (min, max) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition bound"),
                            hi.trim().parse().expect("bad repetition bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                } else if i < chars.len() && "?+*".contains(chars[i]) {
                    let op = chars[i];
                    i += 1;
                    match op {
                        '?' => (0, 1),
                        '+' => (1, 8),
                        _ => (0, 8),
                    }
                } else {
                    (1, 1)
                };
                assert!(!choices.is_empty() && min <= max, "degenerate pattern atom");
                atoms.push(Atom { choices, min, max });
            }
            Self { atoms }
        }
    }

    impl Strategy for PatternStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-shaped re-exports matching `proptest::prelude::prop::*`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])+
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(100);
            while __passed < __config.cases {
                ::std::assert!(
                    __attempts < __max_attempts,
                    "proptest: too many rejected cases ({} attempts for {} passes)",
                    __attempts,
                    __passed
                );
                __attempts += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!("proptest case failed: {}", msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("{} at {}:{}", ::std::format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, ::std::format!($($fmt)*));
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "both sides equal {:?}", a);
    }};
}

/// Rejects the current case (not counted) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(usize),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..2.5, b in 1u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_and_tuple_compose(v in prop::collection::vec((0u32..10, 0.0f64..1.0), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, f) in &v {
                prop_assert!(*n < 10 && (0.0..1.0).contains(f));
            }
        }

        #[test]
        fn map_select_and_assume(x in prop::sample::select(vec![1usize, 2, 4]).prop_map(|v| v * 3)) {
            prop_assume!(x != 6);
            prop_assert!(x == 3 || x == 12);
        }

        #[test]
        fn string_pattern_matches_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn recursive_strategy_bounds_depth(
            t in (0usize..8).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
