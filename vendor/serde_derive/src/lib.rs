//! Offline shim for `serde_derive`: the derives are accepted and emit
//! nothing, so `#[derive(serde::Serialize, serde::Deserialize)]`
//! annotations compile without pulling in the real serde machinery.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
