//! # xlda — cross-layer design assessment of technology-enabled architectures
//!
//! A from-scratch Rust reproduction of *"Cross Layer Design for the
//! Predictive Assessment of Technology-Enabled Architectures"*
//! (Niemier et al., DATE 2023): the complete modeling stack needed to ask
//! — quantitatively, in seconds — whether a new memory device, wired into
//! a new in-memory-compute architecture, is worth pursuing for a given
//! application workload.
//!
//! This crate is a facade re-exporting the workspace layers:
//!
//! | Module | Layer | Contents |
//! |--------|-------|----------|
//! | [`num`] | math | deterministic PRNG, statistics, matrices, solvers |
//! | [`circuit`] | circuits | tech nodes, gates, wires, sense amps, matchlines, ADCs |
//! | [`device`] | devices | FeFET, RRAM, PCM, MRAM, SRAM, flash models |
//! | [`evacam`] | arrays | Eva-CAM-style CAM area/latency/energy model |
//! | [`nvram`] | arrays | NVSim/DESTINY-style RAM model |
//! | [`crossbar`] | arrays | analog MVM crossbar simulator + macro model |
//! | [`datagen`] | data | synthetic HDC and few-shot datasets |
//! | [`hdc`] | algorithms | hyperdimensional computing + FeFET CAM mapping |
//! | [`mann`] | algorithms | few-shot MANN + RRAM crossbar mapping |
//! | [`baseline`] | systems | CPU/GPU/TPU roofline baselines |
//! | [`syssim`] | systems | event-driven system simulator with crossbar offload |
//! | [`core`] | framework | FOMs, Pareto, triage, sensitivity, profiling |
//!
//! # Quickstart
//!
//! ```
//! use xlda::core::evaluate::{HdcScenario, Scenario};
//! use xlda::core::triage::{rank, Objective};
//!
//! // Evaluate every platform mapping of an HDC workload and triage.
//! let candidates = HdcScenario::default().candidates().expect("default models");
//! let ranking = rank(&candidates, &Objective::latency_first(Some(0.9)));
//! println!("best design point: {}", ranking[0].name);
//! ```
//!
//! See `examples/` for end-to-end walkthroughs of both paper case
//! studies and `crates/bench/src/bin/` for the figure-by-figure
//! reproduction harness.

pub use xlda_baseline as baseline;
pub use xlda_circuit as circuit;
pub use xlda_core as core;
pub use xlda_crossbar as crossbar;
pub use xlda_datagen as datagen;
pub use xlda_device as device;
pub use xlda_evacam as evacam;
pub use xlda_hdc as hdc;
pub use xlda_mann as mann;
pub use xlda_num as num;
pub use xlda_nvram as nvram;
pub use xlda_syssim as syssim;
