//! Seeded synthetic datasets standing in for the paper's benchmarks.
//!
//! The paper's case studies evaluate on ISOLET, UCI-HAR, language
//! identification (HDC, Sec. III) and Omniglot / miniImageNet (few-shot
//! MANN, Sec. IV). Those datasets are external artifacts; what the
//! accuracy *trends* in Figs. 3 and 4 depend on is class-cluster geometry
//! — intra-class spread versus inter-class separation — which these
//! generators control explicitly (see DESIGN.md §2 for the substitution
//! argument).
//!
//! - [`classification`] — feature-vector datasets with tunable
//!   separability, with presets shaped like the paper's HDC benchmarks;
//! - [`fewshot`] — a stroke-based image generator with episode sampling
//!   for N-way K-shot evaluation.

pub mod classification;
pub mod fewshot;

pub use classification::{ClassificationSpec, Dataset};
pub use fewshot::{Episode, FewShotSpec, ImageSet};
