//! Omniglot-like few-shot image data.
//!
//! Omniglot's defining property is *many classes, few samples each*, with
//! classes defined by stroke structure. The generator reproduces that:
//! each class is a prototype stroke drawing on a 28×28 canvas (a few
//! random-walk strokes), and samples are redraws with jittered stroke
//! control points plus pixel noise — analogous to different writers.
//!
//! Classes are split into a *background* set (for training the CNN
//! feature extractor) and an *evaluation* set (for episodes), mirroring
//! the standard Omniglot protocol the paper's MANN study follows.

use xlda_num::rng::Rng64;

/// Image side length in pixels.
pub const IMAGE_SIDE: usize = 28;

/// Specification of a few-shot image dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct FewShotSpec {
    /// Classes reserved for training the feature extractor.
    pub background_classes: usize,
    /// Classes reserved for few-shot episodes.
    pub eval_classes: usize,
    /// Samples drawn per class.
    pub samples_per_class: usize,
    /// Stroke jitter (pixels, one sigma) between samples of a class.
    pub jitter: f64,
    /// Additive pixel noise sigma.
    pub pixel_noise: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for FewShotSpec {
    /// A laptop-scale Omniglot stand-in: 64 background + 32 eval classes,
    /// 20 samples each.
    fn default() -> Self {
        Self {
            background_classes: 64,
            eval_classes: 32,
            samples_per_class: 20,
            jitter: 1.0,
            pixel_noise: 0.05,
            seed: 0x03_1907,
        }
    }
}

/// One grayscale image (values in `[0, 1]`, row-major 28×28).
pub type Image = Vec<f64>;

/// A generated few-shot dataset.
#[derive(Debug, Clone)]
pub struct ImageSet {
    /// Background-split images, grouped per class.
    pub background: Vec<Vec<Image>>,
    /// Evaluation-split images, grouped per class.
    pub eval: Vec<Vec<Image>>,
}

/// Stroke prototype: a list of poly-line control points per stroke.
#[derive(Debug, Clone)]
struct ClassPrototype {
    strokes: Vec<Vec<(f64, f64)>>,
}

impl ClassPrototype {
    fn random(rng: &mut Rng64) -> Self {
        let stroke_count = 2 + rng.index(3); // 2..=4 strokes
        let strokes = (0..stroke_count)
            .map(|_| {
                let points = 3 + rng.index(3); // 3..=5 control points
                let mut x = 4.0 + rng.uniform() * 20.0;
                let mut y = 4.0 + rng.uniform() * 20.0;
                let mut pts = vec![(x, y)];
                for _ in 1..points {
                    x = (x + rng.normal(0.0, 6.0)).clamp(2.0, 26.0);
                    y = (y + rng.normal(0.0, 6.0)).clamp(2.0, 26.0);
                    pts.push((x, y));
                }
                pts
            })
            .collect();
        Self { strokes }
    }

    /// Renders the prototype with per-point jitter into a 28×28 canvas.
    fn render(&self, jitter: f64, pixel_noise: f64, rng: &mut Rng64) -> Image {
        let mut img = vec![0.0; IMAGE_SIDE * IMAGE_SIDE];
        for stroke in &self.strokes {
            let jittered: Vec<(f64, f64)> = stroke
                .iter()
                .map(|&(x, y)| {
                    (
                        (x + rng.normal(0.0, jitter)).clamp(0.0, 27.0),
                        (y + rng.normal(0.0, jitter)).clamp(0.0, 27.0),
                    )
                })
                .collect();
            for seg in jittered.windows(2) {
                draw_line(&mut img, seg[0], seg[1]);
            }
        }
        if pixel_noise > 0.0 {
            for p in &mut img {
                *p = (*p + rng.normal(0.0, pixel_noise)).clamp(0.0, 1.0);
            }
        }
        img
    }
}

/// Draws an anti-aliased-ish line by stamping soft dots along the segment.
fn draw_line(img: &mut [f64], a: (f64, f64), b: (f64, f64)) {
    let dist = ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt();
    let steps = (dist * 2.0).ceil().max(1.0) as usize;
    for s in 0..=steps {
        let t = s as f64 / steps as f64;
        let x = a.0 + t * (b.0 - a.0);
        let y = a.1 + t * (b.1 - a.1);
        stamp(img, x, y);
    }
}

fn stamp(img: &mut [f64], x: f64, y: f64) {
    let xi = x.round() as i64;
    let yi = y.round() as i64;
    for dy in -1..=1i64 {
        for dx in -1..=1i64 {
            let (px, py) = (xi + dx, yi + dy);
            if (0..IMAGE_SIDE as i64).contains(&px) && (0..IMAGE_SIDE as i64).contains(&py) {
                let w = if dx == 0 && dy == 0 { 1.0 } else { 0.35 };
                let idx = (py as usize) * IMAGE_SIDE + px as usize;
                img[idx] = (img[idx] + w).min(1.0);
            }
        }
    }
}

impl FewShotSpec {
    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics if any class or sample count is zero.
    pub fn generate(&self) -> ImageSet {
        assert!(
            self.background_classes > 0 && self.eval_classes > 0,
            "class counts must be positive"
        );
        assert!(self.samples_per_class > 0, "need at least one sample");
        let mut rng = Rng64::new(self.seed);
        let gen_split = |classes: usize, rng: &mut Rng64| -> Vec<Vec<Image>> {
            (0..classes)
                .map(|_| {
                    let proto = ClassPrototype::random(rng);
                    (0..self.samples_per_class)
                        .map(|_| proto.render(self.jitter, self.pixel_noise, rng))
                        .collect()
                })
                .collect()
        };
        let background = gen_split(self.background_classes, &mut rng);
        let eval = gen_split(self.eval_classes, &mut rng);
        ImageSet { background, eval }
    }
}

/// One N-way K-shot episode: support set (learning) and query set (test).
#[derive(Debug, Clone)]
pub struct Episode {
    /// Support images with episode-local labels `0..n_way`.
    pub support: Vec<(Image, usize)>,
    /// Query images with episode-local labels.
    pub query: Vec<(Image, usize)>,
    /// Number of classes in the episode.
    pub n_way: usize,
}

impl ImageSet {
    /// Samples an `n_way`-way `k_shot`-shot episode with `queries_per_way`
    /// query images per class from the evaluation split.
    ///
    /// # Panics
    ///
    /// Panics if the evaluation split has fewer than `n_way` classes or a
    /// class has fewer than `k_shot + queries_per_way` samples.
    pub fn sample_episode(
        &self,
        n_way: usize,
        k_shot: usize,
        queries_per_way: usize,
        rng: &mut Rng64,
    ) -> Episode {
        assert!(n_way <= self.eval.len(), "not enough evaluation classes");
        let need = k_shot + queries_per_way;
        let class_ids = rng.sample_indices(self.eval.len(), n_way);
        let mut support = Vec::new();
        let mut query = Vec::new();
        for (local, &cid) in class_ids.iter().enumerate() {
            let class = &self.eval[cid];
            assert!(class.len() >= need, "class too small for episode");
            let picks = rng.sample_indices(class.len(), need);
            for &p in &picks[..k_shot] {
                support.push((class[p].clone(), local));
            }
            for &p in &picks[k_shot..] {
                query.push((class[p].clone(), local));
            }
        }
        Episode {
            support,
            query,
            n_way,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_num::stats::mean;

    fn small_spec() -> FewShotSpec {
        FewShotSpec {
            background_classes: 6,
            eval_classes: 8,
            samples_per_class: 10,
            ..FewShotSpec::default()
        }
    }

    #[test]
    fn generation_deterministic_and_shaped() {
        let a = small_spec().generate();
        let b = small_spec().generate();
        assert_eq!(a.background.len(), 6);
        assert_eq!(a.eval.len(), 8);
        assert_eq!(a.background[0].len(), 10);
        assert_eq!(a.background[0][0].len(), IMAGE_SIDE * IMAGE_SIDE);
        assert_eq!(a.background[2][3], b.background[2][3]);
    }

    #[test]
    fn pixels_in_unit_range_and_nonempty() {
        let set = small_spec().generate();
        for img in &set.eval[0] {
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // Strokes must actually draw something.
            assert!(mean(img) > 0.01, "blank image");
        }
    }

    #[test]
    fn same_class_images_more_similar_than_cross_class() {
        let set = FewShotSpec {
            pixel_noise: 0.0,
            ..small_spec()
        }
        .generate();
        let d = |a: &Image, b: &Image| xlda_num::matrix::squared_euclidean(a, b);
        let within = d(&set.eval[0][0], &set.eval[0][1]);
        let across = d(&set.eval[0][0], &set.eval[1][0]);
        assert!(within < across, "within {within} across {across}");
    }

    #[test]
    fn episode_shapes() {
        let set = small_spec().generate();
        let mut rng = Rng64::new(5);
        let ep = set.sample_episode(5, 1, 4, &mut rng);
        assert_eq!(ep.n_way, 5);
        assert_eq!(ep.support.len(), 5);
        assert_eq!(ep.query.len(), 20);
        // Labels are episode-local.
        assert!(ep.support.iter().all(|(_, l)| *l < 5));
        assert!(ep.query.iter().all(|(_, l)| *l < 5));
    }

    #[test]
    fn episodes_vary_with_rng() {
        let set = small_spec().generate();
        let mut rng = Rng64::new(6);
        let a = set.sample_episode(3, 1, 2, &mut rng);
        let b = set.sample_episode(3, 1, 2, &mut rng);
        assert!(a.support[0].0 != b.support[0].0 || a.query[0].0 != b.query[0].0);
    }

    #[test]
    #[should_panic(expected = "not enough evaluation classes")]
    fn too_many_ways_panics() {
        let set = small_spec().generate();
        set.sample_episode(100, 1, 1, &mut Rng64::new(7));
    }
}
