//! Cluster-structured classification datasets.
//!
//! Each class is a random prototype direction on the unit hypersphere;
//! samples are the prototype plus isotropic Gaussian noise, re-normalized.
//! The `noise` parameter controls intra/inter-class geometry: small noise
//! means tight, separable clusters; large noise approaches chance level.

use xlda_num::matrix::Matrix;
use xlda_num::rng::Rng64;

/// Specification of a synthetic classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationSpec {
    /// Human-readable name (reports and figures).
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Intra-class noise sigma relative to the unit prototype.
    pub noise: f64,
    /// Generator seed.
    pub seed: u64,
}

impl ClassificationSpec {
    /// ISOLET-like: 26 classes, 617 features (spoken-letter shaped).
    pub fn isolet_like() -> Self {
        Self {
            name: "isolet-like",
            classes: 26,
            dim: 617,
            train_per_class: 60,
            test_per_class: 20,
            noise: 0.9,
            seed: 0x150_1e7,
        }
    }

    /// UCI-HAR-like: 6 classes, 561 features (activity recognition).
    pub fn ucihar_like() -> Self {
        Self {
            name: "ucihar-like",
            classes: 6,
            dim: 561,
            train_per_class: 120,
            test_per_class: 40,
            noise: 0.8,
            seed: 0x4a12,
        }
    }

    /// Language-identification-like: 21 classes, 1024 n-gram features.
    pub fn language_like() -> Self {
        Self {
            name: "language-like",
            classes: 21,
            dim: 1024,
            train_per_class: 50,
            test_per_class: 25,
            noise: 0.7,
            seed: 0x1a6_0a6e,
        }
    }

    /// EMG-gesture-like: 5 classes, 256 features (small edge workload).
    pub fn emg_like() -> Self {
        Self {
            name: "emg-like",
            classes: 5,
            dim: 256,
            train_per_class: 80,
            test_per_class: 30,
            noise: 0.75,
            seed: 0xe396,
        }
    }

    /// The four HDC benchmark stand-ins used across Fig. 3 experiments.
    pub fn hdc_suite() -> Vec<Self> {
        vec![
            Self::isolet_like(),
            Self::ucihar_like(),
            Self::language_like(),
            Self::emg_like(),
        ]
    }

    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics if classes, dim, or per-class counts are zero.
    pub fn generate(&self) -> Dataset {
        assert!(
            self.classes > 0 && self.dim > 0,
            "classes and dim must be positive"
        );
        assert!(
            self.train_per_class > 0 && self.test_per_class > 0,
            "per-class sample counts must be positive"
        );
        let mut rng = Rng64::new(self.seed);
        // Class prototypes: random unit vectors.
        let mut prototypes = Matrix::zeros(self.classes, self.dim);
        for c in 0..self.classes {
            let v = rng.normal_vec(self.dim, 0.0, 1.0);
            let n = xlda_num::matrix::norm(&v);
            for (slot, x) in prototypes.row_mut(c).iter_mut().zip(&v) {
                *slot = x / n;
            }
        }
        let sample = |class: usize, rng: &mut Rng64| -> Vec<f64> {
            let proto = prototypes.row(class);
            let mut v: Vec<f64> = proto
                .iter()
                .map(|&p| p + rng.normal(0.0, self.noise / (self.dim as f64).sqrt()))
                .collect();
            let n = xlda_num::matrix::norm(&v).max(1e-12);
            for x in &mut v {
                *x /= n;
            }
            v
        };

        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for c in 0..self.classes {
            for _ in 0..self.train_per_class {
                train_x.extend(sample(c, &mut rng));
                train_y.push(c);
            }
            for _ in 0..self.test_per_class {
                test_x.extend(sample(c, &mut rng));
                test_y.push(c);
            }
        }
        Dataset {
            name: self.name,
            classes: self.classes,
            train: Matrix::from_vec(train_y.len(), self.dim, train_x),
            train_labels: train_y,
            test: Matrix::from_vec(test_y.len(), self.dim, test_x),
            test_labels: test_y,
        }
    }
}

/// A generated dataset: row-per-sample feature matrices plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name.
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Training features, one sample per row.
    pub train: Matrix,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Test features, one sample per row.
    pub test: Matrix,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.train.cols()
    }

    /// Nearest-prototype (centroid, cosine) classification accuracy on
    /// the test set — the software skyline for this dataset.
    pub fn centroid_accuracy(&self) -> f64 {
        let mut centroids = Matrix::zeros(self.classes, self.dim());
        let mut counts = vec![0usize; self.classes];
        for (i, &c) in self.train_labels.iter().enumerate() {
            let row = self.train.row(i);
            for (slot, &x) in centroids.row_mut(c).iter_mut().zip(row) {
                *slot += x;
            }
            counts[c] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            let n = count.max(1) as f64;
            for slot in centroids.row_mut(c) {
                *slot /= n;
            }
        }
        let mut correct = 0usize;
        for (i, &label) in self.test_labels.iter().enumerate() {
            let x = self.test.row(i);
            let mut best = 0usize;
            let mut best_sim = f64::NEG_INFINITY;
            for c in 0..self.classes {
                let s = xlda_num::matrix::cosine_similarity(x, centroids.row(c));
                if s > best_sim {
                    best_sim = s;
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        correct as f64 / self.test_labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ClassificationSpec::emg_like().generate();
        let b = ClassificationSpec::emg_like().generate();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test_labels, b.test_labels);
    }

    #[test]
    fn shapes_match_spec() {
        let spec = ClassificationSpec::ucihar_like();
        let d = spec.generate();
        assert_eq!(d.train.rows(), spec.classes * spec.train_per_class);
        assert_eq!(d.test.rows(), spec.classes * spec.test_per_class);
        assert_eq!(d.dim(), spec.dim);
        assert_eq!(d.classes, 6);
    }

    #[test]
    fn samples_are_unit_norm() {
        let d = ClassificationSpec::emg_like().generate();
        for i in 0..d.train.rows() {
            let n = xlda_num::matrix::norm(d.train.row(i));
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn presets_are_learnable_but_not_trivial() {
        for spec in ClassificationSpec::hdc_suite() {
            let acc = spec.generate().centroid_accuracy();
            let chance = 1.0 / spec.classes as f64;
            assert!(
                acc > 0.85 && acc <= 1.0,
                "{name}: accuracy {acc} (chance {chance})",
                name = spec.name
            );
        }
    }

    #[test]
    fn more_noise_less_accuracy() {
        let mut spec = ClassificationSpec::emg_like();
        spec.noise = 0.4;
        let clean = spec.generate().centroid_accuracy();
        spec.noise = 6.0;
        let noisy = spec.generate().centroid_accuracy();
        assert!(clean > noisy, "clean {clean} noisy {noisy}");
        assert!(noisy < 1.0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = ClassificationSpec::emg_like();
        let a = spec.generate();
        spec.seed += 1;
        let b = spec.generate();
        assert_ne!(a.train, b.train);
    }
}
