//! Property-based tests for the dataset generators.

use proptest::prelude::*;
use xlda_datagen::classification::ClassificationSpec;
use xlda_datagen::fewshot::{FewShotSpec, IMAGE_SIDE};
use xlda_num::rng::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn classification_shapes_always_match_spec(
        classes in 2usize..10,
        dim in 8usize..128,
        train in 2usize..20,
        test in 1usize..10,
        noise in 0.1f64..4.0,
        seed in any::<u64>(),
    ) {
        let spec = ClassificationSpec {
            name: "prop",
            classes,
            dim,
            train_per_class: train,
            test_per_class: test,
            noise,
            seed,
        };
        let d = spec.generate();
        prop_assert_eq!(d.train.rows(), classes * train);
        prop_assert_eq!(d.test.rows(), classes * test);
        prop_assert_eq!(d.dim(), dim);
        prop_assert!(d.train_labels.iter().all(|&l| l < classes));
        prop_assert!(d.test_labels.iter().all(|&l| l < classes));
        // Every class appears in both splits.
        for c in 0..classes {
            prop_assert!(d.train_labels.iter().filter(|&&l| l == c).count() == train);
            prop_assert!(d.test_labels.iter().filter(|&&l| l == c).count() == test);
        }
    }

    #[test]
    fn classification_samples_unit_norm(
        classes in 2usize..6,
        dim in 8usize..64,
        noise in 0.1f64..4.0,
        seed in any::<u64>(),
    ) {
        let spec = ClassificationSpec {
            name: "prop",
            classes,
            dim,
            train_per_class: 3,
            test_per_class: 2,
            noise,
            seed,
        };
        let d = spec.generate();
        for i in 0..d.train.rows() {
            let n = xlda_num::matrix::norm(d.train.row(i));
            prop_assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_spec(seed in any::<u64>()) {
        let mut spec = ClassificationSpec::emg_like();
        spec.seed = seed;
        spec.train_per_class = 4;
        spec.test_per_class = 2;
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a.train, b.train);
        prop_assert_eq!(a.test, b.test);
    }

    #[test]
    fn images_are_valid_grayscale(
        bg in 1usize..5,
        ev in 2usize..6,
        samples in 2usize..6,
        seed in any::<u64>(),
    ) {
        let set = FewShotSpec {
            background_classes: bg,
            eval_classes: ev,
            samples_per_class: samples,
            seed,
            ..FewShotSpec::default()
        }
        .generate();
        prop_assert_eq!(set.background.len(), bg);
        prop_assert_eq!(set.eval.len(), ev);
        for class in set.background.iter().chain(set.eval.iter()) {
            prop_assert_eq!(class.len(), samples);
            for img in class {
                prop_assert_eq!(img.len(), IMAGE_SIDE * IMAGE_SIDE);
                prop_assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn episodes_have_consistent_structure(
        n_way in 2usize..5,
        k_shot in 1usize..3,
        queries in 1usize..4,
        seed in any::<u64>(),
    ) {
        let set = FewShotSpec {
            background_classes: 2,
            eval_classes: 6,
            samples_per_class: 8,
            ..FewShotSpec::default()
        }
        .generate();
        let mut rng = Rng64::new(seed);
        let ep = set.sample_episode(n_way, k_shot, queries, &mut rng);
        prop_assert_eq!(ep.support.len(), n_way * k_shot);
        prop_assert_eq!(ep.query.len(), n_way * queries);
        for label in 0..n_way {
            prop_assert_eq!(
                ep.support.iter().filter(|(_, l)| *l == label).count(),
                k_shot
            );
            prop_assert_eq!(
                ep.query.iter().filter(|(_, l)| *l == label).count(),
                queries
            );
        }
    }
}
