//! Numerical substrate for the `xlda` cross-layer modeling stack.
//!
//! Every other crate in the workspace builds on this one. It provides:
//!
//! - [`rng::Rng64`] — a small, fast, fully deterministic PRNG
//!   (xoshiro256\*\*) with uniform, Gaussian, and Bernoulli sampling, so
//!   that every Monte-Carlo experiment in the stack is reproducible from a
//!   single `u64` seed;
//! - [`stats`] — summary statistics, Pearson correlation, and histograms
//!   used when analyzing accuracy/variation sweeps;
//! - [`matrix::Matrix`] — a dense row-major `f64` matrix with the small set
//!   of operations the crossbar and neural-network models need;
//! - [`solve`] — iterative and direct linear solvers used by the crossbar
//!   IR-drop model (Gauss–Seidel on resistive grids, Thomas algorithm for
//!   tridiagonal systems);
//! - [`memo`] — the sharded, instrumented memoization caches the layer
//!   crates use to share sub-evaluations across design-space sweep points;
//! - [`trial`] — structure-of-arrays Monte-Carlo trial batches with
//!   per-trial `(seed, index)`-derived streams, distribution summaries,
//!   and determinism checksums for the variation-aware scenarios;
//! - [`batch`] — structure-of-arrays candidate batches, exact-key hoist
//!   caches, and lane-unrolled column passes backing the columnar sweep
//!   kernels in `xlda_core::evaluate`.
//!
//! # Examples
//!
//! ```
//! use xlda_num::rng::Rng64;
//! use xlda_num::stats::mean;
//!
//! let mut rng = Rng64::new(42);
//! let samples: Vec<f64> = (0..1000).map(|_| rng.normal(0.0, 1.0)).collect();
//! assert!(mean(&samples).abs() < 0.2);
//! ```

pub mod batch;
pub mod matrix;
pub mod memo;
pub mod rng;
pub mod solve;
pub mod stats;
pub mod trial;

pub use matrix::Matrix;
pub use rng::Rng64;
