//! Cross-sweep memoization substrate.
//!
//! Design-space sweeps are highly redundant: thousands of points
//! re-derive the same decoder, driver-chain, matchline, and crossbar
//! sub-problems because neighbouring design points share most of their
//! substrate. This module provides the shared machinery the layer crates
//! use to memoize those sub-evaluations process-wide:
//!
//! - [`ShardedCache`]: a concurrent hash map split into shards so sweep
//!   workers on different keys do not serialize on one lock, with atomic
//!   hit/miss counters;
//! - [`quantize`]: the cache-key quantization policy for `f64` model
//!   parameters (see below);
//! - a process-global registry ([`snapshot`], [`clear_all`],
//!   [`set_enabled`]) so the sweep engine can report per-cache hit rates
//!   and tests can compare memoized against memo-free evaluations.
//!
//! # Key quantization policy
//!
//! Floating-point cache keys are the bit patterns of the parameters
//! rounded to [`SIG_BITS`] significant mantissa bits (round to nearest),
//! with `-0.0` canonicalized to `+0.0` and all NaNs collapsed to one
//! key. At 44 significant bits the rounding step is ~6e-14 relative —
//! far below the spacing of any physically meaningful parameter grid, so
//! two *distinct* sweep parameters never collide in practice, while the
//! same parameter always produces the same key no matter which sweep
//! point derived it. Cached values are the exact `f64` results of the
//! first evaluation, which is what makes memoized sweeps bit-identical
//! to memo-free ones (see `tests/cache_transparency.rs`).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Number of significant mantissa bits kept by [`quantize`].
pub const SIG_BITS: u32 = 44;

/// Shards per cache: enough that workers rarely contend on one lock,
/// few enough that `len`/`clear` sweeps stay cheap.
const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables all memoization.
///
/// While disabled, [`ShardedCache::get_or_insert_with`] computes every
/// call directly (no lookups, no insertions, no stats). Used by the
/// cache-transparency tests and by benchmarks measuring the memo-free
/// baseline path.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether memoization is currently enabled (default: true).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process-wide monotonic lookup totals, maintained alongside the
/// per-cache counters so callers can attribute cache traffic to a slice
/// of work with two relaxed loads — [`snapshot`] walks the registry and
/// every shard lock, far too heavy for a per-request delta.
///
/// Unlike the per-cache stats these survive [`clear_all`] (they count
/// lookups, not contents), so before/after differences are always
/// non-negative. Concurrent workers' lookups land in the same totals:
/// deltas taken around a slice of work are attribution hints, exact only
/// when that slice ran alone.
static TOTAL_HITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(hits, misses)` across every cache since process start.
pub fn totals() -> (u64, u64) {
    (
        TOTAL_HITS.load(Ordering::Relaxed),
        TOTAL_MISSES.load(Ordering::Relaxed),
    )
}

/// Quantizes an `f64` model parameter into a cache-key word under the
/// module's quantization policy (see module docs).
pub fn quantize(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    if x.is_infinite() {
        // Distinct keys for the two infinities, away from finite space.
        return u64::MAX - if x > 0.0 { 1 } else { 2 };
    }
    let x = if x == 0.0 { 0.0 } else { x }; // -0.0 -> +0.0
    let drop = 52 - SIG_BITS;
    let half = 1u64 << (drop - 1);
    // Round-to-nearest in the dropped mantissa bits. A carry out of the
    // mantissa correctly rolls into the exponent (next binade); the sign
    // bit is untouched because finite exponents never overflow into it.
    (x.to_bits().wrapping_add(half)) & !((1u64 << drop) - 1)
}

/// Hit/miss counters for one cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A concurrent memoization cache split into [`SHARDS`] lock shards.
///
/// Values are cloned out; under a racing double-compute the first stored
/// value wins, keeping results deterministic for pure evaluators.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached value for `key`, computing and storing it with
    /// `compute` on a miss. Bypasses the cache entirely while the global
    /// memo switch is off.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        if !enabled() {
            return compute();
        }
        let shard = self.shard(&key);
        if let Some(v) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            TOTAL_HITS.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        TOTAL_MISSES.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
        guard.entry(key).or_insert(value).clone()
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry and resets the hit/miss counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.stats.reset();
    }

    /// This cache's hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// One registered cache's counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Registered cache name, e.g. `"circuit.decoder"`.
    pub name: &'static str,
    /// Cumulative hits.
    pub hits: u64,
    /// Cumulative misses.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
}

impl CacheSnapshot {
    /// Hits over total lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Probe = fn() -> (u64, u64, u64);
type Clearer = fn();

static REGISTRY: Mutex<Vec<(&'static str, Probe, Clearer)>> = Mutex::new(Vec::new());

/// Registers a cache's stats probe and clear hook under `name`.
///
/// Called once from each memo site's lazy initializer (see
/// [`memo_cache!`](crate::memo_cache)); duplicate names are allowed but
/// make snapshots ambiguous, so sites use `crate.site` naming.
pub fn register(name: &'static str, probe: Probe, clearer: Clearer) {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((name, probe, clearer));
}

/// Counters of every registered cache, sorted by name.
///
/// Caches register lazily on first use, so a cache never exercised does
/// not appear.
pub fn snapshot() -> Vec<CacheSnapshot> {
    let mut out: Vec<CacheSnapshot> = REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, probe, _)| {
            let (hits, misses, entries) = probe();
            CacheSnapshot {
                name,
                hits,
                misses,
                entries,
            }
        })
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// Clears every registered cache (entries and counters).
pub fn clear_all() {
    let clearers: Vec<Clearer> = REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(_, _, c)| *c)
        .collect();
    for c in clearers {
        c();
    }
}

/// Declares a process-global memo cache registered with the global
/// stats/clear registry.
///
/// ```ignore
/// memo_cache!(static FOO: (usize, u64) => f64, "circuit.foo");
/// let v = FOO.get_or_insert_with(key, || expensive());
/// ```
#[macro_export]
macro_rules! memo_cache {
    (static $NAME:ident: $K:ty => $V:ty, $label:expr) => {
        static $NAME: std::sync::LazyLock<$crate::memo::ShardedCache<$K, $V>> =
            std::sync::LazyLock::new(|| {
                $crate::memo::register(
                    $label,
                    || {
                        (
                            $NAME.stats().hits(),
                            $NAME.stats().misses(),
                            $NAME.len() as u64,
                        )
                    },
                    || $NAME.clear(),
                );
                $crate::memo::ShardedCache::new()
            });
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn quantize_is_stable_and_canonical() {
        assert_eq!(quantize(1.0), quantize(1.0));
        assert_eq!(quantize(0.0), quantize(-0.0));
        assert_eq!(quantize(f64::NAN), quantize(-f64::NAN));
        assert_ne!(quantize(f64::INFINITY), quantize(f64::NEG_INFINITY));
        assert_ne!(quantize(1.0), quantize(2.0));
        assert_ne!(quantize(1.0), quantize(-1.0));
    }

    #[test]
    fn quantize_merges_only_sub_grid_noise() {
        // Differences far below any parameter-grid spacing collapse...
        assert_eq!(quantize(1.0), quantize(1.0 + 1e-15));
        // ...but distinguishable model parameters never do.
        assert_ne!(quantize(1.0), quantize(1.0 + 1e-9));
        assert_ne!(quantize(1e-15), quantize(1.001e-15));
    }

    #[test]
    fn sharded_cache_counts_hits_and_misses() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..4 {
            for k in 0..8u64 {
                let v = cache.get_or_insert_with(k, || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    k * 3
                });
                assert_eq!(v, k * 3);
            }
        }
        assert_eq!(calls.load(Ordering::SeqCst), 8);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats().misses(), 8);
        assert_eq!(cache.stats().hits(), 24);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits(), 0);
    }

    #[test]
    fn global_totals_advance_with_lookups_and_survive_clear() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let (h0, m0) = totals();
        let _ = cache.get_or_insert_with(42, || 1);
        let _ = cache.get_or_insert_with(42, || 1);
        let (h1, m1) = totals();
        assert!(h1 > h0, "hit total advanced: {h0} -> {h1}");
        assert!(m1 > m0, "miss total advanced: {m0} -> {m1}");
        cache.clear();
        let (h2, m2) = totals();
        assert!(h2 >= h1 && m2 >= m1, "totals are monotonic across clear");
    }

    #[test]
    fn registry_snapshots_registered_caches() {
        memo_cache!(static PROBED: u32 => u32, "num.test_probe");
        let _ = PROBED.get_or_insert_with(1, || 10);
        let _ = PROBED.get_or_insert_with(1, || 10);
        let snap = snapshot();
        let s = snap
            .iter()
            .find(|s| s.name == "num.test_probe")
            .expect("registered");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.entries, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
