//! Dense row-major `f64` matrices.
//!
//! Deliberately small: the crossbar simulator and the from-scratch CNN need
//! matmul, transpose, elementwise maps, and row/column views — nothing more.

use crate::rng::Rng64;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use xlda_num::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = [1.0, 1.0];
/// assert_eq!(a.matvec(&x), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "no rows given");
        let cols = rows[0].len();
        assert!(cols > 0, "empty rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix of i.i.d. normal samples.
    pub fn random_normal(rows: usize, cols: usize, mean: f64, sigma: f64, rng: &mut Rng64) -> Self {
        let data = rng.normal_vec(rows * cols, mean, sigma);
        Self::from_vec(rows, cols, data)
    }

    /// Creates a matrix of i.i.d. Rademacher (+1/-1) samples.
    pub fn random_bipolar(rows: usize, cols: usize, rng: &mut Rng64) -> Self {
        Self::from_vec(rows, cols, rng.bipolar_vec(rows * cols))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// Vector–matrix product `x^T * self` (length = cols).
    ///
    /// This is the natural orientation for a crossbar: inputs drive the rows
    /// and currents sum down the columns.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, &w) in y.iter_mut().zip(row) {
                *yc += xi * w;
            }
        }
        y
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise sum with another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element in place.
    pub fn scale_inplace(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Cosine similarity; returns 0.0 when either vector is all-zero.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Squared Euclidean distance between two slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.at(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn matvec_vecmat_agree_with_transpose() {
        let mut rng = Rng64::new(3);
        let m = Matrix::random_normal(4, 6, 0.0, 1.0, &mut rng);
        let x = rng.normal_vec(4, 0.0, 1.0);
        let a = m.vecmat(&x);
        let b = m.transpose().matvec(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_identity() {
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            *eye.at_mut(i, i) = 1.0;
        }
        let mut rng = Rng64::new(4);
        let m = Matrix::random_normal(3, 3, 0.0, 1.0, &mut rng);
        let p = m.matmul(&eye);
        assert_eq!(p, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::new(5);
        let m = Matrix::random_normal(3, 5, 0.0, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn map_and_scale() {
        let mut m = Matrix::filled(2, 2, 2.0);
        m.map_inplace(|x| x * x);
        assert_eq!(m, Matrix::filled(2, 2, 4.0));
        m.scale_inplace(0.5);
        assert_eq!(m, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn vector_helpers() {
        let a = [3.0, 4.0];
        assert_eq!(norm(&a), 5.0);
        assert_eq!(dot(&a, &a), 25.0);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &a), 0.0);
        assert_eq!(squared_euclidean(&[0.0, 0.0], &a), 25.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn random_bipolar_entries() {
        let mut rng = Rng64::new(6);
        let m = Matrix::random_bipolar(10, 10, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 1.0 || x == -1.0));
    }
}
