//! Linear solvers for the resistive-network models.
//!
//! The crossbar IR-drop model reduces to a sparse, diagonally dominant
//! linear system over node voltages. We provide:
//!
//! - [`thomas_tridiagonal`] — O(n) direct solve of tridiagonal systems
//!   (a single wire segment chain with distributed loads);
//! - [`gauss_seidel`] — iterative solve of general diagonally dominant
//!   systems in dense form (small crossbar tiles);
//! - [`GridSolver`] — a Gauss–Seidel sweep specialized for the 2-D
//!   crossbar node-voltage problem without materializing the full system.

use crate::matrix::Matrix;

/// Solves a tridiagonal system `A x = d` with the Thomas algorithm.
///
/// `sub` is the sub-diagonal (length n-1), `diag` the diagonal (length n),
/// `sup` the super-diagonal (length n-1).
///
/// # Panics
///
/// Panics on inconsistent lengths or a zero pivot (system not diagonally
/// dominant enough).
///
/// # Examples
///
/// ```
/// // Solve [[2,1],[1,2]] x = [3,3]  =>  x = [1,1]
/// let x = xlda_num::solve::thomas_tridiagonal(&[1.0], &[2.0, 2.0], &[1.0], &[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn thomas_tridiagonal(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Vec<f64> {
    let n = diag.len();
    assert!(n > 0, "empty system");
    assert_eq!(sub.len(), n - 1, "sub-diagonal length");
    assert_eq!(sup.len(), n - 1, "super-diagonal length");
    assert_eq!(rhs.len(), n, "rhs length");

    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    assert!(diag[0] != 0.0, "zero pivot");
    c[0] = if n > 1 { sup[0] / diag[0] } else { 0.0 };
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - sub[i - 1] * c[i - 1];
        assert!(m != 0.0, "zero pivot");
        if i < n - 1 {
            c[i] = sup[i] / m;
        }
        d[i] = (rhs[i] - sub[i - 1] * d[i - 1]) / m;
    }
    let mut x = d;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c[i] * next;
    }
    x
}

/// Result of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeSolution {
    /// Number of sweeps executed.
    pub iterations: usize,
    /// Final max-norm residual estimate (max per-node update).
    pub residual: f64,
    /// Whether `residual <= tol` was reached within the budget.
    pub converged: bool,
}

/// Gauss–Seidel iteration on a dense system `A x = b`, updating `x` in place.
///
/// Intended for small, strictly diagonally dominant systems; returns
/// convergence information rather than failing so callers can decide how to
/// react to slow convergence.
///
/// # Panics
///
/// Panics on shape mismatch or a zero diagonal entry.
pub fn gauss_seidel(
    a: &Matrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
) -> IterativeSolution {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");

    let mut residual = f64::INFINITY;
    for iter in 0..max_iters {
        residual = 0.0;
        for i in 0..n {
            let row = a.row(i);
            let aii = row[i];
            assert!(aii != 0.0, "zero diagonal at {i}");
            let mut sum = b[i];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    sum -= aij * x[j];
                }
            }
            let new = sum / aii;
            residual = residual.max((new - x[i]).abs());
            x[i] = new;
        }
        if residual <= tol {
            return IterativeSolution {
                iterations: iter + 1,
                residual,
                converged: true,
            };
        }
    }
    IterativeSolution {
        iterations: max_iters,
        residual,
        converged: false,
    }
}

/// Node-voltage solver for a 2-D crossbar resistive grid.
///
/// Models the standard crossbar equivalent circuit: each crosspoint couples
/// a row (wordline) node to a column (bitline) node through the device
/// conductance `g[i][j]`; adjacent nodes on the same line are connected by
/// the wire conductance `g_wire`; row nodes at the left edge are driven by
/// voltage sources through the driver conductance, and column nodes at the
/// bottom edge are tied to virtual ground through the sense conductance.
///
/// Solving this grid yields the actual crosspoint voltages, from which the
/// IR-drop-degraded column currents follow. A Gauss–Seidel sweep converges
/// quickly because the system is strictly diagonally dominant.
#[derive(Debug, Clone)]
pub struct GridSolver {
    rows: usize,
    cols: usize,
    /// Wire conductance between adjacent nodes on a line (S).
    pub g_wire: f64,
    /// Driver output conductance at each row input (S).
    pub g_driver: f64,
    /// Sense/ADC input conductance at each column output (S).
    pub g_sense: f64,
    /// Convergence tolerance on node-voltage updates (V).
    pub tol: f64,
    /// Sweep budget.
    pub max_iters: usize,
}

/// Solution of a [`GridSolver`] run.
#[derive(Debug, Clone)]
pub struct GridSolution {
    /// Row-node voltages, row-major `rows x cols`.
    pub v_row: Matrix,
    /// Column-node voltages, row-major `rows x cols`.
    pub v_col: Matrix,
    /// Current sensed at the bottom of each column (A).
    pub col_currents: Vec<f64>,
    /// Convergence info.
    pub info: IterativeSolution,
}

impl GridSolver {
    /// Creates a solver for a `rows x cols` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or any conductance is
    /// non-positive.
    pub fn new(rows: usize, cols: usize, g_wire: f64, g_driver: f64, g_sense: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        assert!(
            g_wire > 0.0 && g_driver > 0.0 && g_sense > 0.0,
            "conductances must be positive"
        );
        Self {
            rows,
            cols,
            g_wire,
            g_driver,
            g_sense,
            tol: 1e-9,
            max_iters: 2000,
        }
    }

    /// Solves for node voltages given crosspoint conductances `g`
    /// (`rows x cols`, S) and row drive voltages `v_in` (V).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[allow(clippy::needless_range_loop)] // grid sweeps index several matrices at once
    pub fn solve(&self, g: &Matrix, v_in: &[f64]) -> GridSolution {
        assert_eq!(g.rows(), self.rows, "conductance rows mismatch");
        assert_eq!(g.cols(), self.cols, "conductance cols mismatch");
        assert_eq!(v_in.len(), self.rows, "input length mismatch");

        let (r, c) = (self.rows, self.cols);
        // Initialize rows at their drive voltage, columns at 0 (virtual gnd).
        let mut vr = Matrix::zeros(r, c);
        for (i, &v) in v_in.iter().enumerate() {
            vr.row_mut(i).fill(v);
        }
        let mut vc = Matrix::zeros(r, c);

        let gw = self.g_wire;
        let mut info = IterativeSolution {
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
        };
        for iter in 0..self.max_iters {
            let mut delta: f64 = 0.0;
            // Row-node update: node (i, j) on wordline i.
            for i in 0..r {
                for j in 0..c {
                    let gd = g.at(i, j);
                    let mut num = gd * vc.at(i, j);
                    let mut den = gd;
                    if j == 0 {
                        num += self.g_driver * v_in[i];
                        den += self.g_driver;
                    } else {
                        num += gw * vr.at(i, j - 1);
                        den += gw;
                    }
                    if j + 1 < c {
                        num += gw * vr.at(i, j + 1);
                        den += gw;
                    }
                    let new = num / den;
                    delta = delta.max((new - vr.at(i, j)).abs());
                    *vr.at_mut(i, j) = new;
                }
            }
            // Column-node update: node (i, j) on bitline j.
            for i in 0..r {
                for j in 0..c {
                    let gd = g.at(i, j);
                    let mut num = gd * vr.at(i, j);
                    let mut den = gd;
                    if i + 1 < r {
                        num += gw * vc.at(i + 1, j);
                        den += gw;
                    } else {
                        // Bottom node ties to virtual ground through sense.
                        den += self.g_sense;
                    }
                    if i > 0 {
                        num += gw * vc.at(i - 1, j);
                        den += gw;
                    }
                    let new = num / den;
                    delta = delta.max((new - vc.at(i, j)).abs());
                    *vc.at_mut(i, j) = new;
                }
            }
            info = IterativeSolution {
                iterations: iter + 1,
                residual: delta,
                converged: delta <= self.tol,
            };
            if info.converged {
                break;
            }
        }

        let col_currents = (0..c).map(|j| self.g_sense * vc.at(r - 1, j)).collect();
        GridSolution {
            v_row: vr,
            v_col: vc,
            col_currents,
            info,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_solves_known_system() {
        // [[2,-1,0],[-1,2,-1],[0,-1,2]] x = [1,0,1] => x = [1,1,1]
        let x = thomas_tridiagonal(
            &[-1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0],
            &[1.0, 0.0, 1.0],
        );
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn thomas_single_element() {
        let x = thomas_tridiagonal(&[], &[4.0], &[], &[8.0]);
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn gauss_seidel_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let b = [5.0, 8.0, 8.0];
        let mut x = vec![0.0; 3];
        let info = gauss_seidel(&a, &b, &mut x, 1e-12, 500);
        assert!(info.converged);
        // Verify by substitution.
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn gauss_seidel_reports_non_convergence() {
        // Not diagonally dominant; give it almost no budget.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let b = [1.0, 1.0];
        let mut x = vec![0.0; 2];
        let info = gauss_seidel(&a, &b, &mut x, 1e-15, 2);
        assert!(!info.converged);
        assert_eq!(info.iterations, 2);
    }

    #[test]
    fn grid_with_huge_wire_conductance_is_ideal() {
        // Near-zero wire resistance => column current ~ sum g*V.
        let mut solver = GridSolver::new(4, 3, 1e2, 1e2, 1e2);
        solver.tol = 1e-13;
        let g = Matrix::filled(4, 3, 1e-5);
        let v_in = vec![0.2; 4];
        let sol = solver.solve(&g, &v_in);
        assert!(sol.info.converged);
        let ideal = 4.0 * 1e-5 * 0.2;
        for i in &sol.col_currents {
            assert!((i - ideal).abs() / ideal < 1e-2, "current {i} vs {ideal}");
        }
    }

    #[test]
    fn grid_ir_drop_reduces_current() {
        let ideal = GridSolver::new(32, 32, 1e6, 1e6, 1e6);
        let lossy = GridSolver::new(32, 32, 1e-3, 1e-2, 1e-2);
        let g = Matrix::filled(32, 32, 1e-4); // 10 kOhm cells
        let v_in = vec![0.3; 32];
        let a = ideal.solve(&g, &v_in);
        let b = lossy.solve(&g, &v_in);
        let sum_a: f64 = a.col_currents.iter().sum();
        let sum_b: f64 = b.col_currents.iter().sum();
        assert!(sum_b < sum_a, "IR drop must reduce total current");
    }

    #[test]
    fn grid_far_column_sees_more_drop() {
        let lossy = GridSolver::new(16, 16, 5e-3, 1e-1, 1e-1);
        let g = Matrix::filled(16, 16, 1e-4);
        let v_in = vec![0.3; 16];
        let sol = lossy.solve(&g, &v_in);
        // Columns farther from the driver (higher j) carry less current.
        assert!(sol.col_currents[15] < sol.col_currents[0]);
    }

    #[test]
    fn grid_zero_input_zero_output() {
        let solver = GridSolver::new(8, 8, 1.0, 1.0, 1.0);
        let g = Matrix::filled(8, 8, 1e-5);
        let sol = solver.solve(&g, &[0.0; 8]);
        for i in &sol.col_currents {
            assert!(i.abs() < 1e-15);
        }
    }
}
