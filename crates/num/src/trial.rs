//! Structure-of-arrays Monte-Carlo trial batches.
//!
//! The variation-aware scenarios evaluate thousands of independent device
//! realizations ("trials"). This module provides the data-oriented inner
//! loop they share:
//!
//! - [`TrialBatch`] — a contiguous range of trials, each owning an
//!   [`Rng64`] stream derived from `(seed, global_trial_index)` via
//!   [`Rng64::for_trial`]. Draws are made column-wise: one call fills a
//!   value for every trial in the batch, so the per-trial model is walked
//!   in lockstep across the batch instead of re-entered per trial.
//! - [`Summary`] / [`summarize`] — the distribution digest (mean/σ/range/
//!   p5/p50/p95 plus NaN accounting) Monte-Carlo scenarios return instead
//!   of a single deterministic FOM.
//! - [`checksum`] — an order-sensitive FNV fold over the raw bit patterns
//!   of an outcome column, used by tests and the bench gate to pin
//!   bit-identical results across chunkings, worker counts, and schedules.
//!
//! Because every trial's stream is a pure function of the experiment seed
//! and its *global* index — never of batch boundaries — splitting a trial
//! range `[0, n)` into any set of batches reproduces exactly the same
//! per-trial draws. That is what makes chunked parallel Monte-Carlo
//! deterministic by construction rather than by luck.

use crate::rng::Rng64;

/// A batch of consecutive Monte-Carlo trials with per-trial RNG streams.
#[derive(Debug, Clone)]
pub struct TrialBatch {
    start: u64,
    rngs: Vec<Rng64>,
}

impl TrialBatch {
    /// Creates the batch covering global trials `[start, start + len)` of
    /// the experiment identified by `seed`.
    pub fn new(seed: u64, start: u64, len: usize) -> Self {
        let rngs = (0..len as u64)
            .map(|i| Rng64::for_trial(seed, start + i))
            .collect();
        Self { start, rngs }
    }

    /// Number of trials in this batch.
    pub fn len(&self) -> usize {
        self.rngs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rngs.is_empty()
    }

    /// Global index of the first trial in this batch.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Global index of local trial `i`.
    pub fn global_index(&self, i: usize) -> u64 {
        self.start + i as u64
    }

    /// The RNG stream of local trial `i`.
    pub fn rng(&mut self, i: usize) -> &mut Rng64 {
        &mut self.rngs[i]
    }

    /// Applies `f` to every trial stream in index order — the generic
    /// "one column" primitive the typed fills are built on. Each trial
    /// must draw the same number of values per column for results to stay
    /// chunking-invariant (they consume only their own stream, in a fixed
    /// per-trial order).
    pub fn for_each(&mut self, mut f: impl FnMut(usize, &mut Rng64)) {
        for (i, rng) in self.rngs.iter_mut().enumerate() {
            f(i, rng);
        }
    }

    /// Fills `out[i]` with `N(mean, sigma)` drawn from trial `i`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()` or `sigma` is negative.
    pub fn fill_normal(&mut self, mean: f64, sigma: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "column length mismatch");
        for (o, rng) in out.iter_mut().zip(self.rngs.iter_mut()) {
            *o = rng.normal(mean, sigma);
        }
    }

    /// Fills `out[i]` with `exp(N(mu, sigma))` from trial `i`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn fill_log_normal(&mut self, mu: f64, sigma: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "column length mismatch");
        for (o, rng) in out.iter_mut().zip(self.rngs.iter_mut()) {
            *o = rng.log_normal(mu, sigma);
        }
    }

    /// Fills `out[i]` with a uniform draw in `[lo, hi)` from trial `i`'s
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()` or the range is invalid.
    pub fn fill_uniform_in(&mut self, lo: f64, hi: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "column length mismatch");
        for (o, rng) in out.iter_mut().zip(self.rngs.iter_mut()) {
            *o = rng.uniform_in(lo, hi);
        }
    }
}

/// Distribution digest of one Monte-Carlo outcome column.
///
/// Statistics cover the non-NaN samples only; NaN outcomes are counted in
/// [`nan_count`](Summary::nan_count) rather than silently skewing a bin
/// (see [`crate::stats::Histogram::add`]). When every sample is NaN — or
/// the column is empty — all statistics are NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Samples contributing to the statistics (NaNs excluded).
    pub trials: usize,
    /// NaN outcomes encountered and excluded.
    pub nan_count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub p5: f64,
    pub p50: f64,
    pub p95: f64,
}

/// Summarizes an outcome column into mean/σ/range/percentiles.
pub fn summarize(xs: &[f64]) -> Summary {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    let nan_count = xs.len() - v.len();
    if v.is_empty() {
        return Summary {
            trials: 0,
            nan_count,
            mean: f64::NAN,
            std_dev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            p5: f64::NAN,
            p50: f64::NAN,
            p95: f64::NAN,
        };
    }
    v.sort_by(f64::total_cmp);
    Summary {
        trials: v.len(),
        nan_count,
        mean: crate::stats::mean(&v),
        std_dev: crate::stats::std_dev(&v),
        min: v[0],
        max: v[v.len() - 1],
        p5: quantile(&v, 0.05),
        p50: quantile(&v, 0.50),
        p95: quantile(&v, 0.95),
    }
}

/// Linear-interpolation quantile of an ascending-sorted, non-empty slice;
/// `q` is a fraction in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Fraction of samples satisfying `ok` — the yield of a trial population.
/// NaN outcomes count as failures; an empty column yields 0.
pub fn yield_fraction(xs: &[f64], ok: impl Fn(f64) -> bool) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let pass = xs.iter().filter(|&&x| !x.is_nan() && ok(x)).count();
    pass as f64 / xs.len() as f64
}

/// FNV-1a fold over the exact bit patterns of an outcome column.
///
/// Order-sensitive by design: two runs agree iff they produced the same
/// values in the same trial order, which is the determinism contract the
/// chunking-invariance tests and the bench gate check.
pub fn checksum(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in xs {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_draws_are_deterministic() {
        let mut a = TrialBatch::new(7, 10, 16);
        let mut b = TrialBatch::new(7, 10, 16);
        let mut ca = vec![0.0; 16];
        let mut cb = vec![0.0; 16];
        a.fill_normal(0.0, 1.0, &mut ca);
        b.fill_normal(0.0, 1.0, &mut cb);
        assert_eq!(checksum(&ca), checksum(&cb));
        assert_eq!(ca, cb);
    }

    #[test]
    fn splicing_batches_matches_one_batch() {
        // Trials [0, 100) drawn as one batch vs three uneven batches:
        // identical columns, because streams depend only on the global
        // trial index.
        let draw = |batch: &mut TrialBatch| {
            let mut g = vec![0.0; batch.len()];
            let mut v = vec![0.0; batch.len()];
            batch.fill_log_normal(-11.0, 0.6, &mut g);
            batch.fill_normal(0.9, 0.094, &mut v);
            (g, v)
        };
        let (g_all, v_all) = draw(&mut TrialBatch::new(99, 0, 100));
        let mut g_spliced = Vec::new();
        let mut v_spliced = Vec::new();
        for (start, len) in [(0u64, 13usize), (13, 54), (67, 33)] {
            let (g, v) = draw(&mut TrialBatch::new(99, start, len));
            g_spliced.extend(g);
            v_spliced.extend(v);
        }
        assert_eq!(g_all, g_spliced);
        assert_eq!(v_all, v_spliced);
    }

    #[test]
    fn summary_of_known_column() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = summarize(&xs);
        assert_eq!(s.trials, 101);
        assert_eq!(s.nan_count, 0);
        assert!((s.mean - 50.0).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p5 - 5.0).abs() < 1e-12);
        assert!((s.p50 - 50.0).abs() < 1e-12);
        assert!((s.p95 - 95.0).abs() < 1e-12);
    }

    #[test]
    fn summary_excludes_nan_and_poisons_when_empty() {
        let s = summarize(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.trials, 2);
        assert_eq!(s.nan_count, 1);
        assert_eq!(s.mean, 2.0);
        let empty = summarize(&[f64::NAN; 4]);
        assert_eq!(empty.trials, 0);
        assert_eq!(empty.nan_count, 4);
        assert!(empty.mean.is_nan() && empty.p50.is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 0.75), 3.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
    }

    #[test]
    fn yield_counts_nan_as_failure() {
        let xs = [0.9, 0.95, f64::NAN, 0.5];
        assert_eq!(yield_fraction(&xs, |x| x >= 0.9), 0.5);
        assert_eq!(yield_fraction(&[], |_| true), 0.0);
    }

    #[test]
    fn checksum_is_order_and_value_sensitive() {
        let a = checksum(&[1.0, 2.0]);
        assert_ne!(a, checksum(&[2.0, 1.0]));
        assert_ne!(a, checksum(&[1.0, 2.0 + 1e-12]));
        assert_eq!(a, checksum(&[1.0, 2.0]));
    }
}
