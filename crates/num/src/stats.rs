//! Summary statistics used throughout the accuracy and variation sweeps.

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(xlda_num::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of the non-NaN values, or `None` when the slice is empty or
/// all-NaN.
pub fn try_min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .min_by(f64::total_cmp)
}

/// Maximum of the non-NaN values, or `None` when the slice is empty or
/// all-NaN.
pub fn try_max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .max_by(f64::total_cmp)
}

/// Minimum of a slice, ignoring NaNs. Returns NaN when the slice is empty
/// or all-NaN — an explicit poison instead of the `+INFINITY` this used to
/// return, which read as a legitimate (and extreme) value downstream. Use
/// [`try_min`] to handle the degenerate case without sentinels.
pub fn min(xs: &[f64]) -> f64 {
    try_min(xs).unwrap_or(f64::NAN)
}

/// Maximum of a slice, ignoring NaNs. Returns NaN when the slice is empty
/// or all-NaN (see [`min`]; use [`try_max`] for the `Option` form).
pub fn max(xs: &[f64]) -> f64 {
    try_max(xs).unwrap_or(f64::NAN)
}

/// Pearson linear correlation coefficient between two equal-length series.
///
/// This is the statistic the paper uses in Fig. 4D to compare hashed Hamming
/// distance against the software cosine distance.
///
/// Returns `0.0` when either series has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((xlda_num::stats::pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// A fixed-bin histogram over a closed interval.
///
/// Used to visualize cell-state V_th distributions (paper Fig. 3G-i).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    nan_count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram interval must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            nan_count: 0,
        }
    }

    /// Adds a sample; values outside the interval clamp to the edge bins.
    ///
    /// NaN samples are never binned — `(NaN).floor() as i64` is 0, which
    /// used to clamp them silently into the lowest bin and skew every
    /// V_th/accuracy distribution. They are tallied in [`nan_count`]
    /// instead and excluded from [`total`].
    ///
    /// [`nan_count`]: Histogram::nan_count
    /// [`total`]: Histogram::total
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_count += 1;
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples binned (NaNs excluded).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of NaN samples rejected by [`add`](Histogram::add).
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Fraction of samples in bin `i` (0 when empty).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

/// Fraction of pairwise overlap between two Gaussian state distributions.
///
/// For adjacent memory-cell levels with means `mu_a < mu_b` and common
/// standard deviation `sigma`, returns the probability that a sample from
/// one distribution crosses the midpoint decision boundary — i.e. the raw
/// per-boundary bit-error rate used in the Fig. 3G analysis.
pub fn gaussian_overlap_error(mu_a: f64, mu_b: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let d = (mu_b - mu_a).abs() / 2.0;
    // P(N(0, sigma) > d) = Q(d / sigma)
    q_function(d / sigma)
}

/// Standard Gaussian tail probability Q(x) = P(N(0,1) > x).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |err| < 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))))
        * (-x * x).exp();
    if sign_neg {
        2.0 - y
    } else {
        y
    }
}

/// Normal-approximation confidence interval for the mean: returns
/// `(mean, half_width)` such that the true mean lies within
/// `mean ± half_width` at the given z-score (1.96 ≈ 95 %).
///
/// Accuracy estimates over Monte-Carlo episodes report this interval so
/// comparisons across hardware variants are honest about sampling noise.
///
/// Returns half-width 0 for slices shorter than 2.
pub fn mean_confidence_interval(xs: &[f64], z: f64) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let half = z * std_dev(xs) / (xs.len() as f64).sqrt();
    (m, half)
}

/// Median of a slice (average of middle two for even lengths).
///
/// Returns `0.0` for an empty slice. NaNs sort greatest (IEEE 754
/// `totalOrder`), so a contaminated sample skews the median upward
/// instead of panicking mid-sweep.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Geometric mean of strictly positive values; `0.0` if empty.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn histogram_bins_and_density() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.35, 0.9] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.total(), 4);
        assert!((h.density(1) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn histogram_skips_nan_into_nan_count() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        h.add(0.25);
        h.add(f64::NAN);
        // NaNs used to clamp into bin 0; now they are tallied separately.
        assert_eq!(h.counts(), &[1, 0]);
        assert_eq!(h.total(), 1);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.density(0), 1.0);
    }

    #[test]
    fn min_max_finite_inputs() {
        let xs = [3.0, f64::NAN, -1.0, 2.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 3.0);
        assert_eq!(try_min(&xs), Some(-1.0));
        assert_eq!(try_max(&xs), Some(3.0));
    }

    #[test]
    fn min_max_degenerate_inputs_are_explicit() {
        // These used to return ±INFINITY, which flowed into FOM
        // comparisons as a legitimate extreme value.
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(min(&[f64::NAN, f64::NAN]).is_nan());
        assert!(max(&[f64::NAN]).is_nan());
        assert_eq!(try_min(&[]), None);
        assert_eq!(try_max(&[f64::NAN]), None);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-5);
    }

    #[test]
    fn q_function_symmetry() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!((q_function(1.0) + q_function(-1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn overlap_error_decreases_with_separation() {
        let near = gaussian_overlap_error(0.0, 0.1, 0.05);
        let far = gaussian_overlap_error(0.0, 0.4, 0.05);
        assert!(near > far);
        assert_eq!(gaussian_overlap_error(0.0, 0.1, 0.0), 0.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let mut rng = crate::rng::Rng64::new(3);
        let small: Vec<f64> = (0..20).map(|_| rng.normal(0.0, 1.0)).collect();
        let large: Vec<f64> = (0..2000).map(|_| rng.normal(0.0, 1.0)).collect();
        let (_, hw_small) = mean_confidence_interval(&small, 1.96);
        let (_, hw_large) = mean_confidence_interval(&large, 1.96);
        assert!(hw_large < hw_small);
        assert!(hw_large > 0.0);
        assert_eq!(mean_confidence_interval(&[1.0], 1.96).1, 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
