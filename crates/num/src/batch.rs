//! Structure-of-arrays candidate batches for columnar sweep kernels.
//!
//! The scalar sweep path builds one `Candidate` struct per figure-of-merit
//! row, boxing names and allocating per point. On a memo miss that
//! allocation traffic — not arithmetic — bounds throughput. This module
//! provides the data-oriented alternative the batch kernels in
//! `xlda_core::evaluate` fill:
//!
//! - [`CandidateBatch`] — candidate rows stored column-wise (one
//!   contiguous `Vec<f64>` per figure of merit), points delimited by a
//!   CSR-style offset column, names interned once per batch, and a
//!   parallel per-point [`PointStatus`] column so one poisoned lane
//!   cannot take down its batch.
//! - [`ExactCache`] — a tiny linear-scan cache keyed by full `PartialEq`
//!   equality (no quantization), used by the kernels to hoist invariant
//!   circuit solves out of the point loop. Unlike the global memo layer
//!   it cannot conflate two distinct keys, so results through it are
//!   bit-identical by construction.
//! - Lane-unrolled column passes ([`scale_u32`], [`product_scaled`],
//!   [`product_scaled2`]) — manual 4-lane f64 loops the autovectorizer
//!   can take, written to reproduce the scalar path's expression shapes
//!   exactly (integer product first, one cast, then left-to-right
//!   multiplies).
//!
//! A batch is filled with a strict protocol: interleave [`push_lane`]
//! calls with exactly one [`close_point`] *or* [`fail_point`] per input
//! point, in input order. `fail_point` discards any lanes already pushed
//! for the open point, mirroring the scalar path's `?` semantics where
//! the first failing candidate fails the whole point.
//!
//! [`push_lane`]: CandidateBatch::push_lane
//! [`close_point`]: CandidateBatch::close_point
//! [`fail_point`]: CandidateBatch::fail_point

/// Offset/prime pair of the FNV-1a fold used across the bench and parity
/// gates.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Per-point outcome recorded in a [`CandidateBatch`].
///
/// Everything except [`Ok`](PointStatus::Ok) means the point produced no
/// candidate lanes; the failure detail is in
/// [`CandidateBatch::point_message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointStatus {
    /// The point evaluated; its lanes are in the batch columns.
    Ok,
    /// The evaluator returned a typed error.
    Error,
    /// The evaluator panicked; the panic was contained to this point.
    Panicked,
    /// The sweep deadline expired before this point was evaluated.
    DeadlineExceeded,
}

/// Columnar (structure-of-arrays) candidate storage for one sweep chunk
/// or one whole sweep.
///
/// Rows ("lanes") are candidates; each input point owns the contiguous
/// lane range `offsets[p]..offsets[p + 1]`. Failed points own an empty
/// range and carry a [`PointStatus`] plus message instead.
#[derive(Debug, Clone, Default)]
pub struct CandidateBatch {
    names: Vec<String>,
    /// CSR point boundaries over the lane columns; `offsets[0] == 0`
    /// is implicit (the vec holds one entry per *closed* point).
    offsets: Vec<u32>,
    name_ids: Vec<u32>,
    latency_s: Vec<f64>,
    energy_j: Vec<f64>,
    area_mm2: Vec<f64>,
    accuracy: Vec<f64>,
    status: Vec<PointStatus>,
    /// Sparse `(point, message)` pairs for failed points, ascending by
    /// point index because points close in order.
    messages: Vec<(u32, String)>,
    scratch_f64: Vec<Vec<f64>>,
    scratch_u32: Vec<Vec<u32>>,
    scratch_u64: Vec<Vec<u64>>,
}

impl CandidateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of closed points.
    pub fn points(&self) -> usize {
        self.status.len()
    }

    /// Total candidate lanes across all closed points.
    pub fn lanes(&self) -> usize {
        self.closed_lanes()
    }

    /// Whether no point has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    fn closed_lanes(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0) as usize
    }

    /// Lanes pushed since the last point was closed.
    pub fn open_lanes(&self) -> usize {
        self.name_ids.len() - self.closed_lanes()
    }

    /// Interns `name`, returning its id for [`push_lane`]. Names are
    /// deduplicated per batch — candidate names repeat every point, so
    /// the table stays a handful of entries.
    ///
    /// [`push_lane`]: CandidateBatch::push_lane
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u32;
        }
        self.names.push(name.to_owned());
        (self.names.len() - 1) as u32
    }

    /// The interned name behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by [`intern`](CandidateBatch::intern)
    /// on this batch.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Appends one candidate lane to the currently open point.
    pub fn push_lane(
        &mut self,
        name_id: u32,
        latency_s: f64,
        energy_j: f64,
        area_mm2: f64,
        accuracy: f64,
    ) {
        debug_assert!((name_id as usize) < self.names.len(), "unknown name id");
        self.name_ids.push(name_id);
        self.latency_s.push(latency_s);
        self.energy_j.push(energy_j);
        self.area_mm2.push(area_mm2);
        self.accuracy.push(accuracy);
    }

    /// Closes the open point successfully, claiming every lane pushed
    /// since the previous close.
    pub fn close_point(&mut self) {
        self.offsets.push(self.name_ids.len() as u32);
        self.status.push(PointStatus::Ok);
    }

    /// Closes the open point as failed, discarding any lanes already
    /// pushed for it (the scalar path's first-error-fails-the-point
    /// semantics) and recording `status` + `message`.
    ///
    /// # Panics
    ///
    /// Panics if `status` is [`PointStatus::Ok`].
    pub fn fail_point(&mut self, status: PointStatus, message: impl Into<String>) {
        assert_ne!(
            status,
            PointStatus::Ok,
            "fail_point requires a failure status"
        );
        let keep = self.closed_lanes();
        self.name_ids.truncate(keep);
        self.latency_s.truncate(keep);
        self.energy_j.truncate(keep);
        self.area_mm2.truncate(keep);
        self.accuracy.truncate(keep);
        self.messages
            .push((self.status.len() as u32, message.into()));
        self.offsets.push(keep as u32);
        self.status.push(status);
    }

    /// Status of closed point `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.points()`.
    pub fn point_status(&self, p: usize) -> PointStatus {
        self.status[p]
    }

    /// Failure message of closed point `p`, if it failed.
    pub fn point_message(&self, p: usize) -> Option<&str> {
        let i = self
            .messages
            .binary_search_by_key(&(p as u32), |&(pt, _)| pt)
            .ok()?;
        Some(&self.messages[i].1)
    }

    /// Lane index range of closed point `p` into the column slices.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.points()`.
    pub fn lane_range(&self, p: usize) -> core::ops::Range<usize> {
        let lo = if p == 0 {
            0
        } else {
            self.offsets[p - 1] as usize
        };
        lo..self.offsets[p] as usize
    }

    /// Per-lane interned name ids.
    pub fn name_ids(&self) -> &[u32] {
        &self.name_ids
    }

    /// Name of lane `i`.
    pub fn lane_name(&self, i: usize) -> &str {
        self.name(self.name_ids[i])
    }

    /// Per-lane latency column (seconds).
    pub fn latency_s(&self) -> &[f64] {
        &self.latency_s
    }

    /// Per-lane energy column (joules).
    pub fn energy_j(&self) -> &[f64] {
        &self.energy_j
    }

    /// Per-lane area column (mm²).
    pub fn area_mm2(&self) -> &[f64] {
        &self.area_mm2
    }

    /// Per-lane accuracy column (fraction).
    pub fn accuracy(&self) -> &[f64] {
        &self.accuracy
    }

    /// Appends every closed point of `other` (reassembling chunk outputs
    /// in order), remapping its interned name ids into this batch's
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `other` has an open point.
    pub fn append(&mut self, other: &CandidateBatch) {
        assert_eq!(other.open_lanes(), 0, "append requires all points closed");
        let remap: Vec<u32> = other.names.iter().map(|n| self.intern(n)).collect();
        let base_lanes = self.closed_lanes() as u32;
        let base_points = self.status.len() as u32;
        self.name_ids
            .extend(other.name_ids.iter().map(|&id| remap[id as usize]));
        self.latency_s.extend_from_slice(&other.latency_s);
        self.energy_j.extend_from_slice(&other.energy_j);
        self.area_mm2.extend_from_slice(&other.area_mm2);
        self.accuracy.extend_from_slice(&other.accuracy);
        self.offsets
            .extend(other.offsets.iter().map(|&o| base_lanes + o));
        self.status.extend_from_slice(&other.status);
        self.messages.extend(
            other
                .messages
                .iter()
                .map(|(p, m)| (base_points + p, m.clone())),
        );
    }

    /// Clears all points, lanes, names, and messages while keeping every
    /// column's capacity (and the scratch pool) for the next chunk.
    pub fn clear(&mut self) {
        self.names.clear();
        self.offsets.clear();
        self.name_ids.clear();
        self.latency_s.clear();
        self.energy_j.clear();
        self.area_mm2.clear();
        self.accuracy.clear();
        self.status.clear();
        self.messages.clear();
    }

    /// Order-sensitive FNV-1a fold over the whole batch: for each closed
    /// point in order, either the bit patterns of every lane's
    /// `[latency, energy, area, accuracy]` or — for failed points — one
    /// `FNV_PRIME` marker. Two batches agree iff they hold the same
    /// values with the same point/lane structure.
    pub fn checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut fold = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for p in 0..self.points() {
            if self.status[p] == PointStatus::Ok {
                for i in self.lane_range(p) {
                    fold(self.latency_s[i].to_bits());
                    fold(self.energy_j[i].to_bits());
                    fold(self.area_mm2[i].to_bits());
                    fold(self.accuracy[i].to_bits());
                }
            } else {
                fold(FNV_PRIME);
            }
        }
        h
    }

    /// Takes a cleared `f64` scratch column from the pool (or a fresh
    /// one), for kernel-local parameter columns. Return it with
    /// [`put_f64`](CandidateBatch::put_f64) so its capacity is reused
    /// across chunks.
    pub fn take_f64(&mut self) -> Vec<f64> {
        self.scratch_f64.pop().unwrap_or_default()
    }

    /// Returns an `f64` scratch column to the pool, clearing it.
    pub fn put_f64(&mut self, mut col: Vec<f64>) {
        col.clear();
        self.scratch_f64.push(col);
    }

    /// Takes a cleared `u32` scratch column from the pool.
    pub fn take_u32(&mut self) -> Vec<u32> {
        self.scratch_u32.pop().unwrap_or_default()
    }

    /// Returns a `u32` scratch column to the pool, clearing it.
    pub fn put_u32(&mut self, mut col: Vec<u32>) {
        col.clear();
        self.scratch_u32.push(col);
    }

    /// Takes a cleared `u64` scratch column from the pool.
    pub fn take_u64(&mut self) -> Vec<u64> {
        self.scratch_u64.pop().unwrap_or_default()
    }

    /// Returns a `u64` scratch column to the pool, clearing it.
    pub fn put_u64(&mut self, mut col: Vec<u64>) {
        col.clear();
        self.scratch_u64.push(col);
    }
}

/// A linear-scan cache keyed by *exact* `PartialEq` equality.
///
/// The batch kernels hoist invariant circuit solves (tech-node constants,
/// decoder/sense-amp sub-solves) with this instead of the global memo
/// layer: the memo quantizes `f64` keys to 44 bits, which is transparent
/// in practice but not by construction, while `ExactCache` can only ever
/// return a value computed from an identical key — so the hoisted path is
/// bit-identical to the scalar path by construction. Linear scan is the
/// right shape here: a batch touches a handful of distinct tech nodes and
/// geometries, so entry counts stay in the tens.
#[derive(Debug, Clone)]
pub struct ExactCache<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for ExactCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ExactCache<K, V> {
    /// An empty cache.
    pub const fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry, keeping capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<K: PartialEq, V> ExactCache<K, V> {
    /// The cached value for `key`, computing and storing it with `f` on
    /// first use.
    pub fn get_or_insert_with(&mut self, key: K, f: impl FnOnce(&K) -> V) -> &V {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &self.entries[i].1;
        }
        let v = f(&key);
        self.entries.push((key, v));
        &self.entries.last().expect("just pushed").1
    }
}

impl<K: PartialEq, V: Clone> ExactCache<K, V> {
    /// Clone-out variant of
    /// [`get_or_insert_with`](ExactCache::get_or_insert_with) for values
    /// that are cheap to clone (reports, small solve structs).
    pub fn get_or_clone(&mut self, key: K, f: impl FnOnce(&K) -> V) -> V {
        self.get_or_insert_with(key, f).clone()
    }
}

/// Fills `out[i] = xs[i] as f64 * k` — the columnar form of the scalar
/// path's `count as f64 * constant` expressions. Manual 4-lane unroll;
/// each lane is the exact scalar expression, so results are bit-identical
/// to the point loop.
pub fn scale_u32(out: &mut Vec<f64>, xs: &[u32], k: f64) {
    out.clear();
    out.resize(xs.len(), 0.0);
    let (chunks, tail) = as_chunks4(xs);
    let (out_chunks, out_tail) = as_chunks4_mut(out);
    for (o, x) in out_chunks.iter_mut().zip(chunks) {
        o[0] = x[0] as f64 * k;
        o[1] = x[1] as f64 * k;
        o[2] = x[2] as f64 * k;
        o[3] = x[3] as f64 * k;
    }
    for (o, &x) in out_tail.iter_mut().zip(tail) {
        *o = x as f64 * k;
    }
}

/// Fills `out[i] = (a[i] as u64 * b[i] as u64) as f64 * k` — the columnar
/// form of `(tiles_rows * tiles_cols) as f64 * constant`: integer product
/// first, one cast, one multiply, matching the scalar expression's bits.
pub fn product_scaled(out: &mut Vec<f64>, a: &[u32], b: &[u32], k: f64) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    out.clear();
    out.resize(a.len(), 0.0);
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (x as u64 * y as u64) as f64 * k;
    }
}

/// Fills `out[i] = ((a[i] as u64 * b[i] as u64) as f64 * k1) * k2`,
/// preserving the scalar path's left-to-right multiply order for
/// expressions like `tiles as f64 * area_m2 * 1e6`.
pub fn product_scaled2(out: &mut Vec<f64>, a: &[u32], b: &[u32], k1: f64, k2: f64) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    out.clear();
    out.resize(a.len(), 0.0);
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (x as u64 * y as u64) as f64 * k1 * k2;
    }
}

fn as_chunks4(xs: &[u32]) -> (&[[u32; 4]], &[u32]) {
    let mid = xs.len() - xs.len() % 4;
    let (head, tail) = xs.split_at(mid);
    // SAFETY: head.len() is a multiple of 4 and [u32; 4] has the same
    // layout as four consecutive u32s.
    let chunks =
        unsafe { core::slice::from_raw_parts(head.as_ptr() as *const [u32; 4], head.len() / 4) };
    (chunks, tail)
}

fn as_chunks4_mut(xs: &mut [f64]) -> (&mut [[f64; 4]], &mut [f64]) {
    let mid = xs.len() - xs.len() % 4;
    let (head, tail) = xs.split_at_mut(mid);
    // SAFETY: head.len() is a multiple of 4 and [f64; 4] has the same
    // layout as four consecutive f64s.
    let chunks = unsafe {
        core::slice::from_raw_parts_mut(head.as_mut_ptr() as *mut [f64; 4], head.len() / 4)
    };
    (chunks, tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> CandidateBatch {
        let mut b = CandidateBatch::new();
        let gpu = b.intern("gpu");
        let cam = b.intern("cam");
        b.push_lane(gpu, 1.0, 2.0, 3.0, 0.9);
        b.push_lane(cam, 4.0, 5.0, 6.0, 0.8);
        b.close_point();
        b.fail_point(PointStatus::Error, "sense margin");
        b.push_lane(gpu, 7.0, 8.0, 9.0, 0.7);
        b.close_point();
        b
    }

    #[test]
    fn push_close_protocol_builds_csr() {
        let b = filled();
        assert_eq!(b.points(), 3);
        assert_eq!(b.lanes(), 3);
        assert_eq!(b.lane_range(0), 0..2);
        assert_eq!(b.lane_range(1), 2..2);
        assert_eq!(b.lane_range(2), 2..3);
        assert_eq!(b.point_status(1), PointStatus::Error);
        assert_eq!(b.point_message(1), Some("sense margin"));
        assert_eq!(b.point_message(0), None);
        assert_eq!(b.lane_name(0), "gpu");
        assert_eq!(b.lane_name(1), "cam");
        assert_eq!(b.lane_name(2), "gpu");
        assert_eq!(b.latency_s()[2], 7.0);
    }

    #[test]
    fn fail_point_discards_open_lanes() {
        let mut b = CandidateBatch::new();
        let id = b.intern("x");
        b.push_lane(id, 1.0, 1.0, 1.0, 1.0);
        b.push_lane(id, 2.0, 2.0, 2.0, 2.0);
        assert_eq!(b.open_lanes(), 2);
        b.fail_point(PointStatus::Panicked, "boom");
        assert_eq!(b.points(), 1);
        assert_eq!(b.lanes(), 0);
        assert_eq!(b.open_lanes(), 0);
        assert_eq!(b.point_message(0), Some("boom"));
    }

    #[test]
    fn append_remaps_names_and_offsets() {
        let mut a = filled();
        let mut other = CandidateBatch::new();
        // Interned in the opposite order so the remap is not the identity.
        let cam = other.intern("cam");
        let tpu = other.intern("tpu");
        other.push_lane(cam, 10.0, 11.0, 12.0, 0.6);
        other.push_lane(tpu, 13.0, 14.0, 15.0, 0.5);
        other.close_point();
        other.fail_point(PointStatus::DeadlineExceeded, "late");
        a.append(&other);
        assert_eq!(a.points(), 5);
        assert_eq!(a.lanes(), 5);
        assert_eq!(a.lane_range(3), 3..5);
        assert_eq!(a.lane_name(3), "cam");
        assert_eq!(a.lane_name(4), "tpu");
        assert_eq!(a.point_status(4), PointStatus::DeadlineExceeded);
        assert_eq!(a.point_message(4), Some("late"));
        assert_eq!(a.latency_s()[4], 13.0);
    }

    #[test]
    fn append_matches_monolithic_checksum() {
        let mut whole = filled();
        let extra = {
            let mut b = CandidateBatch::new();
            let id = b.intern("tpu");
            b.push_lane(id, 0.5, 0.25, 0.125, 0.99);
            b.close_point();
            b
        };
        let split_sum = {
            let mut merged = CandidateBatch::new();
            merged.append(&filled());
            merged.append(&extra);
            merged.checksum()
        };
        whole.append(&extra);
        assert_eq!(whole.checksum(), split_sum);
    }

    #[test]
    fn checksum_distinguishes_failure_from_empty_ok() {
        let mut ok = CandidateBatch::new();
        ok.close_point();
        let mut failed = CandidateBatch::new();
        failed.fail_point(PointStatus::Error, "e");
        assert_ne!(ok.checksum(), failed.checksum());
    }

    #[test]
    fn clear_retains_capacity_and_scratch() {
        let mut b = filled();
        let col = b.take_f64();
        b.put_f64(col);
        let cap = b.latency_s.capacity();
        assert!(cap >= 3);
        b.clear();
        assert_eq!(b.points(), 0);
        assert_eq!(b.latency_s.capacity(), cap);
        assert_eq!(b.scratch_f64.len(), 1);
    }

    #[test]
    fn exact_cache_hits_only_on_equal_keys() {
        let mut c: ExactCache<(u32, f64), f64> = ExactCache::new();
        let mut calls = 0;
        let mut get = |c: &mut ExactCache<(u32, f64), f64>, k: (u32, f64)| {
            *c.get_or_insert_with(k, |&(a, b)| {
                calls += 1;
                a as f64 + b
            })
        };
        assert_eq!(get(&mut c, (1, 0.5)), 1.5);
        assert_eq!(get(&mut c, (1, 0.5)), 1.5);
        assert_eq!(get(&mut c, (1, 0.5000001)), 1.0 + 0.5000001);
        assert_eq!(calls, 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unrolled_passes_match_scalar_expressions() {
        let a: Vec<u32> = (0..23).map(|i| i * 7 + 1).collect();
        let b: Vec<u32> = (0..23).map(|i| i * 3 + 2).collect();
        let k1 = 3.7e-9;
        let k2 = 1e6;
        let mut out = Vec::new();
        scale_u32(&mut out, &a, k1);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(out[i].to_bits(), (x as f64 * k1).to_bits());
        }
        product_scaled(&mut out, &a, &b, k1);
        for i in 0..a.len() {
            let scalar = (a[i] as usize * b[i] as usize) as f64 * k1;
            assert_eq!(out[i].to_bits(), scalar.to_bits());
        }
        product_scaled2(&mut out, &a, &b, k1, k2);
        for i in 0..a.len() {
            let scalar = (a[i] as usize * b[i] as usize) as f64 * k1 * k2;
            assert_eq!(out[i].to_bits(), scalar.to_bits());
        }
    }
}
