//! Deterministic pseudo-random number generation.
//!
//! The stack runs many Monte-Carlo experiments (device variation injection,
//! stochastic RRAM programming, synthetic dataset generation). All of them
//! must be reproducible from a single seed, independent of external crate
//! versions, so we implement xoshiro256\*\* (Blackman & Vigna) directly.

/// A deterministic xoshiro256\*\* generator seeded through SplitMix64.
///
/// # Examples
///
/// ```
/// use xlda_num::rng::Rng64;
///
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded into the 256-bit xoshiro state with SplitMix64,
    /// so nearby seeds still produce uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        Self {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Useful to give each worker thread or each array instance its own
    /// stream while keeping the whole experiment a function of one seed.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Derives the stream for one Monte-Carlo trial from `(seed, trial)`.
    ///
    /// The pair is folded through a SplitMix64-style finalizer before the
    /// usual state expansion, so nearby trial indices land on uncorrelated
    /// streams. Because the stream depends only on the experiment seed and
    /// the *global* trial index — never on which chunk or worker draws it —
    /// batched Monte-Carlo results are bit-identical under any
    /// chunking/scheduling of the trial range.
    pub fn for_trial(seed: u64, trial: u64) -> Self {
        let mut z = seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31) ^ trial)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)` (`lo` itself when the range is empty).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        let x = lo + (hi - lo) * self.uniform();
        // `lo + (hi - lo) * u` can round up to exactly `hi` even though
        // u < 1 (e.g. lo = 1, hi = 2, u = 1 - 2^-53 rounds to even), which
        // would break the half-open contract; step back one ulp instead.
        if x >= hi && lo < hi {
            next_down(hi).max(lo)
        } else {
            x
        }
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-free most of the time; loop guards against modulo bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0) by drawing from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "negative sigma");
        mean + sigma * self.standard_normal()
    }

    /// Log-normal sample: `exp(N(mu, sigma))`.
    ///
    /// Used for conductance distributions, which are strictly positive and
    /// right-skewed in measured RRAM data.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (order unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher-Yates over an index vector; fine for the sizes used
        // in episode sampling (n up to a few thousand).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Fills a vector with standard-normal samples.
    pub fn normal_vec(&mut self, len: usize, mean: f64, sigma: f64) -> Vec<f64> {
        (0..len).map(|_| self.normal(mean, sigma)).collect()
    }

    /// Fills a vector with Rademacher (+1/-1) samples.
    pub fn bipolar_vec(&mut self, len: usize) -> Vec<f64> {
        (0..len)
            .map(|_| if self.chance(0.5) { 1.0 } else { -1.0 })
            .collect()
    }
}

impl Default for Rng64 {
    fn default() -> Self {
        Self::new(0xD1E5_EED5)
    }
}

/// The largest `f64` strictly below a finite `x`.
fn next_down(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        // Below both 0.0 and -0.0 sits the smallest negative subnormal.
        f64::from_bits(0x8000_0000_0000_0001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng64::new(5);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng64::new(9);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.uniform()).collect();
        assert!((mean(&xs) - 0.5).abs() < 0.01);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(21);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.normal(3.0, 2.0)).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn log_normal_positive() {
        let mut rng = Rng64::new(33);
        for _ in 0..1000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::new(44);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(55);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::new(66);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut s = idx.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn uniform_in_never_returns_hi() {
        // Adversarial pair: hi is one ulp above lo, so before the fix
        // roughly half of all draws (any u > 0.5) rounded up to exactly
        // `hi`, violating the documented half-open contract.
        let lo = 1.0_f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        let mut rng = Rng64::new(2024);
        for _ in 0..200 {
            let x = rng.uniform_in(lo, hi);
            assert!(x >= lo && x < hi, "got {x:?} outside [{lo:?}, {hi:?})");
        }
        // Wide ranges keep the straight affine map.
        for _ in 0..1000 {
            let x = rng.uniform_in(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
        // Empty range degenerates to lo.
        assert_eq!(rng.uniform_in(2.5, 2.5), 2.5);
    }

    #[test]
    fn trial_streams_are_deterministic_and_distinct() {
        let mut a = Rng64::for_trial(42, 17);
        let mut b = Rng64::for_trial(42, 17);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent trials and adjacent seeds must decorrelate.
        let mut c = Rng64::for_trial(42, 18);
        let mut d = Rng64::for_trial(43, 17);
        let x = Rng64::for_trial(42, 17).next_u64();
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng64::new(77);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bipolar_is_balanced() {
        let mut rng = Rng64::new(88);
        let v = rng.bipolar_vec(10_000);
        let s: f64 = v.iter().sum();
        assert!(s.abs() < 300.0);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
    }
}
