//! Property-based tests for the numerical substrate.

use proptest::prelude::*;
use xlda_num::matrix::{cosine_similarity, dot, norm, squared_euclidean, Matrix};
use xlda_num::rng::Rng64;
use xlda_num::solve::{gauss_seidel, thomas_tridiagonal};
use xlda_num::stats::{mean, pearson, std_dev, Histogram};

proptest! {
    #[test]
    fn uniform_always_in_unit_interval(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        for _ in 0..100 {
            let x = rng.uniform();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_always_in_range(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = Rng64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..50)) {
        let mut rng = Rng64::new(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }

    #[test]
    fn sample_indices_distinct_and_bounded(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as usize).min(n);
        let mut rng = Rng64::new(seed);
        let mut idx = rng.sample_indices(n, k);
        prop_assert_eq!(idx.len(), k);
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), k);
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    #[test]
    fn mean_bounded_by_extremes(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn std_dev_shift_invariant(xs in prop::collection::vec(-1e3f64..1e3, 2..50), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((std_dev(&xs) - std_dev(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn pearson_in_unit_ball(
        xy in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)
    ) {
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        let r = pearson(&x, &y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }

    #[test]
    fn histogram_counts_every_sample(xs in prop::collection::vec(-10.0f64..10.0, 0..100), bins in 1usize..20) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn transpose_is_involution(r in 1usize..12, c in 1usize..12, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let m = Matrix::random_normal(r, c, 0.0, 1.0, &mut rng);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_is_linear(r in 1usize..10, c in 1usize..10, seed in any::<u64>(), a in -3.0f64..3.0) {
        let mut rng = Rng64::new(seed);
        let m = Matrix::random_normal(r, c, 0.0, 1.0, &mut rng);
        let x = rng.normal_vec(c, 0.0, 1.0);
        let scaled: Vec<f64> = x.iter().map(|v| a * v).collect();
        let y1 = m.matvec(&scaled);
        let y2: Vec<f64> = m.matvec(&x).iter().map(|v| a * v).collect();
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-9 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn matmul_matches_matvec_per_column(r in 1usize..8, k in 1usize..8, c in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let a = Matrix::random_normal(r, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(k, c, 0.0, 1.0, &mut rng);
        let p = a.matmul(&b);
        for j in 0..c {
            let col = a.matvec(&b.col(j));
            for (i, &cv) in col.iter().enumerate() {
                prop_assert!((p.at(i, j) - cv).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cauchy_schwarz(x in prop::collection::vec(-1e2f64..1e2, 1..30), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let y = rng.normal_vec(x.len(), 0.0, 10.0);
        prop_assert!(dot(&x, &y).abs() <= norm(&x) * norm(&y) + 1e-6);
        let cs = cosine_similarity(&x, &y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&cs));
    }

    #[test]
    fn squared_euclidean_is_metric_like(x in prop::collection::vec(-1e2f64..1e2, 1..30)) {
        prop_assert!(squared_euclidean(&x, &x) < 1e-9);
        let zeros = vec![0.0; x.len()];
        let d = squared_euclidean(&x, &zeros);
        prop_assert!((d - dot(&x, &x)).abs() < 1e-6 * (1.0 + d));
    }

    #[test]
    fn thomas_solution_satisfies_system(n in 2usize..20, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        // Diagonally dominant tridiagonal system.
        let sub: Vec<f64> = (0..n - 1).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let sup: Vec<f64> = (0..n - 1).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let diag: Vec<f64> = (0..n).map(|_| 3.0 + rng.uniform()).collect();
        let rhs: Vec<f64> = (0..n).map(|_| rng.uniform_in(-5.0, 5.0)).collect();
        let x = thomas_tridiagonal(&sub, &diag, &sup, &rhs);
        for i in 0..n {
            let mut lhs = diag[i] * x[i];
            if i > 0 {
                lhs += sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                lhs += sup[i] * x[i + 1];
            }
            prop_assert!((lhs - rhs[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", rhs[i]);
        }
    }

    #[test]
    fn gauss_seidel_converges_on_dominant_systems(n in 1usize..10, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let mut a = Matrix::random_normal(n, n, 0.0, 0.3, &mut rng);
        for i in 0..n {
            *a.at_mut(i, i) = 2.0 + n as f64 * 0.3; // force dominance
        }
        let b = rng.normal_vec(n, 0.0, 1.0);
        let mut x = vec![0.0; n];
        let info = gauss_seidel(&a, &b, &mut x, 1e-10, 500);
        prop_assert!(info.converged, "residual {}", info.residual);
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }
}
