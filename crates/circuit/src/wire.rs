//! Interconnect RC models.
//!
//! Wordlines, searchlines, bitlines, matchlines, and the H-tree routing in
//! the array organizations are all distributed RC lines. We provide Elmore
//! delay for unbuffered wires and an optimally repeated wire for long
//! global routes.

use crate::gate::BufferChain;
use crate::tech::TechNode;
use xlda_num::memo::quantize;
use xlda_num::memo_cache;

memo_cache!(
    static REPEATED_WIRE: (u64, u64, u64) => RepeatedWire,
    "circuit.repeated_wire"
);

/// A straight wire segment in a given technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// Length in meters.
    pub length_m: f64,
    tech: TechNode,
}

impl Wire {
    /// Creates a wire of `length_m` meters.
    ///
    /// # Panics
    ///
    /// Panics if the length is negative.
    pub fn new(length_m: f64, tech: &TechNode) -> Self {
        assert!(length_m >= 0.0, "negative wire length");
        Self {
            length_m,
            tech: tech.clone(),
        }
    }

    /// Total wire resistance (Ω).
    pub fn resistance(&self) -> f64 {
        self.tech.wire_r_per_um * self.length_m * 1e6
    }

    /// Total wire capacitance (F).
    pub fn capacitance(&self) -> f64 {
        self.tech.wire_c_per_um * self.length_m * 1e6
    }

    /// Elmore delay (s) of the distributed line itself: `0.38 R C`.
    pub fn elmore_delay(&self) -> f64 {
        0.38 * self.resistance() * self.capacitance()
    }

    /// Elmore delay (s) including a lumped driver resistance and load
    /// capacitance: `0.69 (R_drv (C_w + C_load) ) + 0.38 R_w C_w +
    /// 0.69 R_w C_load`.
    pub fn driven_delay(&self, r_driver: f64, c_load: f64) -> f64 {
        let rw = self.resistance();
        let cw = self.capacitance();
        0.69 * r_driver * (cw + c_load) + 0.38 * rw * cw + 0.69 * rw * c_load
    }

    /// Energy (J) to swing the wire plus load to Vdd once.
    pub fn switch_energy(&self, c_load: f64) -> f64 {
        self.tech.switch_energy(self.capacitance() + c_load)
    }
}

/// A long wire broken into repeated (buffered) segments.
///
/// Repeater insertion converts the quadratic RC growth of a long line into
/// linear delay; the array organization models use this for inter-mat
/// routing.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatedWire {
    segments: usize,
    segment: Wire,
    chain: BufferChain,
}

impl RepeatedWire {
    /// Builds a repeated wire of total length `length_m`, splitting into
    /// segments of at most `seg_len_m`.
    ///
    /// Global-route sizing recurs across sweep points sharing an
    /// organization geometry, so the repeated-wire RC solution is
    /// memoized per (length, segment length, technology).
    ///
    /// # Panics
    ///
    /// Panics if lengths are not positive.
    pub fn new(length_m: f64, seg_len_m: f64, tech: &TechNode) -> Self {
        assert!(
            length_m > 0.0 && seg_len_m > 0.0,
            "lengths must be positive"
        );
        // Deliberately unspanned: one wire build is ~200 ns, so even a
        // miss-path span would cost a third of what it measures (and the
        // triage grid takes ~1000 misses). Wire time lands in the calling
        // layer's self time instead.
        REPEATED_WIRE.get_or_insert_with(
            (quantize(length_m), quantize(seg_len_m), tech.memo_key()),
            || Self::new_uncached(length_m, seg_len_m, tech),
        )
    }

    fn new_uncached(length_m: f64, seg_len_m: f64, tech: &TechNode) -> Self {
        let segments = (length_m / seg_len_m).ceil().max(1.0) as usize;
        let segment = Wire::new(length_m / segments as f64, tech);
        let c_in = tech.gate_cap(3.0 * tech.min_width_um);
        let chain = BufferChain::size_for(c_in, segment.capacitance().max(c_in), tech);
        Self {
            segments,
            segment,
            chain,
        }
    }

    /// Number of repeated segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Total delay (s): per-segment buffer + Elmore delay, times segments.
    pub fn delay(&self) -> f64 {
        self.segments as f64 * (self.chain.delay() + self.segment.elmore_delay())
    }

    /// Total switching energy (J) for one transition along the whole wire.
    pub fn energy(&self) -> f64 {
        self.segments as f64 * (self.chain.energy() + self.segment.switch_energy(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechNode {
        TechNode::n40()
    }

    #[test]
    fn rc_scale_linearly_with_length() {
        let t = tech();
        let w1 = Wire::new(100e-6, &t);
        let w2 = Wire::new(200e-6, &t);
        assert!((w2.resistance() / w1.resistance() - 2.0).abs() < 1e-12);
        assert!((w2.capacitance() / w1.capacitance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elmore_quadratic_in_length() {
        let t = tech();
        let w1 = Wire::new(100e-6, &t);
        let w2 = Wire::new(200e-6, &t);
        assert!((w2.elmore_delay() / w1.elmore_delay() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn driven_delay_exceeds_bare_elmore() {
        let t = tech();
        let w = Wire::new(100e-6, &t);
        assert!(w.driven_delay(1e3, 10e-15) > w.elmore_delay());
    }

    #[test]
    fn repeated_wire_linearizes_delay() {
        let t = tech();
        let long = Wire::new(5e-3, &t); // 5 mm unbuffered
        let rep = RepeatedWire::new(5e-3, 250e-6, &t);
        assert!(rep.segments() >= 20);
        assert!(rep.delay() < long.elmore_delay());
    }

    #[test]
    fn repeated_wire_delay_roughly_linear() {
        let t = tech();
        let a = RepeatedWire::new(1e-3, 100e-6, &t);
        let b = RepeatedWire::new(2e-3, 100e-6, &t);
        let ratio = b.delay() / a.delay();
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn zero_length_wire_is_free() {
        let t = tech();
        let w = Wire::new(0.0, &t);
        assert_eq!(w.resistance(), 0.0);
        assert_eq!(w.elmore_delay(), 0.0);
    }
}
