//! CAM matchline discharge model.
//!
//! In a CAM row (Fig. 2A of the paper), the matchline is precharged and
//! every mismatching cell turns on a pull-down path. The line therefore
//! discharges with a rate proportional to the number of mismatches, which
//! is how best-match and threshold-match CAMs measure Hamming distance.
//!
//! This module computes discharge waveforms, sense margins between
//! adjacent mismatch counts, and the *mismatch limit* — the maximum number
//! of cells a matchline can carry before the sense amplifier can no longer
//! distinguish `m` from `m+1` mismatches (paper Sec. VI).

use crate::senseamp::SenseAmp;
use crate::tech::TechNode;
use xlda_num::memo::quantize;
use xlda_num::memo_cache;

/// Electrical parameters of one CAM cell as seen by its matchline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchlineConfig {
    /// Pull-down conductance of a fully mismatching cell (S).
    pub g_on: f64,
    /// Residual leakage conductance of a matching cell (S).
    pub g_off: f64,
    /// Capacitance each cell adds to the matchline (F).
    pub c_cell: f64,
    /// Precharge voltage as a fraction of Vdd.
    pub precharge_frac: f64,
    /// Reference voltage (sensing threshold) as a fraction of precharge.
    pub v_ref_frac: f64,
}

impl Default for MatchlineConfig {
    /// Defaults representative of a 2-FeFET cell: ~20 µS on, 2 nS off,
    /// 0.2 fF per cell, full precharge, half-swing reference.
    fn default() -> Self {
        Self {
            g_on: 20e-6,
            g_off: 2e-9,
            c_cell: 0.2e-15,
            precharge_frac: 1.0,
            v_ref_frac: 0.5,
        }
    }
}

impl MatchlineConfig {
    /// Quantized cache-key words for the five electrical parameters.
    fn quantized(&self) -> [u64; 5] {
        [
            quantize(self.g_on),
            quantize(self.g_off),
            quantize(self.c_cell),
            quantize(self.precharge_frac),
            quantize(self.v_ref_frac),
        ]
    }
}

memo_cache!(
    static MAX_CELLS: ([u64; 5], u64, usize, u64) => Option<usize>,
    "circuit.matchline_max_cells"
);

/// A matchline carrying `cells` CAM cells in a given technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Matchline {
    config: MatchlineConfig,
    cells: usize,
    tech: TechNode,
    c_total: f64,
    v_pre: f64,
}

impl Matchline {
    /// Builds the matchline model.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`, conductances are negative, `g_on <= g_off`,
    /// or fractions are outside `(0, 1]`.
    pub fn new(config: MatchlineConfig, tech: &TechNode, cells: usize) -> Self {
        assert!(cells > 0, "matchline needs at least one cell");
        assert!(config.g_on > 0.0 && config.g_off >= 0.0, "bad conductances");
        assert!(config.g_on > config.g_off, "on must exceed off conductance");
        assert!(
            config.precharge_frac > 0.0 && config.precharge_frac <= 1.0,
            "precharge fraction out of range"
        );
        assert!(
            config.v_ref_frac > 0.0 && config.v_ref_frac < 1.0,
            "reference fraction out of range"
        );
        // Wire capacitance: cells are pitched ~2F apart on the line.
        let pitch_m = 2.0 * tech.feature_m();
        let c_wire = tech.wire_c_per_um * (cells as f64 * pitch_m * 1e6);
        let sa = SenseAmp::voltage_latch(tech);
        let c_total = cells as f64 * config.c_cell + c_wire + sa.input_cap;
        let v_pre = config.precharge_frac * tech.vdd;
        Self {
            config,
            cells,
            tech: tech.clone(),
            c_total,
            v_pre,
        }
    }

    /// Number of cells on the line.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Total matchline capacitance (F).
    pub fn capacitance(&self) -> f64 {
        self.c_total
    }

    /// Precharge voltage (V).
    pub fn precharge_voltage(&self) -> f64 {
        self.v_pre
    }

    /// Total pull-down conductance with `mismatches` mismatching cells (S).
    ///
    /// # Panics
    ///
    /// Panics if `mismatches > cells`.
    pub fn conductance(&self, mismatches: usize) -> f64 {
        assert!(mismatches <= self.cells, "more mismatches than cells");
        mismatches as f64 * self.config.g_on + (self.cells - mismatches) as f64 * self.config.g_off
    }

    /// Matchline voltage at time `t` after evaluation starts (V).
    pub fn voltage_at(&self, t: f64, mismatches: usize) -> f64 {
        let g = self.conductance(mismatches);
        self.v_pre * (-t * g / self.c_total).exp()
    }

    /// Time (s) for the line to fall to the reference voltage with the
    /// given mismatch count. Returns `f64::INFINITY` when it never does
    /// (perfect match with zero leakage).
    pub fn discharge_time(&self, mismatches: usize) -> f64 {
        let g = self.conductance(mismatches);
        if g <= 0.0 {
            return f64::INFINITY;
        }
        (self.c_total / g) * (1.0 / self.config.v_ref_frac).ln()
    }

    /// Voltage margin (V) between `m` and `m+1` mismatches at sense time
    /// `t`: the differential a sense amp must resolve to count mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `m + 1 > cells`.
    pub fn voltage_margin(&self, t: f64, m: usize) -> f64 {
        self.voltage_at(t, m) - self.voltage_at(t, m + 1)
    }

    /// Sense time (s) that maximizes the margin between `m` and `m+1`
    /// mismatches.
    ///
    /// For `V0 (e^{-at} - e^{-bt})` the maximum lies at
    /// `t* = ln(b/a) / (b - a)`.
    pub fn best_sense_time(&self, m: usize) -> f64 {
        let a = self.conductance(m) / self.c_total;
        let b = self.conductance(m + 1) / self.c_total;
        if a <= 0.0 {
            // Perfect-match line never discharges: sense when the
            // 1-mismatch line has fallen to the reference.
            return self.discharge_time(m + 1);
        }
        (b / a).ln() / (b - a)
    }

    /// Best achievable margin (V) between `m` and `m+1` mismatches.
    pub fn best_margin(&self, m: usize) -> f64 {
        self.voltage_margin(self.best_sense_time(m), m)
    }

    /// The mismatch limit: largest mismatch count `m` such that the sense
    /// amplifier can still distinguish `m` from `m+1` on this line.
    ///
    /// Returns 0 when even 0-vs-1 cannot be resolved.
    pub fn mismatch_limit(&self, sa: &SenseAmp) -> usize {
        let mut limit = 0;
        for m in 0..self.cells {
            if self.best_margin(m) >= sa.min_resolvable {
                limit = m + 1;
            } else {
                break;
            }
        }
        limit
    }

    /// Largest number of cells per matchline such that mismatch counts up
    /// to `required_mismatches` remain distinguishable by `sa`.
    ///
    /// This is the array-width limit Eva-CAM derives for BE/TH match
    /// (paper Sec. VI). Returns `None` if even a 2-cell line fails.
    ///
    /// The search re-runs identically for every sweep point sharing a
    /// cell/technology/margin combination (typically the entire sweep
    /// axis over capacities), so the bound is memoized process-wide. The
    /// sense amplifier enters the limit only through its resolvable
    /// floor, which is all the key carries of it.
    pub fn max_cells_for(
        config: MatchlineConfig,
        tech: &TechNode,
        required_mismatches: usize,
        sa: &SenseAmp,
    ) -> Option<usize> {
        // Span on the miss path only; see `Decoder::foms`.
        MAX_CELLS.get_or_insert_with(
            (
                config.quantized(),
                tech.memo_key(),
                required_mismatches,
                quantize(sa.min_resolvable),
            ),
            || {
                let _span = xlda_obs::span!("circuit.matchline");
                Self::max_cells_for_uncached(config, tech, required_mismatches, sa)
            },
        )
    }

    fn max_cells_for_uncached(
        config: MatchlineConfig,
        tech: &TechNode,
        required_mismatches: usize,
        sa: &SenseAmp,
    ) -> Option<usize> {
        // Geometric-then-binary search over cell count.
        let ok = |n: usize| {
            if n <= required_mismatches {
                return false;
            }
            let ml = Matchline::new(config, tech, n);
            ml.mismatch_limit(sa) >= required_mismatches
        };
        let mut hi = (required_mismatches + 1).max(2);
        if !ok(hi) {
            return None;
        }
        while hi <= 1 << 20 && ok(hi * 2) {
            hi *= 2;
        }
        let mut lo = hi;
        hi *= 2;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Supply energy (J) of one search cycle on this line.
    ///
    /// The pull-down paths dissipate charge already stored on the line,
    /// so the supply only pays to restore the charge lost by the sense
    /// time: `E = C · (V_pre − V_end) · Vdd` per precharge-evaluate cycle.
    pub fn search_energy(&self, mismatches: usize, t_sense: f64) -> f64 {
        let v_end = self.voltage_at(t_sense, mismatches);
        self.c_total * (self.v_pre - v_end).max(0.0) * self.tech.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ml(cells: usize) -> Matchline {
        Matchline::new(MatchlineConfig::default(), &TechNode::n40(), cells)
    }

    #[test]
    fn more_mismatches_discharge_faster() {
        let m = ml(64);
        assert!(m.discharge_time(2) < m.discharge_time(1));
        assert!(m.discharge_time(32) < m.discharge_time(2));
    }

    #[test]
    fn perfect_match_with_leak_is_slow_but_finite() {
        let m = ml(64);
        let t0 = m.discharge_time(0);
        assert!(t0.is_finite());
        assert!(t0 > 100.0 * m.discharge_time(1));
    }

    #[test]
    fn zero_leak_never_discharges() {
        let cfg = MatchlineConfig {
            g_off: 0.0,
            ..MatchlineConfig::default()
        };
        let m = Matchline::new(cfg, &TechNode::n40(), 64);
        assert_eq!(m.discharge_time(0), f64::INFINITY);
    }

    #[test]
    fn voltage_decays_monotonically() {
        let m = ml(32);
        let v1 = m.voltage_at(1e-10, 4);
        let v2 = m.voltage_at(2e-10, 4);
        assert!(v2 < v1);
        assert!(v1 < m.precharge_voltage());
    }

    #[test]
    fn best_sense_time_maximizes_margin() {
        let m = ml(64);
        let t_star = m.best_sense_time(3);
        let best = m.voltage_margin(t_star, 3);
        for t in [t_star * 0.5, t_star * 0.8, t_star * 1.2, t_star * 2.0] {
            assert!(m.voltage_margin(t, 3) <= best + 1e-12);
        }
    }

    #[test]
    fn margin_shrinks_with_mismatch_count() {
        // Distinguishing 10 vs 11 is harder than 1 vs 2.
        let m = ml(64);
        assert!(m.best_margin(10) < m.best_margin(1));
    }

    #[test]
    fn margin_shrinks_with_line_length() {
        let short = ml(32);
        let long = ml(512);
        assert!(long.best_margin(4) < short.best_margin(4));
    }

    #[test]
    fn mismatch_limit_decreases_with_cells() {
        let t = TechNode::n40();
        let sa = SenseAmp::voltage_latch(&t);
        let short = ml(32).mismatch_limit(&sa);
        let long = ml(1024).mismatch_limit(&sa);
        assert!(short >= long, "short {short} long {long}");
        assert!(short >= 1);
    }

    #[test]
    fn max_cells_gives_consistent_bound() {
        let t = TechNode::n40();
        let sa = SenseAmp::voltage_latch(&t);
        let cfg = MatchlineConfig::default();
        let n = Matchline::max_cells_for(cfg, &t, 4, &sa).expect("should support 4 mismatches");
        assert!(n >= 8);
        let at_limit = Matchline::new(cfg, &t, n);
        assert!(at_limit.mismatch_limit(&sa) >= 4);
        let beyond = Matchline::new(cfg, &t, n * 2);
        assert!(beyond.mismatch_limit(&sa) < 4);
    }

    #[test]
    fn low_on_off_ratio_hits_limit_sooner() {
        // MRAM-like on/off ~ 2-3 versus FeFET-like 1e4.
        let t = TechNode::n40();
        let sa = SenseAmp::voltage_latch(&t);
        let good = MatchlineConfig::default();
        let bad = MatchlineConfig {
            g_on: 20e-6,
            g_off: 8e-6,
            ..good
        };
        let n_good = Matchline::max_cells_for(good, &t, 2, &sa).unwrap_or(0);
        let n_bad = Matchline::max_cells_for(bad, &t, 2, &sa).unwrap_or(0);
        assert!(n_bad < n_good, "bad {n_bad} good {n_good}");
    }

    #[test]
    fn search_energy_increases_with_mismatches() {
        let m = ml(64);
        let t = m.discharge_time(1);
        assert!(m.search_energy(8, t) > m.search_energy(0, t));
    }

    #[test]
    #[should_panic(expected = "more mismatches than cells")]
    fn too_many_mismatches_panics() {
        ml(8).conductance(9);
    }
}
