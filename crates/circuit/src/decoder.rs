//! Row/address decoder model.
//!
//! A decoder selecting 1-of-N wordlines is modeled as a tree of NAND
//! pre-decoders followed by a final NOR/driver stage, in the NVSim style:
//! delay and energy grow logarithmically in N, area linearly.

use crate::gate::{BufferChain, Gate, GateKind};
use crate::tech::TechNode;

/// Analytical 1-of-N decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoder {
    outputs: usize,
    address_bits: usize,
    tech: TechNode,
    /// Capacitive load on each decoded output (F), e.g. a wordline.
    pub output_load: f64,
}

impl Decoder {
    /// Creates a decoder with `outputs` decoded lines, each driving
    /// `output_load` farads.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is zero or the load is negative.
    pub fn new(outputs: usize, output_load: f64, tech: &TechNode) -> Self {
        assert!(outputs > 0, "decoder needs at least one output");
        assert!(output_load >= 0.0, "negative load");
        let address_bits = (outputs as f64).log2().ceil() as usize;
        Self {
            outputs,
            address_bits: address_bits.max(1),
            tech: tech.clone(),
            output_load,
        }
    }

    /// Number of decoded outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Address width in bits.
    pub fn address_bits(&self) -> usize {
        self.address_bits
    }

    /// Number of 2-input NAND levels in the decode tree.
    fn levels(&self) -> usize {
        // Pairs of address bits decoded per level.
        self.address_bits.div_ceil(2).max(1)
    }

    /// Decode delay (s): NAND tree plus the output driver chain.
    pub fn delay(&self) -> f64 {
        let nand = Gate::new(GateKind::Nand(2), 2.0, &self.tech);
        let inter_cap = nand.input_cap() * 2.0;
        let tree = self.levels() as f64 * nand.delay(inter_cap);
        let driver = self.driver().delay();
        tree + driver
    }

    /// Energy (J) per decode operation.
    ///
    /// One path through the tree switches, plus the selected driver.
    pub fn energy(&self) -> f64 {
        let nand = Gate::new(GateKind::Nand(2), 2.0, &self.tech);
        let inter_cap = nand.input_cap() * 2.0;
        let tree = self.levels() as f64 * nand.switching_energy(inter_cap);
        tree + self.driver().energy()
    }

    /// Leakage power (W) of the whole decoder.
    pub fn leakage_power(&self) -> f64 {
        let nand = Gate::new(GateKind::Nand(2), 2.0, &self.tech);
        // Roughly 2(N-1) gates in a full tree plus N drivers.
        let gates = 2.0 * (self.outputs as f64 - 1.0).max(1.0);
        gates * nand.leakage_power()
    }

    /// Area (m²): tree gates plus one driver chain per output.
    pub fn area(&self) -> f64 {
        let nand = Gate::new(GateKind::Nand(2), 2.0, &self.tech);
        let gates = 2.0 * (self.outputs as f64 - 1.0).max(1.0);
        gates * nand.area() + self.outputs as f64 * self.driver().area()
    }

    fn driver(&self) -> BufferChain {
        let c_in = self.tech.gate_cap(3.0 * self.tech.min_width_um) * 2.0;
        BufferChain::size_for(c_in, self.output_load.max(c_in), &self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechNode {
        TechNode::n40()
    }

    #[test]
    fn address_bits_ceil_log2() {
        let d = Decoder::new(100, 1e-15, &tech());
        assert_eq!(d.address_bits(), 7);
        assert_eq!(d.outputs(), 100);
    }

    #[test]
    fn delay_grows_logarithmically() {
        let t = tech();
        let d64 = Decoder::new(64, 10e-15, &t);
        let d4096 = Decoder::new(4096, 10e-15, &t);
        // 4096 outputs is 64x more rows but only 2x the address bits.
        assert!(d4096.delay() > d64.delay());
        assert!(d4096.delay() < 3.0 * d64.delay());
    }

    #[test]
    fn area_grows_roughly_linearly() {
        let t = tech();
        let d64 = Decoder::new(64, 10e-15, &t);
        let d256 = Decoder::new(256, 10e-15, &t);
        let ratio = d256.area() / d64.area();
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn heavier_wordline_costs_more_energy() {
        let t = tech();
        let light = Decoder::new(128, 5e-15, &t);
        let heavy = Decoder::new(128, 500e-15, &t);
        assert!(heavy.energy() > light.energy());
        assert!(heavy.delay() > light.delay());
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_outputs_panics() {
        Decoder::new(0, 1e-15, &tech());
    }
}
