//! Row/address decoder model.
//!
//! A decoder selecting 1-of-N wordlines is modeled as a tree of NAND
//! pre-decoders followed by a final NOR/driver stage, in the NVSim style:
//! delay and energy grow logarithmically in N, area linearly.

use crate::error::{ceil_log2, CircuitError};
use crate::gate::{BufferChain, Gate, GateKind};
use crate::tech::TechNode;
use xlda_num::memo::quantize;
use xlda_num::memo_cache;

/// Memoized figure-of-merit bundle of one decoder geometry. Sweeps
/// rebuild identical decoders thousands of times (same row count, load,
/// node), so the derived FOMs are cached process-wide.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DecoderFoms {
    delay: f64,
    energy: f64,
    leakage: f64,
    area: f64,
}

memo_cache!(static DECODER_FOMS: (usize, u64, u64) => DecoderFoms, "circuit.decoder");

/// Analytical 1-of-N decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoder {
    outputs: usize,
    address_bits: usize,
    tech: TechNode,
    /// Capacitive load on each decoded output (F), e.g. a wordline.
    pub output_load: f64,
}

impl Decoder {
    /// Creates a decoder with `outputs` decoded lines, each driving
    /// `output_load` farads.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is zero or the load is negative or NaN;
    /// guarded call sites should use [`Decoder::try_new`].
    pub fn new(outputs: usize, output_load: f64, tech: &TechNode) -> Self {
        match Self::try_new(outputs, output_load, tech) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Decoder::new`].
    ///
    /// Address width is computed with integer ceil-log2 (exact at powers
    /// of two, no float `log2` domain edge at `outputs == 1`); a
    /// degenerate 1-of-1 "decoder" still carries one address bit — the
    /// enable wire driving its single output.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoOutputs`] for zero outputs,
    /// [`CircuitError::InvalidLoad`] for a negative or NaN load.
    pub fn try_new(
        outputs: usize,
        output_load: f64,
        tech: &TechNode,
    ) -> Result<Self, CircuitError> {
        if outputs == 0 {
            return Err(CircuitError::NoOutputs);
        }
        if output_load < 0.0 || !output_load.is_finite() {
            return Err(CircuitError::InvalidLoad { value: output_load });
        }
        let address_bits = ceil_log2(outputs) as usize;
        Ok(Self {
            outputs,
            address_bits: address_bits.max(1),
            tech: tech.clone(),
            output_load,
        })
    }

    /// Number of decoded outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Address width in bits.
    pub fn address_bits(&self) -> usize {
        self.address_bits
    }

    /// Number of 2-input NAND levels in the decode tree.
    fn levels(&self) -> usize {
        // Pairs of address bits decoded per level.
        self.address_bits.div_ceil(2).max(1)
    }

    /// Decode delay (s): NAND tree plus the output driver chain.
    pub fn delay(&self) -> f64 {
        self.foms().delay
    }

    /// Energy (J) per decode operation.
    ///
    /// One path through the tree switches, plus the selected driver.
    pub fn energy(&self) -> f64 {
        self.foms().energy
    }

    /// Leakage power (W) of the whole decoder.
    pub fn leakage_power(&self) -> f64 {
        self.foms().leakage
    }

    /// Area (m²): tree gates plus one driver chain per output.
    pub fn area(&self) -> f64 {
        self.foms().area
    }

    /// The memoized FOM bundle for this geometry.
    fn foms(&self) -> DecoderFoms {
        // Span on the miss path only: hits are ~100 ns lookups, and a
        // span on every lookup would dominate the measurement.
        DECODER_FOMS.get_or_insert_with(
            (
                self.outputs,
                quantize(self.output_load),
                self.tech.memo_key(),
            ),
            || {
                let _span = xlda_obs::span!("circuit.decoder");
                self.compute_foms()
            },
        )
    }

    fn compute_foms(&self) -> DecoderFoms {
        let nand = Gate::new(GateKind::Nand(2), 2.0, &self.tech);
        let inter_cap = nand.input_cap() * 2.0;
        let driver = self.driver();
        // Roughly 2(N-1) gates in a full tree plus N drivers.
        let gates = 2.0 * (self.outputs as f64 - 1.0).max(1.0);
        DecoderFoms {
            delay: self.levels() as f64 * nand.delay(inter_cap) + driver.delay(),
            energy: self.levels() as f64 * nand.switching_energy(inter_cap) + driver.energy(),
            leakage: gates * nand.leakage_power(),
            area: gates * nand.area() + self.outputs as f64 * driver.area(),
        }
    }

    fn driver(&self) -> BufferChain {
        let c_in = self.tech.gate_cap(3.0 * self.tech.min_width_um) * 2.0;
        BufferChain::size_for(c_in, self.output_load.max(c_in), &self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechNode {
        TechNode::n40()
    }

    #[test]
    fn address_bits_ceil_log2() {
        let d = Decoder::new(100, 1e-15, &tech());
        assert_eq!(d.address_bits(), 7);
        assert_eq!(d.outputs(), 100);
    }

    #[test]
    fn delay_grows_logarithmically() {
        let t = tech();
        let d64 = Decoder::new(64, 10e-15, &t);
        let d4096 = Decoder::new(4096, 10e-15, &t);
        // 4096 outputs is 64x more rows but only 2x the address bits.
        assert!(d4096.delay() > d64.delay());
        assert!(d4096.delay() < 3.0 * d64.delay());
    }

    #[test]
    fn area_grows_roughly_linearly() {
        let t = tech();
        let d64 = Decoder::new(64, 10e-15, &t);
        let d256 = Decoder::new(256, 10e-15, &t);
        let ratio = d256.area() / d64.area();
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn heavier_wordline_costs_more_energy() {
        let t = tech();
        let light = Decoder::new(128, 5e-15, &t);
        let heavy = Decoder::new(128, 500e-15, &t);
        assert!(heavy.energy() > light.energy());
        assert!(heavy.delay() > light.delay());
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_outputs_panics() {
        Decoder::new(0, 1e-15, &tech());
    }

    #[test]
    fn try_new_reports_domain_errors() {
        let t = tech();
        assert_eq!(Decoder::try_new(0, 1e-15, &t), Err(CircuitError::NoOutputs));
        assert!(matches!(
            Decoder::try_new(64, -1e-15, &t),
            Err(CircuitError::InvalidLoad { .. })
        ));
        assert!(matches!(
            Decoder::try_new(64, f64::NAN, &t),
            Err(CircuitError::InvalidLoad { .. })
        ));
    }

    #[test]
    fn single_output_decoder_is_degenerate_but_finite() {
        // outputs == 1 sits on the old float-log2 edge (log2(1) == 0);
        // the decoder must still model as a 1-bit enable with positive,
        // finite figures of merit.
        let d = Decoder::try_new(1, 1e-15, &tech()).unwrap();
        assert_eq!(d.outputs(), 1);
        assert_eq!(d.address_bits(), 1);
        for v in [d.delay(), d.energy(), d.leakage_power(), d.area()] {
            assert!(v.is_finite() && v > 0.0, "{v}");
        }
    }

    #[test]
    fn address_bits_exact_at_powers_of_two() {
        let t = tech();
        // Float log2().ceil() can mis-round at exact powers of two
        // (e.g. when 2^k is not exactly representable in the rounding
        // path); the integer path must be exact.
        for k in [1usize, 4, 10, 16] {
            let d = Decoder::try_new(1 << k, 1e-15, &t).unwrap();
            assert_eq!(d.address_bits(), k);
            let d1 = Decoder::try_new((1 << k) + 1, 1e-15, &t).unwrap();
            assert_eq!(d1.address_bits(), k + 1);
        }
    }
}
