//! Typed errors for circuit-primitive domain violations.
//!
//! Circuit models are closed-form expressions with real domain
//! restrictions (logarithms, divisions); these errors name the first
//! violated restriction instead of panicking inside the math, so array-
//! and DSE-layer callers can treat a bad operating point as data.

/// A circuit-model input outside the model's domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircuitError {
    /// A sense amplifier was asked to resolve a zero, negative, or NaN
    /// differential — sensing is undefined without signal.
    NonPositiveDifferential {
        /// The offending differential (V or A depending on sense kind).
        value: f64,
    },
    /// A decoder with zero outputs has no address space to decode.
    NoOutputs,
    /// A capacitive load was negative or NaN.
    InvalidLoad {
        /// The offending load (F).
        value: f64,
    },
    /// A model produced a non-finite intermediate from finite inputs.
    NonFinite {
        /// Which quantity went non-finite.
        quantity: &'static str,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::NonPositiveDifferential { value } => {
                write!(f, "sense differential must be positive, got {value}")
            }
            CircuitError::NoOutputs => write!(f, "decoder needs at least one output"),
            CircuitError::InvalidLoad { value } => {
                write!(
                    f,
                    "capacitive load must be finite and non-negative, got {value}"
                )
            }
            CircuitError::NonFinite { quantity } => {
                write!(f, "{quantity} evaluated to a non-finite value")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Ceiling of log2 as integer arithmetic: the number of address bits
/// needed to distinguish `n` items (0 for `n <= 1`).
///
/// Float `log2().ceil()` mis-rounds near exact powers of two and returns
/// `-inf` for zero; this stays exact over the whole `usize` range.
///
/// # Examples
///
/// ```
/// use xlda_circuit::error::ceil_log2;
///
/// assert_eq!(ceil_log2(0), 0);
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(1024), 10);
/// assert_eq!(ceil_log2(1025), 11);
/// ```
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(usize::MAX), usize::BITS);
    }

    #[test]
    fn ceil_log2_agrees_with_float_away_from_edges() {
        for n in [5usize, 100, 617, 4096, 100_000] {
            assert_eq!(ceil_log2(n) as f64, (n as f64).log2().ceil());
        }
    }

    #[test]
    fn display_is_descriptive() {
        let e = CircuitError::NonPositiveDifferential { value: -0.1 };
        assert!(e.to_string().contains("positive"));
        assert!(CircuitError::NoOutputs
            .to_string()
            .contains("at least one output"));
    }
}
