//! Data-converter figure-of-merit models.
//!
//! Crossbar peripheries dominate analog in-memory compute cost: every
//! column needs an ADC (or shares one by multiplexing) and every row a
//! DAC or pulse-width modulator. We use standard SAR-ADC scaling: latency
//! linear in bit count, energy exponential in resolution via the
//! Walden figure of merit.

use crate::tech::TechNode;

/// Successive-approximation ADC model.
#[derive(Debug, Clone, PartialEq)]
pub struct SarAdc {
    /// Resolution in bits.
    pub bits: u8,
    /// Sampling rate (samples/s) the latency model assumes per bit-cycle.
    pub bit_cycle_s: f64,
    /// Walden figure of merit (J per conversion step).
    pub fom_j_per_step: f64,
    tech: TechNode,
}

impl SarAdc {
    /// Creates an ADC of the given resolution.
    ///
    /// The bit-cycle time is anchored to the technology (a SAR loop is a
    /// comparator + DAC settle, ~20 FO1), and the Walden FoM to ~30 fJ per
    /// conversion step — representative of published array peripheries.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 14`.
    pub fn new(bits: u8, tech: &TechNode) -> Self {
        assert!((1..=14).contains(&bits), "resolution out of model range");
        Self {
            bits,
            bit_cycle_s: 20.0 * tech.fo1_delay(),
            fom_j_per_step: 30e-15,
            tech: tech.clone(),
        }
    }

    /// Conversion latency (s): one cycle per bit plus sampling.
    pub fn latency(&self) -> f64 {
        (self.bits as f64 + 1.0) * self.bit_cycle_s
    }

    /// Energy per conversion (J): `FoM * 2^bits`.
    pub fn energy(&self) -> f64 {
        self.fom_j_per_step * (1u64 << self.bits) as f64
    }

    /// Layout area (m²), growing with the capacitive DAC: `~A0 * 2^bits`
    /// with a floor for comparator and logic.
    pub fn area(&self) -> f64 {
        let f2 = self.tech.f2_area_m2();
        (400.0 + 60.0 * (1u64 << self.bits) as f64) * f2
    }

    /// Quantizes `x` in `[lo, hi]` to the ADC's code grid, returning the
    /// reconstructed analog value. Values outside the range clip.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn quantize(&self, x: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "bad quantization range");
        let levels = (1u64 << self.bits) as f64 - 1.0;
        let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        let code = (t * levels).round();
        lo + code / levels * (hi - lo)
    }
}

/// Row-driver DAC (or pulse-width modulator) model.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDac {
    /// Resolution in bits (1 = binary pulse).
    pub bits: u8,
    tech: TechNode,
}

impl RowDac {
    /// Creates a row DAC of the given input resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 8`.
    pub fn new(bits: u8, tech: &TechNode) -> Self {
        assert!((1..=8).contains(&bits), "resolution out of model range");
        Self {
            bits,
            tech: tech.clone(),
        }
    }

    /// Settling latency (s). Multi-bit inputs are applied as
    /// pulse-width-modulated wordline pulses: latency scales with
    /// `2^bits` pulse slots.
    pub fn latency(&self) -> f64 {
        let slot = 10.0 * self.tech.fo1_delay();
        ((1u64 << self.bits) - 1).max(1) as f64 * slot
    }

    /// Energy per applied input (J), dominated by driving the line.
    pub fn energy(&self, c_line: f64) -> f64 {
        self.tech.switch_energy(c_line) * self.bits as f64
    }

    /// Layout area (m²).
    pub fn area(&self) -> f64 {
        (100.0 + 40.0 * self.bits as f64) * self.tech.f2_area_m2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechNode {
        TechNode::n40()
    }

    #[test]
    fn adc_energy_exponential_in_bits() {
        let t = tech();
        let a4 = SarAdc::new(4, &t);
        let a8 = SarAdc::new(8, &t);
        assert!((a8.energy() / a4.energy() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn adc_latency_linear_in_bits() {
        let t = tech();
        let a4 = SarAdc::new(4, &t);
        let a8 = SarAdc::new(8, &t);
        assert!((a8.latency() / a4.latency() - 9.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantize_reconstructs_grid() {
        let a = SarAdc::new(2, &tech()); // 4 levels: 0, 1/3, 2/3, 1
        assert_eq!(a.quantize(0.0, 0.0, 1.0), 0.0);
        assert!((a.quantize(0.30, 0.0, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.quantize(2.0, 0.0, 1.0), 1.0); // clips
        assert_eq!(a.quantize(-1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn quantize_error_bounded_by_half_lsb() {
        let a = SarAdc::new(6, &tech());
        let lsb = 1.0 / 63.0;
        for i in 0..100 {
            let x = i as f64 / 99.0;
            assert!((a.quantize(x, 0.0, 1.0) - x).abs() <= lsb / 2.0 + 1e-12);
        }
    }

    #[test]
    fn dac_pwm_latency_exponential() {
        let t = tech();
        let d1 = RowDac::new(1, &t);
        let d4 = RowDac::new(4, &t);
        assert!((d4.latency() / d1.latency() - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of model range")]
    fn adc_zero_bits_panics() {
        SarAdc::new(0, &tech());
    }
}
