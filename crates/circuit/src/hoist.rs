//! Exact-key hoist caches for columnar sweep kernels.
//!
//! The global memo layer ([`xlda_num::memo`]) quantizes `f64` keys to 44
//! bits before hashing — transparent in practice, but the columnar sweep
//! path promises *bit-identical by construction*, which a quantized key
//! cannot. The batch kernels therefore hoist repeated circuit solves
//! through [`ExactCache`] instead: a linear scan keyed by full
//! `PartialEq` equality, scoped to one batch (one chunk) rather than
//! process-wide, so a hit can only ever return a value computed from an
//! identical input. See `DESIGN.md` §14 for the hoisting rules.
//!
//! This module provides the circuit-level instance the array models
//! share: [`RepeatedWireCache`], covering the global-route sizing solve
//! that dominates the per-point remainder of the NVM cold path once the
//! geometry sub-solves are hoisted.

use crate::tech::TechNode;
use crate::wire::RepeatedWire;
pub use xlda_num::batch::ExactCache;

/// Batch-scoped exact-key cache over [`RepeatedWire::new`].
///
/// Keyed by the exact bit patterns of `(length, segment length)` plus the
/// full technology node — no quantization — so the cached solve is the
/// one the scalar path would recompute, bit for bit. One batch touches a
/// handful of distinct route lengths (one per array organization that
/// wins a geometry search), so the linear scan stays short.
#[derive(Debug, Clone, Default)]
pub struct RepeatedWireCache {
    inner: ExactCache<(u64, u64, TechNode), RepeatedWire>,
}

impl RepeatedWireCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The repeated-wire solution for `(length_m, seg_len_m, tech)`,
    /// computed via [`RepeatedWire::new`] on first use.
    ///
    /// # Panics
    ///
    /// Panics if lengths are not positive (as [`RepeatedWire::new`]).
    pub fn get(&mut self, length_m: f64, seg_len_m: f64, tech: &TechNode) -> RepeatedWire {
        self.inner.get_or_clone(
            (length_m.to_bits(), seg_len_m.to_bits(), tech.clone()),
            |_| RepeatedWire::new(length_m, seg_len_m, tech),
        )
    }

    /// Number of distinct route solves cached.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no solve has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_route_is_bit_identical_to_direct_solve() {
        let tech = TechNode::n40();
        let mut cache = RepeatedWireCache::new();
        for len in [1e-6, 37.5e-6, 1.2e-3] {
            let cached = cache.get(len, 250e-6, &tech);
            let direct = RepeatedWire::new(len, 250e-6, &tech);
            assert_eq!(cached.delay().to_bits(), direct.delay().to_bits());
            assert_eq!(cached.energy().to_bits(), direct.energy().to_bits());
        }
        assert_eq!(cache.len(), 3);
        // A repeat hit does not grow the cache.
        cache.get(37.5e-6, 250e-6, &tech);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn distinct_techs_do_not_collide() {
        let mut cache = RepeatedWireCache::new();
        let a = cache.get(1e-4, 250e-6, &TechNode::n40()).delay();
        let b = cache.get(1e-4, 250e-6, &TechNode::n22()).delay();
        assert_ne!(a.to_bits(), b.to_bits());
        assert_eq!(cache.len(), 2);
    }
}
