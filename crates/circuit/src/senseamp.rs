//! Sense amplifier models.
//!
//! The sense amplifier is the arbiter of every array-size limit discussed
//! in Sec. VI of the paper: a matchline (or bitline) swing can only be
//! resolved if it exceeds the amplifier's input offset plus noise floor —
//! the *sense margin*. We model latch-type voltage sense amps and
//! current-mode sense amps with an explicit resolvable-input threshold.

use crate::error::CircuitError;
use crate::tech::TechNode;
use xlda_num::memo::quantize;
use xlda_num::memo_cache;

memo_cache!(
    static SENSE_ENERGY: (SenseKind, u64, u64, u64) => f64,
    "circuit.senseamp_energy"
);

/// Sensing style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SenseKind {
    /// Cross-coupled latch resolving a differential voltage.
    VoltageLatch,
    /// Current conveyor comparing cell current against a reference.
    CurrentMode,
}

/// An analytical sense amplifier.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAmp {
    /// Sensing style.
    pub kind: SenseKind,
    /// Minimum resolvable differential input: volts for
    /// [`SenseKind::VoltageLatch`], amperes for [`SenseKind::CurrentMode`].
    pub min_resolvable: f64,
    /// Input capacitance presented to the sensed line (F).
    pub input_cap: f64,
    tech: TechNode,
}

impl SenseAmp {
    /// A latch-type voltage sense amp with typical ~40 mV usable offset
    /// margin at the default node, scaled with Vdd across nodes.
    pub fn voltage_latch(tech: &TechNode) -> Self {
        Self {
            kind: SenseKind::VoltageLatch,
            min_resolvable: 0.040 * (tech.vdd / 1.0),
            input_cap: tech.gate_cap(6.0 * tech.min_width_um),
            tech: tech.clone(),
        }
    }

    /// A current-mode sense amp resolving ~1 µA differentials.
    pub fn current_mode(tech: &TechNode) -> Self {
        Self {
            kind: SenseKind::CurrentMode,
            min_resolvable: 1e-6,
            input_cap: tech.gate_cap(4.0 * tech.min_width_um),
            tech: tech.clone(),
        }
    }

    /// Resolution latency (s).
    ///
    /// Regeneration time grows logarithmically as the input differential
    /// approaches the resolvable floor: `t = t0 * ln(Vdd / dv)` clamped at
    /// the floor, a standard latch metastability model.
    ///
    /// # Panics
    ///
    /// Panics if `input_diff` is zero, negative, or NaN; guarded call
    /// sites (sweeps over unvalidated operating points) should use
    /// [`SenseAmp::try_latency`] instead.
    pub fn latency(&self, input_diff: f64) -> f64 {
        self.try_latency(input_diff)
            .expect("differential must be positive")
    }

    /// Fallible [`SenseAmp::latency`].
    ///
    /// Differentials between zero and [`SenseAmp::min_resolvable`] are
    /// *saturated* to the floor (the latch still resolves, at its
    /// worst-case metastable latency) rather than rejected; only
    /// zero/negative/NaN differentials — where the `ln(full/dv)` model
    /// leaves its domain — are errors.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NonPositiveDifferential`] if `input_diff` is not
    /// a positive number.
    pub fn try_latency(&self, input_diff: f64) -> Result<f64, CircuitError> {
        // The explicit NaN arm matters: `x <= 0.0` alone would let NaN through.
        if input_diff <= 0.0 || input_diff.is_nan() {
            return Err(CircuitError::NonPositiveDifferential { value: input_diff });
        }
        let t0 = 4.0 * self.tech.fo1_delay();
        let full = match self.kind {
            SenseKind::VoltageLatch => self.tech.vdd,
            SenseKind::CurrentMode => 100e-6,
        };
        let dv = input_diff.max(self.min_resolvable);
        Ok(t0 * (1.0 + (full / dv).ln().max(0.0)))
    }

    /// Whether the amplifier can resolve the given differential at all.
    pub fn can_resolve(&self, input_diff: f64) -> bool {
        input_diff >= self.min_resolvable
    }

    /// Energy (J) per sense operation (memoized per amp geometry).
    pub fn energy(&self) -> f64 {
        SENSE_ENERGY.get_or_insert_with(
            (
                self.kind,
                quantize(self.min_resolvable),
                quantize(self.input_cap),
                self.tech.memo_key(),
            ),
            || self.compute_energy(),
        )
    }

    fn compute_energy(&self) -> f64 {
        // Latch internal nodes ~ 8 minimum gate caps swing to Vdd.
        let c_int = self.tech.gate_cap(8.0 * self.tech.min_width_um);
        let base = self.tech.switch_energy(c_int + self.input_cap);
        match self.kind {
            SenseKind::VoltageLatch => base,
            // Current-mode amps burn static bias current while enabled.
            SenseKind::CurrentMode => base + 20e-6 * self.tech.vdd * self.latency(10e-6),
        }
    }

    /// Layout area (m²).
    pub fn area(&self) -> f64 {
        let f2 = self.tech.f2_area_m2();
        match self.kind {
            SenseKind::VoltageLatch => 120.0 * f2,
            SenseKind::CurrentMode => 200.0 * f2,
        }
    }

    /// Leakage power (W).
    pub fn leakage_power(&self) -> f64 {
        self.tech.leakage(8.0 * self.tech.min_width_um) * self.tech.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechNode {
        TechNode::n40()
    }

    #[test]
    fn smaller_differential_is_slower() {
        let sa = SenseAmp::voltage_latch(&tech());
        assert!(sa.latency(0.05) > sa.latency(0.5));
    }

    #[test]
    fn latency_floors_at_min_resolvable() {
        let sa = SenseAmp::voltage_latch(&tech());
        // Below the floor the model clamps rather than diverging.
        assert_eq!(sa.latency(1e-9), sa.latency(sa.min_resolvable / 2.0));
    }

    #[test]
    fn can_resolve_threshold() {
        let sa = SenseAmp::voltage_latch(&tech());
        assert!(sa.can_resolve(0.1));
        assert!(!sa.can_resolve(0.001));
    }

    #[test]
    fn current_mode_costs_more_energy() {
        let t = tech();
        let v = SenseAmp::voltage_latch(&t);
        let c = SenseAmp::current_mode(&t);
        assert!(c.energy() > v.energy());
        assert!(c.area() > v.area());
    }

    #[test]
    fn offset_scales_with_vdd() {
        let hi = SenseAmp::voltage_latch(&TechNode::n130());
        let lo = SenseAmp::voltage_latch(&TechNode::n22());
        assert!(hi.min_resolvable > lo.min_resolvable);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_differential_panics() {
        SenseAmp::voltage_latch(&tech()).latency(0.0);
    }

    #[test]
    fn try_latency_rejects_non_positive_and_nan() {
        let sa = SenseAmp::voltage_latch(&tech());
        for bad in [0.0, -0.04, f64::NAN, f64::NEG_INFINITY] {
            match sa.try_latency(bad) {
                Err(CircuitError::NonPositiveDifferential { value }) => {
                    assert!(value.is_nan() || value <= 0.0)
                }
                other => panic!("expected domain error for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_latency_saturates_below_floor() {
        // A tiny-but-positive differential is saturated to the resolvable
        // floor (worst-case latch latency), not rejected: the operating
        // point is slow, not infeasible.
        let sa = SenseAmp::voltage_latch(&tech());
        let at_floor = sa.try_latency(sa.min_resolvable).unwrap();
        let below = sa.try_latency(sa.min_resolvable * 1e-6).unwrap();
        assert_eq!(below, at_floor);
        assert!(below.is_finite() && below > 0.0);
    }

    #[test]
    fn try_latency_agrees_with_latency_in_domain() {
        let sa = SenseAmp::current_mode(&tech());
        for dv in [1e-7, 1e-6, 5e-6, 1e-4] {
            assert_eq!(sa.try_latency(dv).unwrap(), sa.latency(dv));
        }
    }
}
