//! Logical-effort gate delay and energy models.
//!
//! The analytical array models need quick, composable estimates of logic
//! delay (decoders, drivers, control). We use the classic logical-effort
//! formulation: delay = tau * (p + g * h), with tau anchored to the
//! technology's FO1 inverter delay.

use crate::tech::TechNode;
use xlda_num::memo::quantize;
use xlda_num::memo_cache;

/// Static CMOS gate families with their logical effort and parasitic delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter: g = 1, p = 1.
    Inverter,
    /// n-input NAND: g = (n+2)/3, p = n.
    Nand(u8),
    /// n-input NOR: g = (2n+1)/3, p = n.
    Nor(u8),
}

impl GateKind {
    /// Logical effort of the gate.
    ///
    /// # Panics
    ///
    /// Panics for 0-input NAND/NOR.
    pub fn logical_effort(&self) -> f64 {
        match *self {
            GateKind::Inverter => 1.0,
            GateKind::Nand(n) => {
                assert!(n >= 1, "NAND needs at least one input");
                (n as f64 + 2.0) / 3.0
            }
            GateKind::Nor(n) => {
                assert!(n >= 1, "NOR needs at least one input");
                (2.0 * n as f64 + 1.0) / 3.0
            }
        }
    }

    /// Parasitic delay of the gate (in units of the inverter parasitic).
    ///
    /// # Panics
    ///
    /// Panics for 0-input NAND/NOR.
    pub fn parasitic(&self) -> f64 {
        match *self {
            GateKind::Inverter => 1.0,
            GateKind::Nand(n) | GateKind::Nor(n) => {
                assert!(n >= 1, "gate needs at least one input");
                n as f64
            }
        }
    }
}

/// A sized static CMOS gate in a given technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Gate family.
    pub kind: GateKind,
    /// Drive strength relative to a minimum inverter.
    pub size: f64,
    tech: TechNode,
}

impl Gate {
    /// Creates a gate of relative drive strength `size` (1.0 = minimum
    /// inverter drive).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not positive.
    pub fn new(kind: GateKind, size: f64, tech: &TechNode) -> Self {
        assert!(size > 0.0, "gate size must be positive");
        Self {
            kind,
            size,
            tech: tech.clone(),
        }
    }

    /// Input capacitance presented by this gate (F).
    pub fn input_cap(&self) -> f64 {
        let min_cin = self.tech.gate_cap(3.0 * self.tech.min_width_um);
        min_cin * self.size * self.kind.logical_effort()
    }

    /// Propagation delay (s) when driving load capacitance `c_load`.
    pub fn delay(&self, c_load: f64) -> f64 {
        let tau = self.tech.fo1_delay();
        let min_cin = self.tech.gate_cap(3.0 * self.tech.min_width_um);
        let h = c_load / (min_cin * self.size);
        tau * (self.kind.parasitic() + self.kind.logical_effort() * h)
    }

    /// Dynamic switching energy (J) for one output transition into
    /// `c_load`, including self-loading.
    pub fn switching_energy(&self, c_load: f64) -> f64 {
        let c_self = self.tech.drain_cap(3.0 * self.tech.min_width_um) * self.size;
        self.tech.switch_energy(c_load + c_self)
    }

    /// Leakage power (W) of the gate.
    pub fn leakage_power(&self) -> f64 {
        let w = 3.0 * self.tech.min_width_um * self.size;
        self.tech.leakage(w) * self.tech.vdd * 0.5
    }

    /// Layout area estimate (m²): transistor area with routing overhead.
    pub fn area(&self) -> f64 {
        let f = self.tech.feature_m();
        let inputs = match self.kind {
            GateKind::Inverter => 1.0,
            GateKind::Nand(n) | GateKind::Nor(n) => n as f64,
        };
        // ~30 F² per transistor pair, scaled by size and fan-in.
        30.0 * f * f * self.size * inputs
    }
}

/// A geometrically sized inverter buffer chain driving a large load.
///
/// Used for wordline/searchline drivers: given an input capacitance budget
/// and an output load, the chain is sized with stage effort ~4.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferChain {
    stages: usize,
    stage_effort: f64,
    tech: TechNode,
    c_in: f64,
    c_load: f64,
}

memo_cache!(static CHAIN_SIZING: (u64, u64, u64) => BufferChain, "circuit.buffer_chain");

impl BufferChain {
    /// Sizes a chain from input capacitance `c_in` to load `c_load`.
    ///
    /// Chooses the number of stages that keeps per-stage effort near the
    /// optimum of ~4. A chain driving a load smaller than its input is a
    /// single stage.
    ///
    /// Driver sizing recurs identically across sweep points (every
    /// wordline/searchline/repeater of the same geometry sizes the same
    /// chain), so the result is memoized process-wide keyed by the
    /// quantized capacitances and the technology digest.
    ///
    /// # Panics
    ///
    /// Panics if either capacitance is not positive.
    pub fn size_for(c_in: f64, c_load: f64, tech: &TechNode) -> Self {
        assert!(c_in > 0.0 && c_load > 0.0, "capacitances must be positive");
        CHAIN_SIZING.get_or_insert_with((quantize(c_in), quantize(c_load), tech.memo_key()), || {
            Self::size_for_uncached(c_in, c_load, tech)
        })
    }

    fn size_for_uncached(c_in: f64, c_load: f64, tech: &TechNode) -> Self {
        let total_effort = (c_load / c_in).max(1.0);
        let stages = (total_effort.ln() / 4.0f64.ln()).round().max(1.0) as usize;
        let stage_effort = total_effort.powf(1.0 / stages as f64);
        Self {
            stages,
            stage_effort,
            tech: tech.clone(),
            c_in,
            c_load,
        }
    }

    /// Number of inverter stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Total propagation delay (s).
    pub fn delay(&self) -> f64 {
        let tau = self.tech.fo1_delay();
        self.stages as f64 * tau * (1.0 + self.stage_effort)
    }

    /// Total switching energy (J) for one transition (all stages).
    pub fn energy(&self) -> f64 {
        // Sum of stage output capacitances: c_in * (f + f^2 + ... + f^n).
        let f = self.stage_effort;
        let mut c_total = 0.0;
        let mut c = self.c_in;
        for _ in 0..self.stages {
            c *= f;
            c_total += c;
        }
        // Last stage drives the actual load; replace its ideal cap.
        c_total += self.c_load - c;
        self.tech.switch_energy(c_total.max(self.c_load))
    }

    /// Area estimate (m²) of the whole chain.
    pub fn area(&self) -> f64 {
        let f = self.stage_effort;
        let mut size = 1.0;
        let mut total = 0.0;
        for _ in 0..self.stages {
            total += size;
            size *= f;
        }
        let min_inv_area = 30.0 * self.tech.f2_area_m2();
        total * min_inv_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechNode {
        TechNode::n40()
    }

    #[test]
    fn logical_effort_values() {
        assert_eq!(GateKind::Inverter.logical_effort(), 1.0);
        assert!((GateKind::Nand(2).logical_effort() - 4.0 / 3.0).abs() < 1e-12);
        assert!((GateKind::Nor(2).logical_effort() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_gate_is_faster_into_same_load() {
        let t = tech();
        let small = Gate::new(GateKind::Inverter, 1.0, &t);
        let big = Gate::new(GateKind::Inverter, 8.0, &t);
        let load = 50e-15;
        assert!(big.delay(load) < small.delay(load));
    }

    #[test]
    fn nand_slower_than_inverter() {
        let t = tech();
        let inv = Gate::new(GateKind::Inverter, 1.0, &t);
        let nand = Gate::new(GateKind::Nand(4), 1.0, &t);
        let load = 10e-15;
        assert!(nand.delay(load) > inv.delay(load));
    }

    #[test]
    fn buffer_chain_stage_count_grows_with_load() {
        let t = tech();
        let c_in = t.gate_cap(3.0 * t.min_width_um);
        let small = BufferChain::size_for(c_in, c_in * 4.0, &t);
        let large = BufferChain::size_for(c_in, c_in * 4000.0, &t);
        assert!(large.stages() > small.stages());
    }

    #[test]
    fn buffer_chain_beats_single_gate_for_big_load() {
        let t = tech();
        let c_in = t.gate_cap(3.0 * t.min_width_um);
        let load = c_in * 10_000.0;
        let chain = BufferChain::size_for(c_in, load, &t);
        let single = Gate::new(GateKind::Inverter, 1.0, &t);
        assert!(chain.delay() < single.delay(load));
    }

    #[test]
    fn buffer_chain_energy_at_least_load_energy() {
        let t = tech();
        let c_in = t.gate_cap(3.0 * t.min_width_um);
        let load = 200e-15;
        let chain = BufferChain::size_for(c_in, load, &t);
        assert!(chain.energy() >= t.switch_energy(load));
    }

    #[test]
    fn tiny_load_single_stage() {
        let t = tech();
        let c_in = 10e-15;
        let chain = BufferChain::size_for(c_in, 1e-15, &t);
        assert_eq!(chain.stages(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_gate_panics() {
        Gate::new(GateKind::Inverter, 0.0, &tech());
    }

    #[test]
    fn size_for_memoization_is_transparent() {
        let t = tech();
        let a = BufferChain::size_for(2e-15, 150e-15, &t);
        let b = BufferChain::size_for(2e-15, 150e-15, &t);
        assert_eq!(a, b);
        assert_eq!(a.delay().to_bits(), b.delay().to_bits());
        assert_eq!(a.energy().to_bits(), b.energy().to_bits());
    }
}
