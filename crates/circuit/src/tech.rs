//! Process-technology parameter tables.
//!
//! Values are representative of published ITRS/PTM-class numbers at each
//! node and of the parameter tables shipped with NVSim-family tools. They
//! are *triage-grade*: intended to rank design options and expose scaling
//! trends, not to replace SPICE sign-off (the same positioning the paper
//! gives its analytical tools in Sec. VI).

/// Electrical parameters of a CMOS process node.
///
/// All values are in SI units (meters, volts, amperes, farads, ohms).
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Feature size in nanometers (e.g. 40.0 for the 40 nm node).
    pub feature_nm: f64,
    /// Nominal supply voltage (V).
    pub vdd: f64,
    /// NMOS on-current per micron of width (A/µm).
    pub ion_n_per_um: f64,
    /// PMOS on-current per micron of width (A/µm).
    pub ion_p_per_um: f64,
    /// Off-state leakage per micron of width (A/µm).
    pub ioff_per_um: f64,
    /// Gate capacitance per micron of width (F/µm).
    pub cgate_per_um: f64,
    /// Drain junction capacitance per micron of width (F/µm).
    pub cdrain_per_um: f64,
    /// Wire resistance per micron at intermediate metal (Ω/µm).
    pub wire_r_per_um: f64,
    /// Wire capacitance per micron at intermediate metal (F/µm).
    pub wire_c_per_um: f64,
    /// Minimum transistor width (µm).
    pub min_width_um: f64,
}

impl TechNode {
    /// 130 nm node.
    pub fn n130() -> Self {
        Self {
            feature_nm: 130.0,
            vdd: 1.3,
            ion_n_per_um: 0.60e-3, // 600 µA/µm
            ion_p_per_um: 0.30e-3,
            ioff_per_um: 1e-8, // 10 nA/µm
            cgate_per_um: 1.6e-15,
            cdrain_per_um: 1.2e-15,
            wire_r_per_um: 0.4,
            wire_c_per_um: 0.23e-15,
            min_width_um: 0.26,
        }
    }

    /// 90 nm node (used by the PCM and MRAM reference chips in Fig. 5).
    pub fn n90() -> Self {
        Self {
            feature_nm: 90.0,
            vdd: 1.2,
            ion_n_per_um: 0.75e-3,
            ion_p_per_um: 0.36e-3,
            ioff_per_um: 2e-8,
            cgate_per_um: 1.3e-15,
            cdrain_per_um: 1.0e-15,
            wire_r_per_um: 0.8,
            wire_c_per_um: 0.22e-15,
            min_width_um: 0.18,
        }
    }

    /// 65 nm node.
    pub fn n65() -> Self {
        Self {
            feature_nm: 65.0,
            vdd: 1.1,
            ion_n_per_um: 0.90e-3,
            ion_p_per_um: 0.45e-3,
            ioff_per_um: 4e-8,
            cgate_per_um: 1.1e-15,
            cdrain_per_um: 0.85e-15,
            wire_r_per_um: 1.4,
            wire_c_per_um: 0.21e-15,
            min_width_um: 0.13,
        }
    }

    /// 45 nm node.
    pub fn n45() -> Self {
        Self {
            feature_nm: 45.0,
            vdd: 1.0,
            ion_n_per_um: 1.05e-3,
            ion_p_per_um: 0.52e-3,
            ioff_per_um: 8e-8,
            cgate_per_um: 0.95e-15,
            cdrain_per_um: 0.72e-15,
            wire_r_per_um: 2.5,
            wire_c_per_um: 0.20e-15,
            min_width_um: 0.09,
        }
    }

    /// 40 nm node (used by the RRAM reference chip in Fig. 5).
    pub fn n40() -> Self {
        Self {
            feature_nm: 40.0,
            vdd: 1.0,
            ion_n_per_um: 1.10e-3,
            ion_p_per_um: 0.55e-3,
            ioff_per_um: 1e-7,
            cgate_per_um: 0.90e-15,
            cdrain_per_um: 0.68e-15,
            wire_r_per_um: 3.0,
            wire_c_per_um: 0.20e-15,
            min_width_um: 0.08,
        }
    }

    /// 32 nm node.
    pub fn n32() -> Self {
        Self {
            feature_nm: 32.0,
            vdd: 0.95,
            ion_n_per_um: 1.20e-3,
            ion_p_per_um: 0.62e-3,
            ioff_per_um: 1.5e-7,
            cgate_per_um: 0.80e-15,
            cdrain_per_um: 0.60e-15,
            wire_r_per_um: 4.2,
            wire_c_per_um: 0.19e-15,
            min_width_um: 0.064,
        }
    }

    /// 22 nm node.
    pub fn n22() -> Self {
        Self {
            feature_nm: 22.0,
            vdd: 0.9,
            ion_n_per_um: 1.35e-3,
            ion_p_per_um: 0.72e-3,
            ioff_per_um: 2e-7,
            cgate_per_um: 0.70e-15,
            cdrain_per_um: 0.52e-15,
            wire_r_per_um: 6.0,
            wire_c_per_um: 0.18e-15,
            min_width_um: 0.044,
        }
    }

    /// Looks up a preset node by feature size in nanometers.
    ///
    /// Returns `None` when the node is not in the table.
    pub fn by_feature_nm(nm: u32) -> Option<Self> {
        match nm {
            130 => Some(Self::n130()),
            90 => Some(Self::n90()),
            65 => Some(Self::n65()),
            45 => Some(Self::n45()),
            40 => Some(Self::n40()),
            32 => Some(Self::n32()),
            22 => Some(Self::n22()),
            _ => None,
        }
    }

    /// All preset nodes, largest to smallest.
    pub fn all() -> Vec<Self> {
        vec![
            Self::n130(),
            Self::n90(),
            Self::n65(),
            Self::n45(),
            Self::n40(),
            Self::n32(),
            Self::n22(),
        ]
    }

    /// Feature size in meters.
    pub fn feature_m(&self) -> f64 {
        self.feature_nm * 1e-9
    }

    /// Area of one F² in square meters.
    pub fn f2_area_m2(&self) -> f64 {
        self.feature_m() * self.feature_m()
    }

    /// On-resistance (Ω) of an NMOS of width `w_um` microns, estimated as
    /// `Vdd / Ion(w)` — the standard switch-model approximation.
    ///
    /// # Panics
    ///
    /// Panics if `w_um` is not positive.
    pub fn nmos_on_resistance(&self, w_um: f64) -> f64 {
        assert!(w_um > 0.0, "width must be positive");
        self.vdd / (self.ion_n_per_um * w_um)
    }

    /// On-resistance (Ω) of a PMOS of width `w_um` microns.
    ///
    /// # Panics
    ///
    /// Panics if `w_um` is not positive.
    pub fn pmos_on_resistance(&self, w_um: f64) -> f64 {
        assert!(w_um > 0.0, "width must be positive");
        self.vdd / (self.ion_p_per_um * w_um)
    }

    /// Gate capacitance (F) of a transistor of width `w_um` microns.
    pub fn gate_cap(&self, w_um: f64) -> f64 {
        self.cgate_per_um * w_um
    }

    /// Drain capacitance (F) of a transistor of width `w_um` microns.
    pub fn drain_cap(&self, w_um: f64) -> f64 {
        self.cdrain_per_um * w_um
    }

    /// Leakage current (A) of a transistor of width `w_um` microns.
    pub fn leakage(&self, w_um: f64) -> f64 {
        self.ioff_per_um * w_um
    }

    /// Intrinsic FO1 inverter delay estimate (s): `R_on * (Cg + Cd)` for a
    /// minimum-size inverter (PMOS twice NMOS width).
    pub fn fo1_delay(&self) -> f64 {
        let wn = self.min_width_um;
        let wp = 2.0 * wn;
        let r = 0.5 * (self.nmos_on_resistance(wn) + self.pmos_on_resistance(wp));
        let c = self.gate_cap(wn + wp) + self.drain_cap(wn + wp);
        0.69 * r * c
    }

    /// Switching energy (J) to charge capacitance `c` to Vdd.
    pub fn switch_energy(&self, c: f64) -> f64 {
        c * self.vdd * self.vdd
    }

    /// A stable 64-bit digest of every electrical parameter, used as the
    /// technology component of the cross-sweep memo-cache keys (see
    /// `xlda_num::memo`). Nodes differing in any parameter get distinct
    /// keys; preset nodes hash identically across the whole process.
    pub fn memo_key(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for v in [
            self.feature_nm,
            self.vdd,
            self.ion_n_per_um,
            self.ion_p_per_um,
            self.ioff_per_um,
            self.cgate_per_um,
            self.cdrain_per_um,
            self.wire_r_per_um,
            self.wire_c_per_um,
            self.min_width_um,
        ] {
            h.write_u64(v.to_bits());
        }
        h.finish()
    }
}

impl Default for TechNode {
    /// Defaults to the 40 nm node, the technology of the paper's primary
    /// RRAM validation target.
    fn default() -> Self {
        Self::n40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_expected_nodes() {
        let nodes = TechNode::all();
        assert_eq!(nodes.len(), 7);
        let nms: Vec<f64> = nodes.iter().map(|n| n.feature_nm).collect();
        assert_eq!(nms, vec![130.0, 90.0, 65.0, 45.0, 40.0, 32.0, 22.0]);
    }

    #[test]
    fn lookup_by_feature() {
        assert_eq!(TechNode::by_feature_nm(40), Some(TechNode::n40()));
        assert_eq!(TechNode::by_feature_nm(28), None);
    }

    #[test]
    fn vdd_scales_down_with_node() {
        let nodes = TechNode::all();
        for w in nodes.windows(2) {
            assert!(w[0].vdd >= w[1].vdd, "Vdd must not grow when scaling");
        }
    }

    #[test]
    fn fo1_delay_improves_with_scaling() {
        // Gate delay shrinks monotonically across our table.
        let nodes = TechNode::all();
        for w in nodes.windows(2) {
            assert!(
                w[0].fo1_delay() > w[1].fo1_delay(),
                "{} nm FO1 should exceed {} nm",
                w[0].feature_nm,
                w[1].feature_nm
            );
        }
    }

    #[test]
    fn fo1_delay_plausible_range() {
        // All nodes: FO1 in the 0.1 ps .. 50 ps window.
        for n in TechNode::all() {
            let d = n.fo1_delay();
            assert!(d > 0.1e-12 && d < 50e-12, "{} nm FO1 = {d}", n.feature_nm);
        }
    }

    #[test]
    fn wire_gets_more_resistive_with_scaling() {
        let nodes = TechNode::all();
        for w in nodes.windows(2) {
            assert!(w[0].wire_r_per_um < w[1].wire_r_per_um);
        }
    }

    #[test]
    fn on_resistance_inverse_in_width() {
        let t = TechNode::n40();
        let r1 = t.nmos_on_resistance(1.0);
        let r2 = t.nmos_on_resistance(2.0);
        assert!((r1 / r2 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        TechNode::n40().nmos_on_resistance(0.0);
    }

    #[test]
    fn memo_key_distinguishes_nodes() {
        let keys: Vec<u64> = TechNode::all().iter().map(TechNode::memo_key).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "preset nodes must not collide");
        assert_eq!(TechNode::n40().memo_key(), TechNode::n40().memo_key());
    }

    #[test]
    fn switch_energy_cv2() {
        let t = TechNode::n40();
        assert!((t.switch_energy(1e-15) - 1e-15).abs() < 1e-18); // Vdd = 1.0
    }
}
