//! Circuit-level substrate for the `xlda` modeling stack.
//!
//! Array-level analytical models (Eva-CAM-like CAM models, NVSim-like RAM
//! models, crossbar macro models) all decompose into the same circuit
//! primitives, which this crate provides:
//!
//! - [`tech::TechNode`] — per-process-node electrical parameters (supply,
//!   on-currents, capacitances, wire RC), with presets from 130 nm to 22 nm;
//! - [`gate`] — logical-effort gate delay and energy, buffer chains;
//! - [`wire`] — Elmore RC delay for plain and repeated wires;
//! - [`decoder`] — row/address decoder trees;
//! - [`senseamp`] — voltage/current sense amplifiers with input offset
//!   (the origin of the sense-margin limits in Sec. VI of the paper);
//! - [`matchline`] — the CAM matchline discharge model: discharge time and
//!   energy as a function of the number of mismatching cells, and the
//!   sense margin between adjacent mismatch counts;
//! - [`adc`] — SAR ADC / DAC figure-of-merit models for crossbar
//!   peripheries;
//! - [`hoist`] — batch-scoped exact-key caches (no key quantization) the
//!   columnar sweep kernels use to hoist invariant circuit solves out of
//!   the point loop while staying bit-identical to the scalar path.
//!
//! # Examples
//!
//! ```
//! use xlda_circuit::tech::TechNode;
//! use xlda_circuit::matchline::{Matchline, MatchlineConfig};
//!
//! let tech = TechNode::n40();
//! let ml = Matchline::new(MatchlineConfig::default(), &tech, 64);
//! // More mismatching cells discharge the line faster.
//! assert!(ml.discharge_time(8) < ml.discharge_time(1));
//! ```

pub mod adc;
pub mod decoder;
pub mod error;
pub mod gate;
pub mod hoist;
pub mod matchline;
pub mod senseamp;
pub mod tech;
pub mod wire;

pub use error::CircuitError;
pub use tech::TechNode;
