//! Property-based tests for the circuit substrate.

use proptest::prelude::*;
use xlda_circuit::adc::SarAdc;
use xlda_circuit::gate::BufferChain;
use xlda_circuit::matchline::{Matchline, MatchlineConfig};
use xlda_circuit::senseamp::SenseAmp;
use xlda_circuit::tech::TechNode;
use xlda_circuit::wire::Wire;

fn arb_tech() -> impl Strategy<Value = TechNode> {
    prop::sample::select(vec![
        TechNode::n130(),
        TechNode::n90(),
        TechNode::n65(),
        TechNode::n45(),
        TechNode::n40(),
        TechNode::n32(),
        TechNode::n22(),
    ])
}

fn arb_ml_config() -> impl Strategy<Value = MatchlineConfig> {
    (
        1e-6f64..1e-4,
        1e-10f64..1e-7,
        0.05e-15f64..0.5e-15,
        0.2f64..0.8,
    )
        .prop_map(|(g_on, g_off, c_cell, v_ref_frac)| MatchlineConfig {
            g_on,
            g_off: g_off.min(g_on / 10.0),
            c_cell,
            precharge_frac: 1.0,
            v_ref_frac,
        })
}

proptest! {
    #[test]
    fn matchline_discharge_monotone_in_mismatches(
        cfg in arb_ml_config(),
        tech in arb_tech(),
        cells in 2usize..512,
    ) {
        let ml = Matchline::new(cfg, &tech, cells);
        let mut prev = ml.discharge_time(1);
        for m in 2..cells.min(16) {
            let t = ml.discharge_time(m);
            prop_assert!(t <= prev, "t({m}) = {t} > t({}) = {prev}", m - 1);
            prev = t;
        }
    }

    #[test]
    fn matchline_voltage_never_exceeds_precharge(
        cfg in arb_ml_config(),
        tech in arb_tech(),
        cells in 2usize..256,
        t_ns in 0.0f64..100.0,
        m_frac in 0.0f64..1.0,
    ) {
        let ml = Matchline::new(cfg, &tech, cells);
        let m = ((cells as f64) * m_frac) as usize;
        let v = ml.voltage_at(t_ns * 1e-9, m.min(cells));
        prop_assert!(v >= 0.0 && v <= ml.precharge_voltage() + 1e-12);
    }

    #[test]
    fn best_sense_time_is_optimal(
        cfg in arb_ml_config(),
        tech in arb_tech(),
        cells in 8usize..128,
        m in 0usize..6,
    ) {
        prop_assume!(m + 1 < cells);
        let ml = Matchline::new(cfg, &tech, cells);
        let t_star = ml.best_sense_time(m);
        prop_assume!(t_star.is_finite() && t_star > 0.0);
        let best = ml.voltage_margin(t_star, m);
        for factor in [0.5, 0.9, 1.1, 2.0] {
            prop_assert!(ml.voltage_margin(t_star * factor, m) <= best + 1e-12);
        }
    }

    #[test]
    fn mismatch_limit_monotone_in_length(
        cfg in arb_ml_config(),
        tech in arb_tech(),
    ) {
        let sa = SenseAmp::voltage_latch(&tech);
        let short = Matchline::new(cfg, &tech, 16).mismatch_limit(&sa);
        let long = Matchline::new(cfg, &tech, 256).mismatch_limit(&sa);
        prop_assert!(long <= short, "short {short} long {long}");
    }

    #[test]
    fn adc_quantize_error_within_half_lsb(
        bits in 1u8..12,
        tech in arb_tech(),
        x in 0.0f64..1.0,
    ) {
        let adc = SarAdc::new(bits, &tech);
        let lsb = 1.0 / ((1u64 << bits) - 1) as f64;
        let q = adc.quantize(x, 0.0, 1.0);
        prop_assert!((q - x).abs() <= lsb / 2.0 + 1e-12);
    }

    #[test]
    fn adc_quantize_is_idempotent(bits in 1u8..12, tech in arb_tech(), x in -2.0f64..2.0) {
        let adc = SarAdc::new(bits, &tech);
        let q = adc.quantize(x, -1.0, 1.0);
        prop_assert!((adc.quantize(q, -1.0, 1.0) - q).abs() < 1e-12);
    }

    #[test]
    fn wire_delay_monotone_in_length(tech in arb_tech(), len_um in 1.0f64..5000.0) {
        let short = Wire::new(len_um * 1e-6, &tech);
        let long = Wire::new(2.0 * len_um * 1e-6, &tech);
        prop_assert!(long.elmore_delay() > short.elmore_delay());
        prop_assert!(long.capacitance() > short.capacitance());
    }

    #[test]
    fn buffer_chain_positive_and_bounded(
        tech in arb_tech(),
        load_ff in 0.1f64..10_000.0,
    ) {
        let c_in = tech.gate_cap(3.0 * tech.min_width_um);
        let chain = BufferChain::size_for(c_in, load_ff * 1e-15, &tech);
        prop_assert!(chain.stages() >= 1);
        prop_assert!(chain.delay() > 0.0 && chain.delay() < 1e-6);
        prop_assert!(chain.energy() > 0.0);
    }

    #[test]
    fn sense_amp_latency_monotone_in_margin(tech in arb_tech(), dv in 1e-3f64..0.5) {
        let sa = SenseAmp::voltage_latch(&tech);
        prop_assert!(sa.latency(dv) >= sa.latency(dv * 2.0));
    }
}
