//! Chunking-invariance property tests for the Monte-Carlo scenarios.
//!
//! The MC engine's core contract is that results are a pure function of
//! `(seed, trial_index)` — bit-identical for any batch size, worker
//! count, or schedule arm. These tests pin that contract across all
//! three scenario kinds and both sweep schedules, including a full
//! `evaluate()` equality check (summaries, yields, checksums, and the
//! quantile-derived candidates all match, not just the raw columns).

use proptest::prelude::*;
use xlda_core::evaluate::Scenario;
use xlda_core::mc::{CamYieldMcScenario, MannAccuracyMcScenario, McParams, NvmLifetimeMcScenario};
use xlda_core::sweep::{Schedule, SweepOptions};
use xlda_num::trial::checksum;

/// A deliberately awkward population size: not a multiple of any batch
/// size under test, so every split has a ragged tail batch.
const TRIALS: usize = 257;

fn mc(seed: u64, batch: usize) -> McParams {
    McParams {
        trials: TRIALS,
        seed,
        batch,
        threads: 1,
    }
}

fn arms() -> Vec<SweepOptions> {
    let mut out = Vec::new();
    for schedule in [Schedule::StaticChunks, Schedule::WorkStealing] {
        for threads in [1usize, 2, 4] {
            for chunk in [0usize, 1, 7] {
                out.push(
                    SweepOptions::builder()
                        .schedule(schedule)
                        .threads(threads)
                        .chunk(chunk)
                        .build(),
                );
            }
        }
    }
    out
}

/// Runs `outcomes_with` for every (schedule, threads, sweep-chunk,
/// batch) arm and asserts the columns are bit-identical to the
/// single-threaded default-batch reference.
fn assert_invariant<S, F>(seed: u64, build: F)
where
    S: Scenario,
    F: Fn(McParams) -> S,
    S: McOutcomes,
{
    let reference = build(mc(seed, 0))
        .outcomes(&SweepOptions::default())
        .expect("reference run");
    let ref_sums: Vec<u64> = reference.iter().map(|c| checksum(c)).collect();
    for batch in [1usize, 16, 100, TRIALS, 0] {
        let s = build(mc(seed, batch));
        for opts in arms() {
            let got = s.outcomes(&opts).expect("arm run");
            let got_sums: Vec<u64> = got.iter().map(|c| checksum(c)).collect();
            assert_eq!(
                got_sums, ref_sums,
                "checksum drift: batch {batch}, {opts:?}"
            );
            assert_eq!(got, reference, "bit drift: batch {batch}, {opts:?}");
        }
    }
}

/// Unifies the scenarios' `outcomes_with` test hooks so one driver
/// covers all three kinds.
trait McOutcomes {
    fn outcomes(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, xlda_core::XldaError>;
}

impl McOutcomes for CamYieldMcScenario {
    fn outcomes(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, xlda_core::XldaError> {
        self.outcomes_with(opts)
    }
}

impl McOutcomes for MannAccuracyMcScenario {
    fn outcomes(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, xlda_core::XldaError> {
        self.outcomes_with(opts)
    }
}

impl McOutcomes for NvmLifetimeMcScenario {
    fn outcomes(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, xlda_core::XldaError> {
        self.outcomes_with(opts)
    }
}

#[test]
fn cam_yield_is_chunking_invariant() {
    assert_invariant(0xCA11, |mc| CamYieldMcScenario {
        mc,
        cells: 48,
        ..CamYieldMcScenario::default()
    });
}

#[test]
fn mann_accuracy_is_chunking_invariant() {
    assert_invariant(0x3A77, |mc| MannAccuracyMcScenario {
        mc,
        hash_bits: 16,
        ..MannAccuracyMcScenario::default()
    });
}

#[test]
fn nvm_lifetime_is_chunking_invariant() {
    assert_invariant(0x11FE, |mc| NvmLifetimeMcScenario {
        mc,
        ..NvmLifetimeMcScenario::default()
    });
}

#[test]
fn full_evaluations_match_across_scheduling() {
    // evaluate() runs trials with the scenario's own McParams; varying
    // batch/threads there must not move any digest or candidate.
    let reference = MannAccuracyMcScenario {
        mc: mc(7, 0),
        hash_bits: 16,
        ..MannAccuracyMcScenario::default()
    }
    .evaluate()
    .expect("reference evaluate");
    for (batch, threads) in [(1usize, 2usize), (32, 4), (TRIALS, 1)] {
        let eval = MannAccuracyMcScenario {
            mc: McParams {
                trials: TRIALS,
                seed: 7,
                batch,
                threads,
            },
            hash_bits: 16,
            ..MannAccuracyMcScenario::default()
        }
        .evaluate()
        .expect("arm evaluate");
        assert_eq!(eval, reference, "batch {batch} threads {threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seeds, trial counts, and batch splits: two differently
    /// batched runs of the same population always agree bit-for-bit.
    #[test]
    fn random_splits_agree(
        seed in any::<u64>(),
        trials in 1usize..120,
        batch_a in 0usize..40,
        batch_b in 0usize..40,
    ) {
        let build = |batch: usize| NvmLifetimeMcScenario {
            mc: McParams { trials, seed, batch, threads: 1 },
            ..NvmLifetimeMcScenario::default()
        };
        let a = build(batch_a).outcomes_with(&SweepOptions::default()).unwrap();
        let b = build(batch_b)
            .outcomes_with(&SweepOptions::builder().threads(3).build())
            .unwrap();
        prop_assert_eq!(a, b);
    }
}
