//! Cache-transparency property tests.
//!
//! The cross-point memo caches (`xlda_num::memo`) sit inside the hot
//! circuit/crossbar/nvram constructors; the contract is that they are
//! *invisible*: every figure of merit a sweep produces must be
//! bit-identical whether memoization is enabled, disabled, or warm from
//! a previous sweep. These properties drive the full cross-layer
//! evaluation stack over random scenario grids and compare raw bit
//! patterns across the three regimes.
//!
//! All tests toggling the process-global memo switch live in this one
//! binary and serialize on [`MEMO_LOCK`], so the toggle never races a
//! concurrent test thread.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Mutex;
use xlda_core::evaluate::{HdcScenario, MannScenario, Scenario};
use xlda_core::sweep::memo;

static MEMO_LOCK: Mutex<()> = Mutex::new(());

/// Bit patterns of every FOM a scenario evaluation produces; errors map
/// to a fixed marker so infeasible points still compare across regimes.
fn hdc_bits(s: &HdcScenario) -> Vec<u64> {
    match s.candidates() {
        Ok(cands) => cands
            .iter()
            .flat_map(|c| {
                [
                    c.fom.latency_s.to_bits(),
                    c.fom.energy_j.to_bits(),
                    c.fom.area_mm2.to_bits(),
                    c.fom.accuracy.to_bits(),
                ]
            })
            .collect(),
        Err(_) => vec![u64::MAX],
    }
}

fn mann_bits(s: &MannScenario) -> Vec<u64> {
    match s.candidates() {
        Ok(cands) => cands
            .iter()
            .flat_map(|c| {
                [
                    c.fom.latency_s.to_bits(),
                    c.fom.energy_j.to_bits(),
                    c.fom.area_mm2.to_bits(),
                ]
            })
            .collect(),
        Err(_) => vec![u64::MAX],
    }
}

/// Evaluates `grid` uncached, cold-cached, and warm-cached, asserting
/// bit-identical results across all three regimes. Restores the memo
/// switch to enabled on every exit path.
fn assert_transparent<I>(grid: &[I], eval: impl Fn(&I) -> Vec<u64>) -> Result<(), TestCaseError> {
    let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    memo::clear_all();
    memo::set_enabled(false);
    let uncached: Vec<Vec<u64>> = grid.iter().map(&eval).collect();
    memo::clear_all();
    memo::set_enabled(true);
    let cold: Vec<Vec<u64>> = grid.iter().map(&eval).collect();
    let warm: Vec<Vec<u64>> = grid.iter().map(&eval).collect();
    memo::set_enabled(true);
    prop_assert_eq!(&uncached, &cold, "cold cache changed results");
    prop_assert_eq!(&uncached, &warm, "warm cache changed results");
    Ok(())
}

fn arb_hdc() -> impl Strategy<Value = HdcScenario> {
    (
        64usize..1200,
        2usize..64,
        1usize..5, // hv length exponent over 512 (1024..=8192)
        0.5f64..1.0,
    )
        .prop_map(|(dim_in, classes, hv_exp, acc)| {
            let hv = 512 << hv_exp;
            HdcScenario {
                dim_in,
                classes,
                hv_dim_sw: hv,
                hv_dim_3b: (hv / 2).max(512),
                hv_dim_2b: hv,
                hv_dim_1b: hv,
                acc_sw: acc,
                acc_3b: acc,
                acc_2b: acc - 0.01,
                acc_1b: acc - 0.05,
                ..HdcScenario::default()
            }
        })
}

fn arb_mann() -> impl Strategy<Value = MannScenario> {
    (
        1_000usize..500_000,
        8usize..256,
        32usize..512,
        10usize..10_000,
    )
        .prop_map(|(weights, emb_dim, hash_bits, entries)| MannScenario {
            weights,
            emb_dim,
            hash_bits,
            entries,
            ..MannScenario::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hdc_sweep_is_cache_transparent(grid in prop::collection::vec(arb_hdc(), 1..4)) {
        // Duplicate the first scenario so at least one point is a
        // guaranteed full-grid cache hit within each regime.
        let mut grid = grid;
        grid.push(grid[0].clone());
        assert_transparent(&grid, hdc_bits)?;
    }

    #[test]
    fn mann_sweep_is_cache_transparent(grid in prop::collection::vec(arb_mann(), 1..4)) {
        let mut grid = grid;
        grid.push(grid[0].clone());
        assert_transparent(&grid, mann_bits)?;
    }
}
