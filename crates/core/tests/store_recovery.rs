//! Corruption-recovery tests for the persistent result store.
//!
//! The segment file is append-only, so every failure mode a kill or a
//! disk hiccup can produce is a *suffix* problem: a torn final record,
//! a bit flip that breaks one record's checksum, or a file that is not
//! a store at all. Loading must never error or serve a corrupt result —
//! it truncates back to the last good record (or resets an alien file)
//! and reports exactly what it did.

use std::fs;
use std::path::PathBuf;
use xlda_core::evaluate::{HdcScenario, MannScenario, Scenario};
use xlda_core::store::{ResultStore, StoreOptions, HEADER_LEN};

/// Unique temp path per test so parallel test threads never collide.
fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "xlda_store_rec_{}_{}.bin",
        std::process::id(),
        name
    ));
    let _ = fs::remove_file(&p);
    p
}

/// A small mixed grid with distinct digests.
fn grid() -> Vec<HdcScenario> {
    (0..6)
        .map(|i| HdcScenario {
            classes: 10 + i,
            ..HdcScenario::default()
        })
        .collect()
}

fn populate(store: &ResultStore, grid: &[HdcScenario]) {
    for s in grid {
        store
            .evaluate_cached(s)
            .expect("default-adjacent points model");
    }
    store.flush();
}

#[test]
fn reopen_recovers_every_record_bit_exactly() {
    let path = tmp("roundtrip");
    let grid = grid();
    {
        let store = ResultStore::open(&path).expect("open");
        assert_eq!(store.load_report().recovered_records, 0);
        populate(&store, &grid);
    }
    let store = ResultStore::open(&path).expect("reopen");
    let rep = store.load_report();
    assert_eq!(rep.recovered_records, grid.len() as u64);
    assert_eq!(rep.truncated_bytes, 0);
    assert!(!rep.reset);
    for s in &grid {
        let direct = s.evaluate().expect("evaluates");
        let stored = store
            .get(&s.store_key().expect("keyed"))
            .expect("recovered");
        assert_eq!(stored, direct, "stored result must be bit-exact");
    }
    assert_eq!(store.stats().misses, 0);
    let _ = fs::remove_file(&path);
}

#[test]
fn torn_tail_is_truncated_not_fatal() {
    let path = tmp("torn");
    let grid = grid();
    {
        let store = ResultStore::open(&path).expect("open");
        populate(&store, &grid);
    }
    let clean_len = fs::metadata(&path).expect("meta").len();
    // Simulate a kill mid-append: garbage that parses as a plausible
    // record length followed by not enough bytes.
    let mut bytes = fs::read(&path).expect("read");
    bytes.extend_from_slice(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe]);
    fs::write(&path, &bytes).expect("write");

    let store = ResultStore::open(&path).expect("recover");
    let rep = store.load_report();
    assert_eq!(rep.recovered_records, grid.len() as u64);
    assert_eq!(rep.truncated_bytes, 7);
    assert!(!rep.reset);
    assert_eq!(fs::metadata(&path).expect("meta").len(), clean_len);
    // The store keeps working after recovery: a fresh insert survives
    // another reopen.
    let extra = MannScenario::default();
    store.evaluate_cached(&extra).expect("evaluates");
    store.flush();
    drop(store);
    let store = ResultStore::open(&path).expect("reopen");
    assert_eq!(store.load_report().recovered_records, grid.len() as u64 + 1);
    assert!(store.contains(&extra.store_key().expect("keyed")));
    let _ = fs::remove_file(&path);
}

#[test]
fn bit_flipped_checksum_truncates_from_the_bad_record() {
    let path = tmp("bitflip");
    let grid = grid();
    {
        let store = ResultStore::open(&path).expect("open");
        populate(&store, &grid);
    }
    // Flip one bit a few records in; append-only means everything from
    // the flipped record on is suspect and must be dropped.
    let mut bytes = fs::read(&path).expect("read");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x10;
    fs::write(&path, &bytes).expect("write");

    let store = ResultStore::open(&path).expect("recover");
    let rep = store.load_report();
    assert!(
        rep.recovered_records < grid.len() as u64,
        "the flipped record must not load"
    );
    assert!(rep.truncated_bytes > 0);
    assert!(!rep.reset);
    // Whatever loaded is bit-exact; the dropped points just re-evaluate.
    let mut hits = 0;
    for s in &grid {
        if let Some(stored) = store.get(&s.store_key().expect("keyed")) {
            assert_eq!(stored, s.evaluate().expect("evaluates"));
            hits += 1;
        }
    }
    assert_eq!(hits as u64, rep.recovered_records);
    let _ = fs::remove_file(&path);
}

#[test]
fn alien_or_version_mismatched_file_resets() {
    let path = tmp("alien");
    fs::write(&path, b"this is not a store file at all............").expect("write");
    let store = ResultStore::open(&path).expect("open resets");
    let rep = store.load_report();
    assert!(rep.reset);
    assert_eq!(rep.recovered_records, 0);
    assert_eq!(fs::metadata(&path).expect("meta").len(), HEADER_LEN);
    // And it is a working store from here on.
    let s = HdcScenario::default();
    store.evaluate_cached(&s).expect("evaluates");
    store.flush();
    drop(store);
    let store = ResultStore::open(&path).expect("reopen");
    assert_eq!(store.load_report().recovered_records, 1);
    assert!(!store.load_report().reset);
    let _ = fs::remove_file(&path);
}

#[test]
fn concurrent_opens_interleave_at_record_granularity() {
    let path = tmp("concurrent");
    // Two live store instances on the same path (two daemons, or a
    // daemon plus a bench run). O_APPEND keeps each record append
    // atomic, so both instances' records survive a reload.
    let a = ResultStore::open(&path).expect("open a");
    let b = ResultStore::open(&path).expect("open b");
    let grid = grid();
    std::thread::scope(|scope| {
        let (ga, gb) = grid.split_at(3);
        let a = &a;
        let b = &b;
        scope.spawn(move || populate(a, ga));
        scope.spawn(move || populate(b, gb));
    });
    drop(a);
    drop(b);
    let store = ResultStore::open(&path).expect("reopen");
    let rep = store.load_report();
    assert_eq!(rep.recovered_records, grid.len() as u64);
    assert_eq!(rep.truncated_bytes, 0);
    for s in &grid {
        assert_eq!(
            store.get(&s.store_key().expect("keyed")).expect("present"),
            s.evaluate().expect("evaluates")
        );
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn capacity_bound_survives_reload() {
    let path = tmp("cap");
    {
        let store = ResultStore::open_with(&path, StoreOptions { max_entries: 2 }).expect("open");
        populate(&store, &grid());
    }
    let store = ResultStore::open_with(&path, StoreOptions { max_entries: 2 }).expect("reopen");
    // Disk kept everything; the index re-applies the bound on replay.
    assert_eq!(store.load_report().recovered_records, 6);
    assert_eq!(store.stats().entries, 2);
    assert_eq!(store.stats().evictions, 4);
    let _ = fs::remove_file(&path);
}
