//! Columnar/scalar parity property tests for the batch sweep kernels.
//!
//! The columnar engine's core contract is that [`Columnar::Exact`] is a
//! *throughput* option, never a numerics option: for any grid, chunk
//! size, worker count, or failure pattern, the batch kernels must
//! produce a [`CandidateBatch`] bit-identical to the scalar per-point
//! path — same lanes, same FOM bits, same error/panic containment.
//! These tests pin that contract over random HDC / MANN / Monte-Carlo
//! grids and a triage pass over the reconstructed candidates.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xlda_circuit::tech::TechNode;
use xlda_core::evaluate::{sweep_scenarios, HdcScenario, MannScenario, Scenario};
use xlda_core::fom::{Candidate, Fom};
use xlda_core::mc::{MannAccuracyMcScenario, McParams};
use xlda_core::sweep::{Columnar, SweepOptions};
use xlda_core::triage::{rank, Objective};
use xlda_core::XldaError;
use xlda_num::batch::{CandidateBatch, PointStatus};

fn tech(pick: u8) -> TechNode {
    match pick % 3 {
        0 => TechNode::n40(),
        1 => TechNode::n22(),
        _ => TechNode::n65(),
    }
}

/// Random HDC scenario shapes. Degenerate shapes (zero dims) are kept:
/// a point that errors must error identically in both arms.
fn hdc_point() -> impl Strategy<Value = HdcScenario> {
    (0usize..1024, 1usize..64, 0usize..6, 0u8..3, any::<bool>()).prop_map(
        |(dim_in, classes, hv_k, t, poison_acc)| HdcScenario {
            dim_in,
            classes,
            hv_dim_sw: hv_k * 512,
            hv_dim_3b: hv_k * 256,
            hv_dim_2b: hv_k * 512,
            hv_dim_1b: hv_k * 512,
            // A NaN accuracy fails FOM validation mid-candidate-set;
            // the batch kernel must record the identical error.
            acc_sw: if poison_acc && hv_k == 0 {
                f64::NAN
            } else {
                0.93
            },
            tech: tech(t),
            ..HdcScenario::default()
        },
    )
}

fn mann_point() -> impl Strategy<Value = MannScenario> {
    (
        1usize..300_000,
        1usize..256,
        1usize..512,
        1usize..6000,
        0u8..3,
        any::<bool>(),
    )
        .prop_map(
            |(weights, emb_dim, hash_bits, entries, t, poison)| MannScenario {
                weights,
                emb_dim,
                hash_bits,
                entries,
                // An out-of-range accuracy is rejected by validation; both
                // arms must agree on the rejection.
                acc_rram: if poison && entries < 200 { 1.5 } else { 0.94 },
                tech: tech(t),
                ..MannScenario::default()
            },
        )
}

fn scalar_arm() -> SweepOptions {
    SweepOptions::builder().threads(2).build()
}

fn columnar_arm(chunk: usize, threads: usize) -> SweepOptions {
    SweepOptions::builder()
        .columnar(Columnar::Exact)
        .chunk(chunk)
        .threads(threads)
        .build()
}

/// Full bit-level equality: structure, statuses, messages, lane names,
/// and every FOM column compared by `to_bits`, plus the FNV checksum.
fn assert_bit_identical(a: &CandidateBatch, b: &CandidateBatch) {
    assert_eq!(a.points(), b.points(), "point count");
    assert_eq!(a.lanes(), b.lanes(), "lane count");
    for p in 0..a.points() {
        assert_eq!(a.point_status(p), b.point_status(p), "status of point {p}");
        assert_eq!(
            a.point_message(p),
            b.point_message(p),
            "message of point {p}"
        );
        assert_eq!(a.lane_range(p), b.lane_range(p), "lane range of point {p}");
    }
    for l in 0..a.lanes() {
        assert_eq!(a.lane_name(l), b.lane_name(l), "name of lane {l}");
    }
    for (col, name) in [
        (
            CandidateBatch::latency_s as fn(&CandidateBatch) -> &[f64],
            "latency_s",
        ),
        (CandidateBatch::energy_j, "energy_j"),
        (CandidateBatch::area_mm2, "area_mm2"),
        (CandidateBatch::accuracy, "accuracy"),
    ] {
        let (ca, cb) = (col(a), col(b));
        for l in 0..ca.len() {
            assert_eq!(
                ca[l].to_bits(),
                cb[l].to_bits(),
                "{name} bits of lane {l} ({} vs {})",
                ca[l],
                cb[l]
            );
        }
    }
    assert_eq!(a.checksum(), b.checksum(), "batch checksum");
}

/// Rebuilds owned [`Candidate`]s from one point's lanes, so the triage
/// ranker can consume a columnar batch.
fn candidates_of(batch: &CandidateBatch, point: usize) -> Vec<Candidate> {
    batch
        .lane_range(point)
        .map(|l| {
            Candidate::new(
                batch.lane_name(l),
                Fom {
                    latency_s: batch.latency_s()[l],
                    energy_j: batch.energy_j()[l],
                    area_mm2: batch.area_mm2()[l],
                    accuracy: batch.accuracy()[l],
                },
            )
        })
        .collect()
}

/// A scenario wrapper that panics on flagged points, for containment
/// tests: the panic unwinds out of the batch kernel, forfeiting the
/// whole chunk to the per-point fallback.
#[derive(Debug, Clone)]
struct Poisoned {
    inner: HdcScenario,
    id: usize,
    panics: bool,
}

impl Scenario for Poisoned {
    fn kind(&self) -> &'static str {
        "poisoned-parity"
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        assert!(!self.panics, "poisoned point {}", self.id);
        self.inner.candidates()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random HDC grids (mixed tech nodes, error points included):
    /// columnar chunks of any size match the scalar arm bit-for-bit.
    #[test]
    fn hdc_random_grids_are_bit_identical(
        grid in proptest::collection::vec(hdc_point(), 1..14),
        chunk in 0usize..9,
        threads in 1usize..4,
    ) {
        let scalar = sweep_scenarios(&grid, &scalar_arm());
        let columnar = sweep_scenarios(&grid, &columnar_arm(chunk, threads));
        assert_bit_identical(&scalar, &columnar);
    }

    /// Random MANN grids, including validation-rejected points.
    #[test]
    fn mann_random_grids_are_bit_identical(
        grid in proptest::collection::vec(mann_point(), 1..14),
        chunk in 0usize..9,
        threads in 1usize..4,
    ) {
        let scalar = sweep_scenarios(&grid, &scalar_arm());
        let columnar = sweep_scenarios(&grid, &columnar_arm(chunk, threads));
        assert_bit_identical(&scalar, &columnar);
    }

    /// Monte-Carlo scenarios have no specialized batch kernel, so the
    /// columnar engine runs them through the provided per-point default
    /// of `Scenario::candidates_batch` — which must also be exact.
    #[test]
    fn mc_random_grids_take_the_default_batch_path(
        seeds in proptest::collection::vec(any::<u64>(), 1..5),
        chunk in 0usize..4,
    ) {
        let grid: Vec<MannAccuracyMcScenario> = seeds
            .into_iter()
            .map(|seed| MannAccuracyMcScenario {
                mc: McParams { trials: 24, seed, ..McParams::default() },
                hash_bits: 16,
                ..MannAccuracyMcScenario::default()
            })
            .collect();
        let scalar = sweep_scenarios(&grid, &scalar_arm());
        let columnar = sweep_scenarios(&grid, &columnar_arm(chunk, 2));
        assert_bit_identical(&scalar, &columnar);
    }

    /// Triage over a columnar batch: ranking candidates reconstructed
    /// from the batch's lanes gives bit-identical scores to ranking the
    /// scalar arm's, under both weighting objectives.
    #[test]
    fn triage_scores_agree_across_arms(
        grid in proptest::collection::vec(hdc_point(), 1..8),
        chunk in 0usize..5,
    ) {
        let scalar = sweep_scenarios(&grid, &scalar_arm());
        let columnar = sweep_scenarios(&grid, &columnar_arm(chunk, 2));
        for p in 0..scalar.points() {
            if scalar.point_status(p) != PointStatus::Ok {
                continue;
            }
            for obj in [Objective::latency_first(Some(0.9)), Objective::energy_first(Some(0.9))] {
                let a: Vec<u64> = rank(&candidates_of(&scalar, p), &obj)
                    .iter().map(|r| r.score.to_bits()).collect();
                let b: Vec<u64> = rank(&candidates_of(&columnar, p), &obj)
                    .iter().map(|r| r.score.to_bits()).collect();
                prop_assert_eq!(&a, &b, "point {} {:?}", p, obj);
            }
        }
    }

    /// Batch-size invariance: every chunk/thread shape folds to the
    /// same checksum as the single-threaded whole-grid batch.
    #[test]
    fn chunking_never_moves_the_checksum(
        grid in proptest::collection::vec(hdc_point(), 1..10),
    ) {
        let reference = sweep_scenarios(&grid, &columnar_arm(grid.len(), 1));
        for chunk in [1usize, 2, 3, 7, 0] {
            for threads in [1usize, 2, 3] {
                let got = sweep_scenarios(&grid, &columnar_arm(chunk, threads));
                assert_bit_identical(&reference, &got);
            }
        }
    }

    /// Poisoned-lane containment: panicking points surface as
    /// `Panicked` in *both* arms while every surviving chunk-mate keeps
    /// its exact scalar bits.
    #[test]
    fn poisoned_points_are_contained_identically(
        grid in proptest::collection::vec((hdc_point(), any::<bool>()), 1..10),
        chunk in 0usize..5,
    ) {
        let grid: Vec<Poisoned> = grid
            .into_iter()
            .enumerate()
            .map(|(id, (inner, panics))| Poisoned { inner, id, panics })
            .collect();
        // The unwind machinery prints each panic; silence the hook so
        // 16 proptest cases don't flood the test log.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = catch_unwind(AssertUnwindSafe(|| {
            let scalar = sweep_scenarios(&grid, &scalar_arm());
            let columnar = sweep_scenarios(&grid, &columnar_arm(chunk, 2));
            (scalar, columnar)
        }));
        std::panic::set_hook(prev);
        let (scalar, columnar) = run.expect("sweeps contain the panics");
        for (p, s) in grid.iter().enumerate() {
            // Panicking points must surface as Panicked; the rest keep
            // whatever the inner scenario produced (Ok or Error).
            prop_assert_eq!(
                scalar.point_status(p) == PointStatus::Panicked,
                s.panics,
                "scalar point {}: {:?}",
                p,
                scalar.point_status(p)
            );
        }
        assert_bit_identical(&scalar, &columnar);
    }
}

/// Deterministic spot check kept outside proptest: the builder default
/// is the scalar path, so existing callers cannot silently change
/// numerics by rebuilding against 0.3.0.
#[test]
fn columnar_stays_opt_in() {
    assert_eq!(SweepOptions::default().columnar(), Columnar::Off);
    assert_eq!(SweepOptions::builder().build().columnar(), Columnar::Off);
    assert_eq!(
        SweepOptions::builder()
            .columnar(Columnar::Exact)
            .build()
            .columnar(),
        Columnar::Exact
    );
}
