//! Store-transparency property tests.
//!
//! The persistent result store's contract is stronger than the memo
//! caches': a stored result must be *bit-identical* to a fresh
//! evaluation, including after a serialize → disk → deserialize round
//! trip, across every scenario kind it addresses. These properties
//! drive random HDC/MANN/MC grids through three regimes — direct
//! evaluation, a cold store (miss + insert), and a reloaded store (disk
//! round trip) — and compare raw bit patterns.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::path::PathBuf;
use xlda_core::evaluate::{Evaluation, HdcScenario, MannScenario, Scenario};
use xlda_core::mc::{CamYieldMcScenario, MannAccuracyMcScenario, McParams};
use xlda_core::store::ResultStore;

/// Bit patterns of everything an evaluation carries: candidate FOMs and
/// the full distribution summaries. Errors map to a fixed marker so
/// infeasible points still compare across regimes.
fn eval_bits(r: &Result<Evaluation, xlda_core::XldaError>) -> Vec<u64> {
    match r {
        Ok(ev) => {
            let mut bits = Vec::new();
            for c in &ev.candidates {
                bits.extend([
                    c.fom.latency_s.to_bits(),
                    c.fom.energy_j.to_bits(),
                    c.fom.area_mm2.to_bits(),
                    c.fom.accuracy.to_bits(),
                ]);
            }
            for d in &ev.distributions {
                bits.extend([
                    d.summary.trials as u64,
                    d.summary.nan_count as u64,
                    d.summary.mean.to_bits(),
                    d.summary.std_dev.to_bits(),
                    d.summary.min.to_bits(),
                    d.summary.max.to_bits(),
                    d.summary.p5.to_bits(),
                    d.summary.p50.to_bits(),
                    d.summary.p95.to_bits(),
                    d.yield_fraction.to_bits(),
                    d.checksum,
                ]);
            }
            bits
        }
        Err(_) => vec![u64::MAX],
    }
}

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "xlda_store_prop_{}_{}.bin",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Direct, store-cold, and store-reloaded evaluations of `grid` must be
/// bit-identical; the reloaded pass must be all hits.
fn assert_store_transparent<S: Scenario>(grid: &[S], tag: &str) -> Result<(), TestCaseError> {
    let direct: Vec<Vec<u64>> = grid.iter().map(|s| eval_bits(&s.evaluate())).collect();
    let path = tmp(tag);
    {
        let store = ResultStore::open(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let cold: Vec<Vec<u64>> = grid
            .iter()
            .map(|s| eval_bits(&store.evaluate_cached(s)))
            .collect();
        prop_assert_eq!(&direct, &cold, "cold store changed results");
        store.flush();
    }
    let store = ResultStore::open(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
    let reloaded: Vec<Vec<u64>> = grid
        .iter()
        .map(|s| eval_bits(&store.evaluate_cached(s)))
        .collect();
    prop_assert_eq!(&direct, &reloaded, "disk round trip changed results");
    // Every point that evaluated cold must be a result-level hit now
    // (errors are never cached, so only count successes).
    let ok_points = grid.iter().filter(|s| s.evaluate().is_ok()).count() as u64;
    prop_assert_eq!(
        store.stats().hits,
        ok_points,
        "reloaded pass must be all hits"
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}

fn arb_hdc() -> impl Strategy<Value = HdcScenario> {
    (64usize..1200, 2usize..64, 1usize..5, 0.5f64..1.0).prop_map(
        |(dim_in, classes, hv_exp, acc)| {
            let hv = 512 << hv_exp;
            HdcScenario {
                dim_in,
                classes,
                hv_dim_sw: hv,
                hv_dim_3b: (hv / 2).max(512),
                hv_dim_2b: hv,
                hv_dim_1b: hv,
                acc_sw: acc,
                acc_3b: acc,
                acc_2b: acc - 0.01,
                acc_1b: acc - 0.05,
                ..HdcScenario::default()
            }
        },
    )
}

fn arb_mann() -> impl Strategy<Value = MannScenario> {
    (
        1_000usize..500_000,
        8usize..256,
        32usize..512,
        10usize..10_000,
    )
        .prop_map(|(weights, emb_dim, hash_bits, entries)| MannScenario {
            weights,
            emb_dim,
            hash_bits,
            entries,
            ..MannScenario::default()
        })
}

fn arb_cam_mc() -> impl Strategy<Value = CamYieldMcScenario> {
    (16usize..256, 1usize..8, any::<u64>(), 32usize..128).prop_map(
        |(cells, mismatches, seed, trials)| CamYieldMcScenario {
            mc: McParams {
                trials,
                seed,
                ..McParams::default()
            },
            cells,
            mismatches,
            ..CamYieldMcScenario::default()
        },
    )
}

fn arb_mann_mc() -> impl Strategy<Value = MannAccuracyMcScenario> {
    (64usize..512, 10usize..1000, any::<u64>(), 32usize..128).prop_map(
        |(hash_bits, entries, seed, trials)| MannAccuracyMcScenario {
            mc: McParams {
                trials,
                seed,
                ..McParams::default()
            },
            hash_bits,
            entries,
            ..MannAccuracyMcScenario::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hdc_results_survive_the_store_bit_exactly(
        grid in prop::collection::vec(arb_hdc(), 1..4),
        case in 0u32..u32::MAX,
    ) {
        assert_store_transparent(&grid, &format!("hdc{case:08x}"))?;
    }

    #[test]
    fn mann_results_survive_the_store_bit_exactly(
        grid in prop::collection::vec(arb_mann(), 1..4),
        case in 0u32..u32::MAX,
    ) {
        assert_store_transparent(&grid, &format!("mann{case:08x}"))?;
    }

    #[test]
    fn mc_results_survive_the_store_bit_exactly(
        cam in prop::collection::vec(arb_cam_mc(), 1..3),
        mann in prop::collection::vec(arb_mann_mc(), 1..3),
        case in 0u32..u32::MAX,
    ) {
        assert_store_transparent(&cam, &format!("cam{case:08x}"))?;
        assert_store_transparent(&mann, &format!("mmc{case:08x}"))?;
    }

    /// The digest covers exactly the result-determining parameters: MC
    /// batch/threads re-splits address the same entry (their results
    /// are bit-identical by the trial-stream contract), while any
    /// result-bearing parameter change moves to a fresh key.
    #[test]
    fn mc_digests_ignore_schedule_and_track_parameters(
        s in arb_cam_mc(),
        batch in 1usize..64,
        threads in 1usize..4,
    ) {
        let key = s.store_key().expect("keyed");
        let resplit = CamYieldMcScenario {
            mc: McParams { batch, threads, ..s.mc },
            ..s.clone()
        };
        prop_assert_eq!(resplit.store_key().expect("keyed"), key);
        let reseeded = CamYieldMcScenario {
            mc: McParams { seed: s.mc.seed ^ 1, ..s.mc },
            ..s.clone()
        };
        prop_assert_ne!(reseeded.store_key().expect("keyed"), key);
        let resized = CamYieldMcScenario { cells: s.cells + 1, ..s.clone() };
        prop_assert_ne!(resized.store_key().expect("keyed"), key);
    }

    /// Distinct scenarios on one grid axis never collide, and a
    /// re-derived digest is stable.
    #[test]
    fn hdc_digests_are_stable_and_distinct(a in arb_hdc(), b in arb_hdc()) {
        let ka = a.store_key().expect("keyed");
        prop_assert_eq!(a.store_key().expect("keyed"), ka, "digest must be stable");
        if a != b {
            prop_assert_ne!(b.store_key().expect("keyed"), ka);
        }
    }
}
