//! Property-based tests for the DSE framework.

use proptest::prelude::*;
use xlda_core::fom::{Candidate, Fom};
use xlda_core::pareto::{pareto_front, pareto_layers};
use xlda_core::profile::{device_priorities, recommend, WorkloadProfile};
use xlda_core::triage::{rank, Objective};

fn arb_fom() -> impl Strategy<Value = Fom> {
    (1e-9f64..1.0, 1e-12f64..1.0, 0.0f64..100.0, 0.0f64..1.0).prop_map(
        |(latency_s, energy_j, area_mm2, accuracy)| Fom {
            latency_s,
            energy_j,
            area_mm2,
            accuracy,
        },
    )
}

fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec(arb_fom(), 1..20).prop_map(|foms| {
        foms.into_iter()
            .enumerate()
            .map(|(i, f)| Candidate::new(format!("c{i}"), f))
            .collect()
    })
}

proptest! {
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(a in arb_fom(), b in arb_fom()) {
        prop_assert!(!a.dominates(&a));
        prop_assert!(!(a.dominates(&b) && b.dominates(&a)));
    }

    #[test]
    fn pareto_front_is_nonempty_and_mutually_nondominated(cands in arb_candidates()) {
        let front = pareto_front(&cands);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!cands[i].fom.dominates(&cands[j].fom));
                }
            }
        }
        // Every non-front point is dominated by someone.
        for i in 0..cands.len() {
            if !front.contains(&i) {
                prop_assert!(cands
                    .iter()
                    .any(|c| c.fom.dominates(&cands[i].fom)));
            }
        }
    }

    #[test]
    fn pareto_layers_partition_the_input(cands in arb_candidates()) {
        let layers = pareto_layers(&cands);
        let mut all: Vec<usize> = layers.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..cands.len()).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn ranking_is_a_permutation(cands in arb_candidates()) {
        let ranked = rank(&cands, &Objective::latency_first(Some(0.5)));
        prop_assert_eq!(ranked.len(), cands.len());
        let mut idx: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        idx.sort_unstable();
        let expect: Vec<usize> = (0..cands.len()).collect();
        prop_assert_eq!(idx, expect);
        // Floor-passing candidates always precede floor-failing ones.
        let first_fail = ranked.iter().position(|r| !r.meets_floor);
        if let Some(p) = first_fail {
            prop_assert!(ranked[p..].iter().all(|r| !r.meets_floor));
        }
    }

    #[test]
    fn dominated_candidates_never_outrank_their_dominators(cands in arb_candidates()) {
        let ranked = rank(&cands, &Objective::latency_first(None));
        let pos: Vec<usize> = {
            let mut p = vec![0; cands.len()];
            for (r, item) in ranked.iter().enumerate() {
                p[item.index] = r;
            }
            p
        };
        for i in 0..cands.len() {
            for j in 0..cands.len() {
                if cands[i].fom.dominates(&cands[j].fom) {
                    prop_assert!(
                        pos[i] < pos[j],
                        "{} dominates {} but ranks below",
                        i,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn profile_recommendation_is_total(
        mvm in 0.0f64..1.0,
        search_frac in 0.0f64..1.0,
        wpr in 0.0f64..3.0,
        ws in 0.0f64..1024.0,
    ) {
        // Normalize to a valid composition.
        let total = mvm + search_frac + 0.2;
        let p = WorkloadProfile {
            mvm_fraction: mvm / total,
            search_fraction: search_frac / total,
            other_fraction: 0.2 / total,
            writes_per_read: wpr,
            working_set_mib: ws,
        };
        prop_assert!(p.is_valid());
        let _ = recommend(&p); // must not panic for any valid profile
        let metrics = device_priorities(&p);
        prop_assert_eq!(metrics.len(), 5);
        let mut dedup = metrics.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), 5, "priorities must be distinct");
    }
}

mod sweep_props {
    use proptest::prelude::*;
    use xlda_core::sweep::{par_map, par_map_with, Cache, Schedule, SweepOptions};

    proptest! {
        #[test]
        fn par_map_equals_sequential_map(xs in prop::collection::vec(-1e6f64..1e6, 0..200)) {
            let par = par_map(&xs, |&x| x * 2.0 + 1.0);
            let seq: Vec<f64> = xs.iter().map(|&x| x * 2.0 + 1.0).collect();
            prop_assert_eq!(par, seq);
        }

        #[test]
        fn work_stealing_schedule_never_reorders_output(
            xs in prop::collection::vec(-1e6f64..1e6, 0..300),
            threads in 1usize..9,
            chunk in 1usize..33,
        ) {
            // Work-stealing hands out chunks in racy claim order; the
            // engine must still return results in input order, exactly
            // matching the v1 static partitioning.
            let f = |&x: &f64| x.sin() * x + 1.0;
            let stealing = par_map_with(
                &xs,
                f,
                &SweepOptions::builder()
                    .schedule(Schedule::WorkStealing)
                    .threads(threads)
                    .chunk(chunk)
                    .build(),
            );
            let static_v1 = par_map_with(&xs, f, &SweepOptions::v1_static());
            let seq: Vec<f64> = xs.iter().map(f).collect();
            prop_assert_eq!(&stealing, &seq);
            prop_assert_eq!(&static_v1, &seq);
        }

        #[test]
        fn cache_returns_first_computed_value(keys in prop::collection::vec(0u32..16, 1..100)) {
            let cache: Cache<u32, u32> = Cache::new();
            let mut reference = std::collections::HashMap::new();
            for &k in &keys {
                let v = cache.get_or_insert_with(k, || k * 10);
                let expect = *reference.entry(k).or_insert(k * 10);
                prop_assert_eq!(v, expect);
            }
            prop_assert!(cache.len() <= 16);
        }
    }
}

mod report_props {
    use proptest::prelude::*;
    use xlda_core::fom::{Candidate, Fom};
    use xlda_core::report::{to_csv, to_markdown};

    fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
        prop::collection::vec(
            (
                "[a-zA-Z ,]{1,20}",
                1e-9f64..1.0,
                1e-12f64..1.0,
                0.0f64..10.0,
                0.0f64..1.0,
            ),
            0..10,
        )
        .prop_map(|rows| {
            rows.into_iter()
                .map(|(name, l, e, a, acc)| {
                    Candidate::new(
                        name,
                        Fom {
                            latency_s: l,
                            energy_j: e,
                            area_mm2: a,
                            accuracy: acc,
                        },
                    )
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn emitters_produce_one_line_per_candidate(cands in arb_candidates()) {
            let md = to_markdown(&cands);
            prop_assert_eq!(md.lines().count(), cands.len() + 2);
            let csv = to_csv(&cands);
            prop_assert_eq!(csv.lines().count(), cands.len() + 1);
            // CSV numeric fields parse back.
            for line in csv.lines().skip(1) {
                let tail: Vec<&str> = line.rsplitn(5, ',').collect();
                for field in &tail[..4] {
                    prop_assert!(field.parse::<f64>().is_ok(), "bad field {field}");
                }
            }
        }
    }
}
