//! Cross-layer candidate evaluators behind the unified [`Scenario`] API.
//!
//! Every evaluable workload is a type implementing [`Scenario`]: one
//! fallible [`Scenario::candidates`] call assembles end-to-end FOMs for
//! its concrete design points by composing the substrate crates —
//! baseline platform models for software mappings, the crossbar macro
//! model for in-memory encoding, and the Eva-CAM array model for
//! associative search. The built-in scenarios generate the candidate
//! sets behind the paper's platform comparisons ([`HdcScenario`] for
//! Fig. 3H, [`MannScenario`] for the latency side of Fig. 4E) plus the
//! two Sec. III open-question studies ([`EdgeScenario`],
//! [`TpuNvmScenario`]).
//!
//! Because dispatch is through one trait, every consumer — the sweep
//! engine, the triage loop, `xlda-serve`, and `xlda-bench` — picks up a
//! new workload as soon as it implements `Scenario`. (The pre-trait
//! per-workload free functions, deprecated in 0.2.0, were removed in
//! 0.3.0.)
//!
//! # Columnar sweeps
//!
//! [`sweep_scenarios`] evaluates a slice of same-type scenarios into one
//! [`CandidateBatch`] (structure-of-arrays columns). With
//! [`Columnar::Exact`] the work-stealing scheduler hands whole chunks to
//! [`Scenario::candidates_batch`], whose built-in overrides hoist
//! invariant circuit solves out of the point loop through exact-equality
//! caches — the memo-miss cold path's dominant cost — while staying
//! bit-identical to the scalar path (see `DESIGN.md` §14).

use crate::error::{validate_fom, XldaError};
use crate::fom::{Candidate, Fom};
use crate::mc::McDistribution;
use crate::store::{Digest, DigestWriter};
use crate::sweep::{
    self, par_batch_map, par_try_map_with, Columnar, PointFailure, SweepOptions, SweepStats,
};
use std::time::Instant;
use xlda_baseline::{HybridPipeline, Kernel, Platform};
use xlda_circuit::hoist::ExactCache;
use xlda_circuit::tech::TechNode;
use xlda_crossbar::macro_model::CrossbarMacro;
use xlda_crossbar::{CrossbarConfig, CrossbarError};
use xlda_evacam::{CamArray, CamCellDesign, CamConfig, CamReport, CamSolver, DataKind, MatchKind};
use xlda_num::batch::{product_scaled, product_scaled2, scale_u32, CandidateBatch, PointStatus};
use xlda_nvram::{OptTarget, RamArray, RamBatchSolver, RamCell, RamConfig, RamReport};

/// One evaluable workload mapping: a bundle of scenario parameters that
/// can assemble its full candidate set.
///
/// This is the single dispatch surface shared by the sweep engine, the
/// triage loop, the `xlda-serve` daemon, and `xlda-bench`: adding a
/// workload means implementing this trait once, and every consumer picks
/// it up without a new per-workload entry point.
///
/// Implementations must be pure (same parameters, same candidates) and
/// thread-safe — sweeps and the serving layer evaluate scenarios from
/// many workers concurrently.
///
/// # Examples
///
/// ```
/// use xlda_core::evaluate::{HdcScenario, Scenario};
///
/// let s = HdcScenario::default();
/// let candidates = s.candidates().expect("default scenario models");
/// assert_eq!(s.kind(), "hdc");
/// assert!(!candidates.is_empty());
/// ```
pub trait Scenario: Send + Sync {
    /// Stable workload-kind tag (`"hdc"`, `"mann"`, `"edge"`,
    /// `"tpu_nvm"`, …) used for request routing, batching labels, and
    /// reports.
    fn kind(&self) -> &'static str;

    /// Evaluates the scenario into its candidate set.
    ///
    /// # Errors
    ///
    /// The first layer rejection ([`XldaError::Cam`], [`XldaError::Ram`],
    /// [`XldaError::Crossbar`], [`XldaError::Circuit`]) or FOM
    /// validation failure ([`XldaError::InvalidFom`],
    /// [`XldaError::NonFinite`]).
    fn candidates(&self) -> Result<Vec<Candidate>, XldaError>;

    /// Full evaluation: the candidate set plus any Monte-Carlo
    /// distribution summaries.
    ///
    /// Deterministic scenarios keep this default (candidates only).
    /// Monte-Carlo scenarios override it to run their trial population
    /// once and derive both the distributions and the quantile-based
    /// candidates from the same draws — consumers that want everything
    /// (like `xlda-serve`) call this and never pay for the trials twice.
    ///
    /// # Errors
    ///
    /// Same contract as [`Scenario::candidates`].
    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        Ok(Evaluation {
            candidates: self.candidates()?,
            distributions: Vec::new(),
        })
    }

    /// Evaluates a whole batch of scenarios into columnar storage — the
    /// memo-miss cold-path kernel behind [`Columnar::Exact`].
    ///
    /// The provided implementation evaluates each point through
    /// [`Scenario::candidates`], so external `Scenario` impls keep
    /// compiling (and gain columnar dispatch) with no extra work.
    /// Overrides may hoist work that is invariant across the batch —
    /// shared circuit solves, interned names, column scratch — but must
    /// stay **bit-identical** to the scalar path: for every point, the
    /// same lanes in the same order with the same `f64` bit patterns on
    /// success, or a failed point carrying the same error `Display`
    /// string. Hoisting that merely reuses a value the scalar path
    /// recomputes from identical inputs preserves this; reassociating
    /// arithmetic does not and is forbidden here (see `DESIGN.md` §14).
    ///
    /// Implementations must push lanes and close/fail exactly one point
    /// per element of `batch`, in order (see [`CandidateBatch`]). A
    /// kernel that panics or miscounts is contained by the sweep engine,
    /// which re-evaluates that chunk per point.
    ///
    /// `where Self: Sized` keeps the trait dyn-compatible; boxed
    /// scenarios take the scalar per-point path.
    fn candidates_batch(batch: &[Self], out: &mut CandidateBatch)
    where
        Self: Sized,
    {
        for s in batch {
            match s.candidates() {
                Ok(cands) => push_candidates(out, &cands),
                Err(e) => out.fail_point(PointStatus::Error, e.to_string()),
            }
        }
    }

    /// Content address of this scenario's complete parameter set for
    /// the persistent result store ([`crate::store`]).
    ///
    /// Must cover *everything* that can change the evaluation — kind
    /// tag, every numeric parameter (quantized), tech/config
    /// fingerprints — and *nothing* that cannot (MC `batch`/`threads`
    /// are schedule-only by the trial-stream contract and are
    /// excluded). Two scenarios with equal keys must evaluate
    /// bit-identically.
    ///
    /// The default returns `None`, which makes the store transparently
    /// bypass itself for scenario types that have not opted in.
    fn store_key(&self) -> Option<Digest> {
        None
    }
}

/// Boxed scenarios (the serving layer's batching currency) delegate the
/// whole trait, so `ResultStore::sweep` and `successive_halving` accept
/// `&[Box<dyn Scenario>]` directly.
impl<T: Scenario + ?Sized> Scenario for Box<T> {
    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        (**self).candidates()
    }

    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        (**self).evaluate()
    }

    fn store_key(&self) -> Option<Digest> {
        (**self).store_key()
    }
}

/// Folds the [`HdcScenario`] parameter block into an open digest —
/// shared by the HDC key and the wrapper scenarios (edge, TPU+NVM)
/// whose results are functions of the same block.
fn fold_hdc(w: &mut DigestWriter, s: &HdcScenario) {
    w.usize(s.dim_in)
        .usize(s.classes)
        .usize(s.hv_dim_sw)
        .usize(s.hv_dim_3b)
        .usize(s.hv_dim_2b)
        .usize(s.hv_dim_1b)
        .f64(s.acc_sw)
        .f64(s.acc_3b)
        .f64(s.acc_2b)
        .f64(s.acc_1b)
        .f64(s.acc_mlp)
        .word(s.tech.memo_key());
}

/// Everything one [`Scenario`] evaluation produces: the candidate set
/// every consumer understands, plus distribution summaries for
/// Monte-Carlo scenario kinds (empty for deterministic ones).
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Assembled, validated candidates.
    pub candidates: Vec<Candidate>,
    /// Monte-Carlo outcome distributions, when the scenario has any.
    pub distributions: Vec<McDistribution>,
}

/// Scenario parameters for the HDC platform comparison (Fig. 3H).
///
/// HV dimensions are the *iso-accuracy sized* lengths: lower-precision
/// cells need longer hypervectors to reach the same accuracy (and 1-bit
/// cannot reach it at all), per Sec. III. The accuracy numbers are
/// produced by the `xlda-hdc` simulation and passed in.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcScenario {
    /// Input feature dimensionality.
    pub dim_in: usize,
    /// Number of classes.
    pub classes: usize,
    /// HV length for the software / hybrid / MLP baselines.
    pub hv_dim_sw: usize,
    /// HV length giving iso-accuracy with 3-bit cells.
    pub hv_dim_3b: usize,
    /// HV length giving (near-)iso-accuracy with 2-bit cells.
    pub hv_dim_2b: usize,
    /// HV length used for the 1-bit SRAM CAM design point.
    pub hv_dim_1b: usize,
    /// Simulated accuracies for each design point.
    pub acc_sw: f64,
    /// 3-bit CAM accuracy.
    pub acc_3b: f64,
    /// 2-bit CAM accuracy.
    pub acc_2b: f64,
    /// 1-bit CAM accuracy.
    pub acc_1b: f64,
    /// MLP baseline accuracy.
    pub acc_mlp: f64,
    /// Process node for the dedicated hardware.
    pub tech: TechNode,
}

impl Default for HdcScenario {
    /// ISOLET-like shape with representative simulated accuracies.
    fn default() -> Self {
        Self {
            dim_in: 617,
            classes: 26,
            hv_dim_sw: 4096,
            hv_dim_3b: 2048,
            hv_dim_2b: 4096,
            hv_dim_1b: 4096,
            acc_sw: 0.93,
            acc_3b: 0.93,
            acc_2b: 0.92,
            acc_1b: 0.87,
            acc_mlp: 0.93,
            tech: TechNode::n40(),
        }
    }
}

/// Latency/energy of HDC inference on a software platform.
fn hdc_on_platform(s: &HdcScenario, platform: &Platform, batch: usize, hv: usize) -> (f64, f64) {
    let encode = Kernel::mvm(hv, s.dim_in);
    let search = Kernel::search(s.classes, hv, 4);
    let t = platform.time_per_item(&encode, batch) + platform.time_per_item(&search, batch);
    let e = (platform.energy(&encode, batch) + platform.energy(&search, batch)) / batch as f64;
    (t, e)
}

/// The fixed 256x256 encode-crossbar configuration of the HDC pipeline.
fn hdc_xbar_cfg() -> CrossbarConfig {
    CrossbarConfig {
        rows: 256,
        cols: 256,
        ..CrossbarConfig::default()
    }
}

/// The CAM configuration of one HDC design point: one CAM holding
/// `classes` words of `hv` cells.
fn hdc_cam_cfg(s: &HdcScenario, design: CamCellDesign, data: DataKind, hv: usize) -> CamConfig {
    let bits = data.bits_per_cell() as usize;
    CamConfig {
        words: s.classes,
        bits_per_word: hv * bits,
        design,
        data,
        match_kind: MatchKind::Best { max_distance: 8 },
        row_banks: 1,
        tech: s.tech.clone(),
    }
}

/// Encode-tile composition from one crossbar macro solve. Column tiles
/// run in parallel macros; row tiles accumulate serially. Shared by the
/// scalar path and the batch kernel's per-point arm, so both produce the
/// same bits.
fn hdc_encode_tiles(
    s: &HdcScenario,
    hv: usize,
    mvm_latency_s: f64,
    mvm_energy_j: f64,
    area_m2: f64,
) -> (f64, f64, f64) {
    let tiles_rows = s.dim_in.div_ceil(256);
    let tiles_cols = hv.div_ceil(256);
    (
        tiles_rows as f64 * mvm_latency_s,
        (tiles_rows * tiles_cols) as f64 * mvm_energy_j,
        (tiles_rows * tiles_cols) as f64 * area_m2 * 1e6, // mm²
    )
}

/// Composition tail of every HDC CAM design point, shared by the scalar
/// and batch paths.
fn hdc_cam_compose(
    t_encode: f64,
    e_encode: f64,
    a_encode: f64,
    rep: &CamReport,
) -> Result<(f64, f64, f64), XldaError> {
    let out = (
        t_encode + rep.search_latency_s,
        e_encode + rep.search_energy_j,
        a_encode + rep.area_um2 * 1e-6,
    );
    if !(out.0.is_finite() && out.1.is_finite() && out.2.is_finite()) {
        return Err(XldaError::NonFinite {
            stage: "hdc_on_cam",
            quantity: "latency/energy/area composition",
        });
    }
    Ok(out)
}

/// Latency/energy/area of HDC inference on a crossbar encoder plus a CAM
/// associative memory.
///
/// # Errors
///
/// Propagates the crossbar or CAM model's rejection of the design point
/// (e.g. an unachievable sense margin for long best-match words).
fn hdc_on_cam(
    s: &HdcScenario,
    design: CamCellDesign,
    data: DataKind,
    hv: usize,
) -> Result<(f64, f64, f64), XldaError> {
    // Encoding: random-projection MVM on analog crossbar tiles.
    let (t_encode, e_encode, a_encode) = {
        let _span = xlda_obs::span!("crossbar");
        let xmacro = CrossbarMacro::try_new(&hdc_xbar_cfg(), &s.tech, 8)?;
        let mvm = xmacro.mvm_cost();
        hdc_encode_tiles(s, hv, mvm.latency_s, mvm.energy_j, xmacro.area_m2())
    };

    let rep = {
        let _span = xlda_obs::span!("evacam");
        let cam = CamArray::new(hdc_cam_cfg(s, design, data, hv))?;
        cam.report()
    };
    hdc_cam_compose(t_encode, e_encode, a_encode, &rep)
}

impl Scenario for HdcScenario {
    fn kind(&self) -> &'static str {
        "hdc"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        fold_hdc(&mut w, self);
        Some(w.finish())
    }

    /// Builds the full Fig. 3H candidate set: layer models reject
    /// infeasible design points with a typed [`XldaError`] instead of
    /// panicking, and every assembled FOM bundle is validated for
    /// finiteness before it enters the candidate set.
    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        let s = self;
        let gpu = Platform::gpu();
        let mut out = Vec::new();

        let (t, e) = hdc_on_platform(s, &gpu, 1, s.hv_dim_sw);
        let name = "GPU HDC (batch 1)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?,
        ));

        let (t, e) = hdc_on_platform(s, &gpu, 1000, s.hv_dim_sw);
        let name = "GPU HDC (batch 1000)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?,
        ));

        // TPU encodes (dense MVM), GPU searches.
        let hybrid = HybridPipeline::tpu_gpu();
        let encode = Kernel::mvm(s.hv_dim_sw, s.dim_in);
        let search = Kernel::search(s.classes, s.hv_dim_sw, 4);
        let batch = 1000;
        let name = "TPU-GPU hybrid (batch 1000)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: hybrid.time(&encode, &search, batch) / batch as f64,
                    energy_j: hybrid.energy(&encode, &search, batch) / batch as f64,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?,
        ));

        for d in &HDC_CAM_DESIGNS {
            let (t, e, a) = hdc_on_cam(s, d.design, d.data, (d.hv)(s))?;
            out.push(Candidate::new(
                d.name,
                validate_fom(
                    d.name,
                    Fom {
                        latency_s: t,
                        energy_j: e,
                        area_mm2: a,
                        accuracy: (d.acc)(s),
                    },
                )?,
            ));
        }

        out.push(tpu_nvm_fom(s, 1)?);

        // MLP baseline: dim_in -> 512 -> classes on a GPU, batched.
        let l1 = Kernel::mvm(512, s.dim_in);
        let l2 = Kernel::mvm(s.classes, 512);
        let t = gpu.time_per_item(&l1, 1000) + gpu.time_per_item(&l2, 1000);
        let e = (gpu.energy(&l1, 1000) + gpu.energy(&l2, 1000)) / 1000.0;
        let name = "GPU MLP (batch 1000)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_mlp,
                },
            )?,
        ));

        Ok(out)
    }

    /// Columnar Fig. 3H kernel. Hoisted once per batch: the 256x256
    /// crossbar macro solve (per tech node), the CAM sense-margin search
    /// (per matchline config), and the NVM geometry sub-solves (per
    /// subarray shape) — the dominant self-time of the memo-miss cold
    /// path. When the batch shares one tech node, the encode-tile
    /// columns are additionally produced by the lane-unrolled column
    /// kernels. Every per-point composition reuses the scalar helpers,
    /// so results are bit-identical to [`Scenario::candidates`].
    fn candidates_batch(batch: &[Self], out: &mut CandidateBatch)
    where
        Self: Sized,
    {
        let mut h = HdcHoists::default();
        let enc = HdcEncodeCols::precompute(batch, &mut h.xbars, out);
        for (i, s) in batch.iter().enumerate() {
            match hdc_batch_point(s, i, enc.as_ref(), &mut h, out) {
                Ok(()) => out.close_point(),
                Err(e) => out.fail_point(PointStatus::Error, e.to_string()),
            }
        }
        if let Some(enc) = enc {
            enc.release(out);
        }
    }
}

/// One CAM design point of the Fig. 3H set, with per-scenario HV-length
/// and accuracy selectors so the table can be shared by the scalar loop
/// and the batch kernel (identical names, identical order).
struct HdcCamDesign {
    name: &'static str,
    design: CamCellDesign,
    data: DataKind,
    hv: fn(&HdcScenario) -> usize,
    acc: fn(&HdcScenario) -> f64,
}

/// The three CAM design points of the Fig. 3H set, in evaluation order.
const HDC_CAM_DESIGNS: [HdcCamDesign; 3] = [
    HdcCamDesign {
        name: "3b FeFET CAM",
        design: CamCellDesign::Fefet2T,
        data: DataKind::MultiBit(3),
        hv: |s| s.hv_dim_3b,
        acc: |s| s.acc_3b,
    },
    HdcCamDesign {
        name: "2b FeFET CAM",
        design: CamCellDesign::Fefet2T,
        data: DataKind::MultiBit(2),
        hv: |s| s.hv_dim_2b,
        acc: |s| s.acc_2b,
    },
    HdcCamDesign {
        name: "1b SRAM CAM",
        design: CamCellDesign::Sram16T,
        data: DataKind::Binary,
        hv: |s| s.hv_dim_1b,
        acc: |s| s.acc_1b,
    },
];

/// Batch-scoped cache over the crossbar macro solve for one fixed
/// `CrossbarConfig`/ADC-resolution pair, keyed by tech node. Caches the
/// rejection too, so a failing tech errors every point the way the
/// scalar path does.
type XbarCache = ExactCache<TechNode, Result<(f64, f64, f64), CrossbarError>>;

/// The crossbar macro's `(mvm latency, mvm energy, area m²)` triple for
/// `tech`, read off [`CrossbarMacro`] exactly as the scalar path reads
/// it, computed once per distinct tech node per batch.
fn solve_xbar(
    cache: &mut XbarCache,
    cfg: &CrossbarConfig,
    tech: &TechNode,
) -> Result<(f64, f64, f64), CrossbarError> {
    *cache.get_or_insert_with(tech.clone(), |t| {
        CrossbarMacro::try_new(cfg, t, 8).map(|m| {
            let mvm = m.mvm_cost();
            (mvm.latency_s, mvm.energy_j, m.area_m2())
        })
    })
}

/// The hoisted solver state of one HDC batch-kernel invocation.
#[derive(Default)]
struct HdcHoists {
    xbars: XbarCache,
    cams: CamSolver,
    rams: RamBatchSolver,
}

/// Columnar encode-tile columns for one HDC batch: per CAM design, the
/// `(t_encode, e_encode, a_encode)` column triple produced by the
/// lane-unrolled kernels in [`xlda_num::batch`] from `u32` tile counts.
/// Only built when the whole batch shares one tech node (one crossbar
/// solve covers every point); otherwise the kernel computes per point —
/// both arms produce bit-identical values.
struct HdcEncodeCols {
    t: [Vec<f64>; 3],
    e: [Vec<f64>; 3],
    a: [Vec<f64>; 3],
}

impl HdcEncodeCols {
    fn precompute(
        batch: &[HdcScenario],
        xbars: &mut XbarCache,
        out: &mut CandidateBatch,
    ) -> Option<Self> {
        if batch.len() < 2 || !batch.windows(2).all(|w| w[0].tech == w[1].tech) {
            return None;
        }
        let _span = xlda_obs::span!("crossbar");
        // On Err the rejection is now cached; the per-point arm replays
        // it at the right point in the candidate order.
        let (lat, en, area_m2) = solve_xbar(xbars, &hdc_xbar_cfg(), &batch[0].tech).ok()?;
        let mut rows = out.take_u32();
        rows.extend(batch.iter().map(|s| s.dim_in.div_ceil(256) as u32));
        let mut cols = out.take_u32();
        let mut built = Self {
            t: [out.take_f64(), out.take_f64(), out.take_f64()],
            e: [out.take_f64(), out.take_f64(), out.take_f64()],
            a: [out.take_f64(), out.take_f64(), out.take_f64()],
        };
        for (d, design) in HDC_CAM_DESIGNS.iter().enumerate() {
            cols.clear();
            cols.extend(batch.iter().map(|s| (design.hv)(s).div_ceil(256) as u32));
            scale_u32(&mut built.t[d], &rows, lat);
            product_scaled(&mut built.e[d], &rows, &cols, en);
            product_scaled2(&mut built.a[d], &rows, &cols, area_m2, 1e6);
        }
        out.put_u32(rows);
        out.put_u32(cols);
        Some(built)
    }

    /// Returns the columns to the batch's scratch pool.
    fn release(self, out: &mut CandidateBatch) {
        for col in self.t.into_iter().chain(self.e).chain(self.a) {
            out.put_f64(col);
        }
    }
}

/// One point of the HDC batch kernel: the exact candidate sequence of
/// [`HdcScenario::candidates`] with hoisted solves injected.
fn hdc_batch_point(
    s: &HdcScenario,
    i: usize,
    enc: Option<&HdcEncodeCols>,
    h: &mut HdcHoists,
    out: &mut CandidateBatch,
) -> Result<(), XldaError> {
    let gpu = Platform::gpu();

    let (t, e) = hdc_on_platform(s, &gpu, 1, s.hv_dim_sw);
    push_validated(out, "GPU HDC (batch 1)", t, e, 0.0, s.acc_sw)?;

    let (t, e) = hdc_on_platform(s, &gpu, 1000, s.hv_dim_sw);
    push_validated(out, "GPU HDC (batch 1000)", t, e, 0.0, s.acc_sw)?;

    let hybrid = HybridPipeline::tpu_gpu();
    let encode = Kernel::mvm(s.hv_dim_sw, s.dim_in);
    let search = Kernel::search(s.classes, s.hv_dim_sw, 4);
    let batch = 1000;
    push_validated(
        out,
        "TPU-GPU hybrid (batch 1000)",
        hybrid.time(&encode, &search, batch) / batch as f64,
        hybrid.energy(&encode, &search, batch) / batch as f64,
        0.0,
        s.acc_sw,
    )?;

    for (d, design) in HDC_CAM_DESIGNS.iter().enumerate() {
        let hv = (design.hv)(s);
        let (t_encode, e_encode, a_encode) = match enc {
            Some(c) => (c.t[d][i], c.e[d][i], c.a[d][i]),
            None => {
                let _span = xlda_obs::span!("crossbar");
                let (lat, en, area_m2) = solve_xbar(&mut h.xbars, &hdc_xbar_cfg(), &s.tech)?;
                hdc_encode_tiles(s, hv, lat, en, area_m2)
            }
        };
        let rep = {
            let _span = xlda_obs::span!("evacam");
            h.cams
                .report(hdc_cam_cfg(s, design.design, design.data, hv))?
        };
        let (t, e, a) = hdc_cam_compose(t_encode, e_encode, a_encode, &rep)?;
        push_validated(out, design.name, t, e, a, (design.acc)(s))?;
    }

    let c = tpu_nvm_fom_hoisted(s, 1, &mut h.rams)?;
    let id = out.intern(&c.name);
    out.push_lane(
        id,
        c.fom.latency_s,
        c.fom.energy_j,
        c.fom.area_mm2,
        c.fom.accuracy,
    );

    let l1 = Kernel::mvm(512, s.dim_in);
    let l2 = Kernel::mvm(s.classes, 512);
    let t = gpu.time_per_item(&l1, 1000) + gpu.time_per_item(&l2, 1000);
    let e = (gpu.energy(&l1, 1000) + gpu.energy(&l2, 1000)) / 1000.0;
    push_validated(out, "GPU MLP (batch 1000)", t, e, 0.0, s.acc_mlp)?;
    Ok(())
}

/// Validates and appends one candidate lane to the batch's open point —
/// the columnar counterpart of `Candidate::new(name, validate_fom(..)?)`.
fn push_validated(
    out: &mut CandidateBatch,
    name: &str,
    latency_s: f64,
    energy_j: f64,
    area_mm2: f64,
    accuracy: f64,
) -> Result<(), XldaError> {
    let fom = validate_fom(
        name,
        Fom {
            latency_s,
            energy_j,
            area_mm2,
            accuracy,
        },
    )?;
    let id = out.intern(name);
    out.push_lane(id, fom.latency_s, fom.energy_j, fom.area_mm2, fom.accuracy);
    Ok(())
}

/// Appends a scalar candidate set as one successful columnar point.
fn push_candidates(out: &mut CandidateBatch, cands: &[Candidate]) {
    for c in cands {
        let id = out.intern(&c.name);
        out.push_lane(
            id,
            c.fom.latency_s,
            c.fom.energy_j,
            c.fom.area_mm2,
            c.fom.accuracy,
        );
    }
    out.close_point();
}

/// The paper's open question (Sec. III): "What if an existing
/// architecture (e.g., a TPU) is backed by a dense or distributed
/// non-volatile memory? Is this a better way to leverage an emerging
/// technology?" — answered by evaluation.
///
/// Models a TPU-class systolic core whose weights (projection matrix and
/// class HVs) reside in on-chip FeFET NVM instead of streaming from HBM:
/// weight traffic moves at the aggregated on-chip array bandwidth and at
/// NVM read energy, and the host-dispatch overhead shrinks (no off-chip
/// weight staging). The framework's verdict (see the
/// `nvm_backed_tpu_answers_the_open_question` test): it beats the GPU
/// baselines — especially at batch 1 and in energy — but the technology-
/// *enabled* CAM design point still wins, i.e. using the new device as
/// plain dense memory captures only part of its value.
#[derive(Debug, Clone, PartialEq)]
pub struct TpuNvmScenario {
    /// The HDC workload whose weights the on-chip NVM holds.
    pub base: HdcScenario,
    /// Inference batch size the weight streaming amortizes over.
    pub batch: usize,
}

impl TpuNvmScenario {
    /// Wraps an HDC scenario at the given batch size.
    pub fn new(base: HdcScenario, batch: usize) -> Self {
        Self { base, batch }
    }
}

impl Default for TpuNvmScenario {
    fn default() -> Self {
        Self::new(HdcScenario::default(), 1)
    }
}

impl Scenario for TpuNvmScenario {
    fn kind(&self) -> &'static str {
        "tpu_nvm"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        fold_hdc(&mut w, &self.base);
        w.usize(self.batch);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        Ok(vec![tpu_nvm_fom(&self.base, self.batch)?])
    }
}

/// Assembles the NVM-backed-TPU candidate shared by [`HdcScenario`]
/// (batch 1, inside the Fig. 3H set) and [`TpuNvmScenario`].
///
/// # Errors
///
/// [`XldaError::Ram`] if the NVM weight store cannot be organized
/// (degenerate capacity), [`XldaError::InvalidFom`] if the assembled
/// FOMs are non-finite.
fn tpu_nvm_fom(s: &HdcScenario, batch: usize) -> Result<Candidate, XldaError> {
    let weight_bytes = tpu_nvm_weight_bytes(s);
    let rep = {
        let _span = xlda_obs::span!("nvram");
        let ram =
            RamArray::auto_organize(&tpu_nvm_config(s, weight_bytes), OptTarget::ReadLatency)?;
        ram.report()
    };
    tpu_nvm_compose(s, batch, weight_bytes, &rep)
}

/// [`tpu_nvm_fom`] with the NVM geometry search hoisted through a
/// [`RamBatchSolver`]: the solver's organization search replays the
/// scalar search with its capacity-independent sub-solves cached, and
/// the composition tail is [`tpu_nvm_compose`] either way — bit-identical
/// by construction.
fn tpu_nvm_fom_hoisted(
    s: &HdcScenario,
    batch: usize,
    rams: &mut RamBatchSolver,
) -> Result<Candidate, XldaError> {
    let weight_bytes = tpu_nvm_weight_bytes(s);
    let rep = {
        let _span = xlda_obs::span!("nvram");
        rams.auto_organize_report(&tpu_nvm_config(s, weight_bytes), OptTarget::ReadLatency)?
    };
    tpu_nvm_compose(s, batch, weight_bytes, &rep)
}

/// Weight footprint: bipolar projection (1 bit/element) + 4-bit class
/// HVs, held in on-chip FeFET NVM.
fn tpu_nvm_weight_bytes(s: &HdcScenario) -> u64 {
    (s.dim_in * s.hv_dim_sw) as u64 / 8 + (s.classes * s.hv_dim_sw) as u64 / 2
}

fn tpu_nvm_config(s: &HdcScenario, weight_bytes: u64) -> RamConfig {
    RamConfig {
        capacity_bits: weight_bytes * 8,
        word_bits: 256,
        cell: RamCell::Fefet1T,
        tech: s.tech.clone(),
    }
}

/// Composition tail shared by the scalar and hoisted NVM-backed-TPU
/// paths.
fn tpu_nvm_compose(
    s: &HdcScenario,
    batch: usize,
    weight_bytes: u64,
    rep: &RamReport,
) -> Result<Candidate, XldaError> {
    let tpu = Platform::tpu();
    // 16 mats stream in parallel: aggregated on-chip weight bandwidth.
    let nvm_bw = 16.0 * (256.0 / 8.0) / rep.read_latency_s;
    let flops = 2.0 * (s.dim_in * s.hv_dim_sw + s.classes * s.hv_dim_sw) as f64;
    let t_compute = batch as f64 * flops / (tpu.peak_flops * tpu.efficiency);
    let t_weights = weight_bytes as f64 / nvm_bw; // streamed once per batch
                                                  // On-chip dispatch only: no host weight staging.
    let launch = 1e-6;
    let latency = (launch + t_compute.max(t_weights)) / batch as f64;
    let e_compute = tpu.active_power * (launch + t_compute.max(t_weights));
    let e_weights = weight_bytes as f64 / 32.0 * rep.read_energy_j;
    let name = format!("TPU + on-chip NVM (batch {batch})");
    let fom = validate_fom(
        &name,
        Fom {
            latency_s: latency,
            energy_j: (e_compute + e_weights) / batch as f64,
            area_mm2: rep.area_mm2,
            accuracy: s.acc_sw,
        },
    )?;
    Ok(Candidate::new(name, fom))
}

/// The paper's open question (Sec. III, (1)): "What is the best baseline
/// architecture to compare to? (i.e., is an HDC model more likely to be
/// deployed 'on the edge', making small batches more likely and a GPU
/// less likely to be employed?)" — answered by building the edge
/// candidate set: an edge-class GPU and a CPU at batch 1 against the
/// same CAM design point.
///
/// The framework's verdict (see `edge_deployment_answers_open_question`):
/// at the edge the software baselines get *worse* (no batching to
/// amortize launch overhead, weaker silicon), so the CAM's advantage
/// widens — the fair baseline question sharpens, rather than weakens,
/// the technology case.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeScenario {
    /// The HDC workload deployed at the edge (batch 1).
    pub base: HdcScenario,
}

impl EdgeScenario {
    /// Wraps an HDC scenario for edge deployment.
    pub fn new(base: HdcScenario) -> Self {
        Self { base }
    }
}

impl Scenario for EdgeScenario {
    fn kind(&self) -> &'static str {
        "edge"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        fold_hdc(&mut w, &self.base);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        let s = &self.base;
        let mut out = Vec::new();
        for platform in [Platform::edge_gpu(), Platform::cpu()] {
            let (t, e) = hdc_on_platform(s, &platform, 1, s.hv_dim_sw);
            let name = format!("{} HDC (batch 1)", platform.name);
            let fom = validate_fom(
                &name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?;
            out.push(Candidate::new(name, fom));
        }
        let (t, e, a) = hdc_on_cam(
            s,
            CamCellDesign::Fefet2T,
            DataKind::MultiBit(3),
            s.hv_dim_3b,
        )?;
        let name = "3b FeFET CAM";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: a,
                    accuracy: s.acc_3b,
                },
            )?,
        ));
        Ok(out)
    }
}

/// Scenario for the MANN latency comparison (Fig. 4E right axis).
#[derive(Debug, Clone, PartialEq)]
pub struct MannScenario {
    /// CNN weight count.
    pub weights: usize,
    /// Embedding dimensionality.
    pub emb_dim: usize,
    /// Hash signature bits.
    pub hash_bits: usize,
    /// Stored memories (support entries).
    pub entries: usize,
    /// Accuracy of the software-cosine skyline.
    pub acc_software: f64,
    /// Accuracy of the RRAM hashing pipeline.
    pub acc_rram: f64,
    /// Process node.
    pub tech: TechNode,
}

impl Default for MannScenario {
    fn default() -> Self {
        Self {
            weights: 65_000,
            emb_dim: 64,
            hash_bits: 256,
            entries: 125,
            acc_software: 0.95,
            acc_rram: 0.94,
            tech: TechNode::n40(),
        }
    }
}

impl Scenario for MannScenario {
    fn kind(&self) -> &'static str {
        "mann"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        w.usize(self.weights)
            .usize(self.emb_dim)
            .usize(self.hash_bits)
            .usize(self.entries)
            .f64(self.acc_software)
            .f64(self.acc_rram)
            .word(self.tech.memo_key());
        Some(w.finish())
    }

    /// Builds the MANN platform candidates: GPU software stack vs. the
    /// all-RRAM in-memory pipeline.
    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        let s = self;
        // RRAM path: CNN on crossbars, hashing on a stochastic crossbar, AM
        // search in an RRAM TCAM.
        let (mvm_latency_s, mvm_energy_j, area_m2) = {
            let _span = xlda_obs::span!("crossbar");
            let xmacro = CrossbarMacro::try_new(&mann_xbar_cfg(), &s.tech, 8)?;
            let mvm = xmacro.mvm_cost();
            (mvm.latency_s, mvm.energy_j, xmacro.area_m2())
        };
        let rep = {
            let _span = xlda_obs::span!("evacam");
            let cam = CamArray::new(mann_cam_cfg(s))?;
            cam.report()
        };
        mann_compose(s, mvm_latency_s, mvm_energy_j, area_m2, &rep)
    }

    /// Columnar MANN kernel: hoists the 64x64 crossbar macro solve (per
    /// tech node) and the TCAM sense-margin search (per matchline
    /// config) across the batch, then composes each point through
    /// [`mann_compose`] — bit-identical to [`Scenario::candidates`].
    fn candidates_batch(batch: &[Self], out: &mut CandidateBatch)
    where
        Self: Sized,
    {
        let mut xbars = XbarCache::new();
        let mut cams = CamSolver::new();
        for s in batch {
            let point = (|| -> Result<Vec<Candidate>, XldaError> {
                let (mvm_latency_s, mvm_energy_j, area_m2) = {
                    let _span = xlda_obs::span!("crossbar");
                    solve_xbar(&mut xbars, &mann_xbar_cfg(), &s.tech)?
                };
                let rep = {
                    let _span = xlda_obs::span!("evacam");
                    cams.report(mann_cam_cfg(s))?
                };
                mann_compose(s, mvm_latency_s, mvm_energy_j, area_m2, &rep)
            })();
            match point {
                Ok(cands) => push_candidates(out, &cands),
                Err(e) => out.fail_point(PointStatus::Error, e.to_string()),
            }
        }
    }
}

/// The fixed 64x64 crossbar configuration of the MANN RRAM pipeline.
fn mann_xbar_cfg() -> CrossbarConfig {
    CrossbarConfig {
        rows: 64,
        cols: 64,
        ..CrossbarConfig::default()
    }
}

/// The RRAM TCAM configuration of the MANN associative-memory search.
fn mann_cam_cfg(s: &MannScenario) -> CamConfig {
    CamConfig {
        words: s.entries,
        bits_per_word: s.hash_bits,
        design: CamCellDesign::Rram2T2R,
        data: DataKind::Ternary,
        match_kind: MatchKind::Best { max_distance: 4 },
        row_banks: 1,
        tech: s.tech.clone(),
    }
}

/// Composition tail of the MANN candidate pair from one crossbar macro
/// solve and one TCAM report, shared by the scalar and batch paths.
fn mann_compose(
    s: &MannScenario,
    mvm_latency_s: f64,
    mvm_energy_j: f64,
    area_m2: f64,
    rep: &CamReport,
) -> Result<Vec<Candidate>, XldaError> {
    let gpu = Platform::gpu();
    // GPU path: CNN + exact cosine search over raw embeddings.
    let cnn = Kernel {
        flops_per_item: (s.weights as u64) * 100,
        bytes_per_item: 28 * 28 * 4,
        shared_bytes: (s.weights * 4) as u64,
    };
    let search = Kernel::search(s.entries, s.emb_dim, 4);
    let t_gpu = gpu.time_per_item(&cnn, 1) + gpu.time_per_item(&search, 1);
    let e_gpu = gpu.energy(&cnn, 1) + gpu.energy(&search, 1);

    // Paper: >65k weights across 36 64x64 crossbars; layers pipeline but
    // inference visits each layer once.
    let cnn_tiles = s.weights.div_ceil(64 * 64).max(1);
    let layer_depth = 4.0;
    let t_cnn = layer_depth * mvm_latency_s;
    let e_cnn = cnn_tiles as f64 * mvm_energy_j;
    let hash_tiles = (s.emb_dim.div_ceil(64) * (2 * s.hash_bits).div_ceil(64)).max(1);
    let t_hash = mvm_latency_s;
    let e_hash = hash_tiles as f64 * mvm_energy_j;
    let area = (cnn_tiles + hash_tiles) as f64 * area_m2 * 1e6 + rep.area_um2 * 1e-6;

    Ok(vec![
        Candidate::new(
            "GPU MANN (batch 1)",
            validate_fom(
                "GPU MANN (batch 1)",
                Fom {
                    latency_s: t_gpu,
                    energy_j: e_gpu,
                    area_mm2: 0.0,
                    accuracy: s.acc_software,
                },
            )?,
        ),
        Candidate::new(
            "RRAM in-memory MANN",
            validate_fom(
                "RRAM in-memory MANN",
                Fom {
                    latency_s: t_cnn + t_hash + rep.search_latency_s,
                    energy_j: e_cnn + e_hash + rep.search_energy_j,
                    area_mm2: area,
                    accuracy: s.acc_rram,
                },
            )?,
        ),
    ])
}

// ---------------------------------------------------------------------------
// Columnar sweep entry points.
// ---------------------------------------------------------------------------

/// Message recorded on points skipped by an expired sweep deadline;
/// matches `PointFailure::DeadlineExceeded`'s `Display` so both sweep
/// arms report the skip identically.
const DEADLINE_MSG: &str = "sweep deadline expired before evaluation";

thread_local! {
    /// Per-worker columnar scratch batch, reused across stolen chunks so
    /// column capacity and kernel scratch pools survive chunk boundaries.
    static CHUNK_BATCH: std::cell::RefCell<CandidateBatch> =
        std::cell::RefCell::new(CandidateBatch::new());
}

/// Evaluates a grid of same-type scenarios into one [`CandidateBatch`],
/// preserving input order, with per-point error/panic containment.
///
/// [`Columnar::Off`] (the default) evaluates per point through
/// [`Scenario::candidates`] on the scalar work-stealing engine.
/// [`Columnar::Exact`] hands whole chunks to
/// [`Scenario::candidates_batch`]; a chunk whose kernel panics or
/// miscounts its points is transparently re-evaluated per point. The two
/// modes produce batches with identical checksums
/// ([`CandidateBatch::checksum`]) on deadline-free sweeps — `Exact` is an
/// opt-in for cold-path throughput, never a numerics change.
///
/// [`SweepOptions::deadline`] is honored at point granularity in scalar
/// mode and at *chunk* granularity in columnar mode (an admitted chunk
/// runs to completion), so under an expired deadline the two modes may
/// skip different points.
pub fn sweep_scenarios<S: Scenario>(scenarios: &[S], opts: &SweepOptions) -> CandidateBatch {
    match opts.columnar() {
        Columnar::Off => {
            let results = par_try_map_with(scenarios, |s| s.candidates(), opts);
            let mut out = CandidateBatch::new();
            for r in results {
                match r {
                    Ok(cands) => push_candidates(&mut out, &cands),
                    Err(PointFailure::Error(e)) => {
                        out.fail_point(PointStatus::Error, e.to_string());
                    }
                    Err(PointFailure::Panicked(msg)) => {
                        out.fail_point(PointStatus::Panicked, msg);
                    }
                    Err(PointFailure::DeadlineExceeded) => {
                        out.fail_point(PointStatus::DeadlineExceeded, DEADLINE_MSG);
                    }
                }
            }
            out
        }
        Columnar::Exact => {
            let expires_at = opts.deadline().map(|d| Instant::now() + d);
            let chunks = par_batch_map(scenarios, opts, |_base, slice| {
                run_columnar_chunk(slice, expires_at)
            });
            let mut out = CandidateBatch::new();
            for c in &chunks {
                out.append(c);
            }
            out
        }
    }
}

/// One columnar chunk: deadline check, batch kernel under a chunk-level
/// panic guard, and a per-point scalar fallback if the kernel misbehaves.
fn run_columnar_chunk<S: Scenario>(slice: &[S], expires_at: Option<Instant>) -> CandidateBatch {
    // Chunk-granular deadline: mirrors the scalar engine's "never
    // interrupt an evaluator" rule at chunk scope.
    if expires_at.is_some_and(|t| Instant::now() >= t) {
        let mut out = CandidateBatch::new();
        for _ in slice {
            out.fail_point(PointStatus::DeadlineExceeded, DEADLINE_MSG);
        }
        return out;
    }
    let kernel = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        CHUNK_BATCH.with(|cell| {
            let mut b = cell.borrow_mut();
            b.clear();
            S::candidates_batch(slice, &mut b);
            b.clone()
        })
    }));
    match kernel {
        Ok(b) if b.points() == slice.len() => b,
        // A panicking or miscounting kernel forfeits the whole chunk to
        // per-point scalar evaluation with per-point containment, so one
        // poisoned lane cannot take down its chunk-mates.
        _ => {
            let mut out = CandidateBatch::new();
            for s in slice {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.candidates())) {
                    Ok(Ok(cands)) => push_candidates(&mut out, &cands),
                    Ok(Err(e)) => out.fail_point(PointStatus::Error, e.to_string()),
                    Err(payload) => {
                        out.fail_point(PointStatus::Panicked, sweep::panic_message(payload));
                    }
                }
            }
            out
        }
    }
}

/// Runs [`sweep_scenarios`] and measures it: wall time, memo-cache
/// deltas, and the per-span layer breakdown, diffed over just this
/// sweep like [`sweep::sweep_with_stats`]. Columnar dispatch has no
/// per-point timing boundary, so `stats.slowest` is always empty here —
/// use the scalar stats path when slow-point capture matters.
pub fn sweep_scenarios_with_stats<S: Scenario>(
    scenarios: &[S],
    opts: &SweepOptions,
) -> (CandidateBatch, SweepStats) {
    let caches_before = sweep::memo::snapshot();
    let spans_before = xlda_obs::span::aggregate_snapshot();
    let start = Instant::now();
    let out = sweep_scenarios(scenarios, opts);
    let stats = SweepStats {
        points: scenarios.len(),
        elapsed: start.elapsed(),
        caches: sweep::diff_caches(&caches_before, sweep::memo::snapshot()),
        layers: xlda_obs::span::diff_aggregates(
            &spans_before,
            &xlda_obs::span::aggregate_snapshot(),
        ),
        slowest: Vec::new(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdc_candidate_set_is_complete_and_valid() {
        let cands = HdcScenario::default().candidates().unwrap();
        assert_eq!(cands.len(), 8);
        for c in &cands {
            assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
            assert!(c.fom.latency_s > 0.0);
        }
    }

    #[test]
    fn fig3h_shape_batching_helps_gpu() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| {
            cands
                .iter()
                .find(|c| c.name.contains(n))
                .unwrap_or_else(|| panic!("{n} missing"))
                .fom
        };
        let b1 = find("batch 1)");
        let b1000 = find("batch 1000)");
        assert!(b1000.latency_s < b1.latency_s / 10.0);
    }

    #[test]
    fn fig3h_shape_3b_cam_beats_gpu_latency() {
        // The headline Fig. 3H result: the 3-bit FeFET CAM design point
        // beats even batched GPU inference at iso-accuracy.
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let cam3 = find("3b FeFET");
        let gpu_b1 = find("GPU HDC (batch 1)");
        let gpu_b1000 = find("GPU HDC (batch 1000)");
        assert!(cam3.fom.latency_s < gpu_b1.fom.latency_s / 100.0);
        assert!(cam3.fom.latency_s < gpu_b1000.fom.latency_s);
        assert!(cam3.fom.accuracy >= gpu_b1.fom.accuracy - 1e-9);
    }

    #[test]
    fn fig3h_shape_2b_needs_longer_hvs_and_is_slower_than_3b() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let cam3 = find("3b FeFET");
        let cam2 = find("2b FeFET");
        assert!(cam2.fom.latency_s > cam3.fom.latency_s);
        assert!(cam2.fom.energy_j > cam3.fom.energy_j);
    }

    #[test]
    fn fig3h_shape_1b_sram_fast_but_inaccurate() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let sram = find("1b SRAM");
        let cam3 = find("3b FeFET");
        assert!(sram.fom.accuracy < cam3.fom.accuracy);
        assert!(sram.fom.area_mm2 > cam3.fom.area_mm2); // 16T cells
    }

    #[test]
    fn fig3h_shape_hybrid_nominal_improvement() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let gpu = find("GPU HDC (batch 1000)");
        let hybrid = find("TPU-GPU");
        assert!(hybrid.fom.latency_s < gpu.fom.latency_s);
        assert!(hybrid.fom.latency_s > gpu.fom.latency_s / 10.0); // nominal, not drastic
    }

    #[test]
    fn edge_deployment_answers_open_question() {
        // Sec. III open question (1): at the edge (batch 1, weaker
        // silicon) the software baselines slow down, so the CAM's
        // advantage is even larger than against the datacenter GPU.
        let s = HdcScenario::default();
        let edge = EdgeScenario::new(s.clone()).candidates().unwrap();
        assert_eq!(edge.len(), 3);
        let cam = edge.iter().find(|c| c.name.contains("CAM")).expect("cam");
        let edge_gpu = edge
            .iter()
            .find(|c| c.name.contains("edge-GPU"))
            .expect("edge gpu");
        let datacenter = s.candidates().unwrap();
        let dc_gpu_b1000 = datacenter
            .iter()
            .find(|c| c.name.contains("batch 1000)") && c.name.contains("GPU HDC"))
            .expect("dc gpu");
        let edge_advantage = edge_gpu.fom.latency_s / cam.fom.latency_s;
        let dc_advantage = dc_gpu_b1000.fom.latency_s / cam.fom.latency_s;
        assert!(
            edge_advantage > dc_advantage,
            "edge {edge_advantage:.0}x vs dc {dc_advantage:.0}x"
        );
        assert!(edge_advantage > 100.0);
    }

    #[test]
    fn nvm_backed_tpu_answers_the_open_question() {
        // Sec. III open question (2): an NVM-backed TPU is a *better
        // baseline* (beats GPU batch-1 latency and batched GPU energy)
        // but not a better *design point* than the FeFET CAM.
        let s = HdcScenario::default();
        let cands = s.candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let nvm_tpu = find("TPU + on-chip NVM");
        let gpu_b1 = find("GPU HDC (batch 1)");
        let gpu_b1000 = find("GPU HDC (batch 1000)");
        let cam = find("3b FeFET CAM");
        assert!(nvm_tpu.fom.latency_s < gpu_b1.fom.latency_s / 5.0);
        assert!(nvm_tpu.fom.energy_j < gpu_b1000.fom.energy_j);
        assert!(cam.fom.latency_s < nvm_tpu.fom.latency_s / 10.0);
        assert!(cam.fom.energy_j < nvm_tpu.fom.energy_j);
    }

    /// Packs scalar `candidates()` results into a batch — the reference
    /// the kernels must match bit for bit.
    fn scalar_reference<S: Scenario>(scenarios: &[S]) -> CandidateBatch {
        let mut out = CandidateBatch::new();
        for s in scenarios {
            match s.candidates() {
                Ok(c) => push_candidates(&mut out, &c),
                Err(e) => out.fail_point(PointStatus::Error, e.to_string()),
            }
        }
        out
    }

    fn batch_of<S: Scenario>(scenarios: &[S]) -> CandidateBatch {
        let mut out = CandidateBatch::new();
        S::candidates_batch(scenarios, &mut out);
        out
    }

    fn assert_bit_identical(a: &CandidateBatch, b: &CandidateBatch) {
        assert_eq!(a.points(), b.points());
        assert_eq!(a.lanes(), b.lanes());
        assert_eq!(a.checksum(), b.checksum());
        for p in 0..a.points() {
            assert_eq!(a.point_status(p), b.point_status(p), "point {p}");
            assert_eq!(a.point_message(p), b.point_message(p), "point {p}");
            assert_eq!(a.lane_range(p), b.lane_range(p), "point {p}");
        }
        for i in 0..a.lanes() {
            assert_eq!(a.lane_name(i), b.lane_name(i), "lane {i}");
            for (col_a, col_b) in [
                (a.latency_s(), b.latency_s()),
                (a.energy_j(), b.energy_j()),
                (a.area_mm2(), b.area_mm2()),
                (a.accuracy(), b.accuracy()),
            ] {
                assert_eq!(col_a[i].to_bits(), col_b[i].to_bits(), "lane {i}");
            }
        }
    }

    #[test]
    fn hdc_batch_kernel_is_bit_identical_to_scalar() {
        // Uniform tech (columnar encode columns) over a dim/hv grid.
        let grid: Vec<HdcScenario> = (0..7)
            .map(|i| HdcScenario {
                dim_in: 617 + 100 * i,
                hv_dim_3b: 2048 + 512 * i,
                ..HdcScenario::default()
            })
            .collect();
        assert_bit_identical(&scalar_reference(&grid), &batch_of(&grid));
    }

    #[test]
    fn hdc_batch_kernel_handles_mixed_techs_and_errors() {
        // Mixed tech nodes force the per-point encode arm; the NaN point
        // must fail alone with the scalar error string.
        let mut grid = vec![
            HdcScenario::default(),
            HdcScenario {
                tech: TechNode::n22(),
                ..HdcScenario::default()
            },
            HdcScenario {
                acc_sw: f64::NAN,
                ..HdcScenario::default()
            },
            HdcScenario {
                dim_in: 1200,
                ..HdcScenario::default()
            },
        ];
        let reference = scalar_reference(&grid);
        let batch = batch_of(&grid);
        assert_eq!(batch.point_status(2), PointStatus::Error);
        assert_bit_identical(&reference, &batch);
        // Uniform-tech grid containing an error point: the hoisted
        // encode columns are computed for it, but the point still fails
        // identically.
        grid.remove(1);
        assert_bit_identical(&scalar_reference(&grid), &batch_of(&grid));
    }

    #[test]
    fn mann_batch_kernel_is_bit_identical_to_scalar() {
        let grid: Vec<MannScenario> = (0..6)
            .map(|i| MannScenario {
                entries: 125 + 40 * i,
                hash_bits: 256 + 32 * i,
                ..MannScenario::default()
            })
            .chain(std::iter::once(MannScenario {
                acc_rram: 1.5,
                ..MannScenario::default()
            }))
            .collect();
        let reference = scalar_reference(&grid);
        let batch = batch_of(&grid);
        assert_eq!(batch.point_status(6), PointStatus::Error);
        assert_bit_identical(&reference, &batch);
    }

    #[test]
    fn provided_candidates_batch_covers_external_impls() {
        // Edge/TpuNvm use the provided per-point default and must agree
        // with the scalar reference too.
        let grid: Vec<EdgeScenario> = (0..3)
            .map(|i| {
                EdgeScenario::new(HdcScenario {
                    dim_in: 617 + i,
                    ..HdcScenario::default()
                })
            })
            .collect();
        assert_bit_identical(&scalar_reference(&grid), &batch_of(&grid));
    }

    #[test]
    fn sweep_scenarios_modes_agree_and_contain_failures() {
        let grid: Vec<HdcScenario> = (0..10)
            .map(|i| HdcScenario {
                dim_in: 600 + 37 * i,
                ..HdcScenario::default()
            })
            .collect();
        let scalar = sweep_scenarios(&grid, &SweepOptions::builder().threads(2).build());
        let columnar = sweep_scenarios(
            &grid,
            &SweepOptions::builder()
                .threads(2)
                .chunk(3)
                .columnar(Columnar::Exact)
                .build(),
        );
        assert_bit_identical(&scalar, &columnar);
        assert_eq!(columnar.points(), grid.len());
    }

    /// A scenario whose evaluator panics on selected points, to exercise
    /// chunk-level containment and the per-point fallback.
    struct PanickyScenario {
        id: usize,
        panic_on: bool,
    }

    impl Scenario for PanickyScenario {
        fn kind(&self) -> &'static str {
            "panicky"
        }

        fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
            assert!(!self.panic_on, "poisoned point {}", self.id);
            Ok(vec![Candidate::new(
                "ok",
                Fom {
                    latency_s: 1.0 + self.id as f64,
                    energy_j: 1.0,
                    area_mm2: 0.0,
                    accuracy: 0.5,
                },
            )])
        }
    }

    #[test]
    fn columnar_sweep_contains_poisoned_lanes() {
        let grid: Vec<PanickyScenario> = (0..9)
            .map(|id| PanickyScenario {
                id,
                panic_on: id == 4,
            })
            .collect();
        let out = sweep_scenarios(
            &grid,
            &SweepOptions::builder()
                .threads(2)
                .chunk(3)
                .columnar(Columnar::Exact)
                .build(),
        );
        assert_eq!(out.points(), 9);
        for p in 0..9 {
            if p == 4 {
                assert_eq!(out.point_status(p), PointStatus::Panicked);
                assert!(out.point_message(p).unwrap().contains("poisoned point 4"));
            } else {
                assert_eq!(out.point_status(p), PointStatus::Ok, "point {p}");
                assert_eq!(out.latency_s()[out.lane_range(p).start], 1.0 + p as f64);
            }
        }
    }

    #[test]
    fn columnar_deadline_skips_whole_chunks() {
        let grid: Vec<HdcScenario> = (0..4).map(|_| HdcScenario::default()).collect();
        let out = sweep_scenarios(
            &grid,
            &SweepOptions::builder()
                .threads(1)
                .columnar(Columnar::Exact)
                .deadline(std::time::Duration::ZERO)
                .build(),
        );
        assert_eq!(out.points(), 4);
        for p in 0..4 {
            assert_eq!(out.point_status(p), PointStatus::DeadlineExceeded);
            assert_eq!(out.point_message(p), Some(DEADLINE_MSG));
        }
    }

    #[test]
    fn sweep_scenarios_with_stats_measures_the_sweep() {
        let grid: Vec<MannScenario> = (0..4).map(|_| MannScenario::default()).collect();
        let (out, stats) = sweep_scenarios_with_stats(
            &grid,
            &SweepOptions::builder()
                .threads(1)
                .columnar(Columnar::Exact)
                .build(),
        );
        assert_eq!(out.points(), 4);
        assert_eq!(stats.points, 4);
        assert!(stats.slowest.is_empty());
    }

    #[test]
    fn scenario_kinds_are_stable() {
        assert_eq!(HdcScenario::default().kind(), "hdc");
        assert_eq!(MannScenario::default().kind(), "mann");
        assert_eq!(EdgeScenario::default().kind(), "edge");
        assert_eq!(TpuNvmScenario::default().kind(), "tpu_nvm");
    }

    #[test]
    fn scenarios_dispatch_through_trait_objects() {
        // The serving layer batches heterogeneous requests as one slice
        // of trait objects; every built-in scenario must evaluate
        // through that indirection.
        let batch: Vec<Box<dyn Scenario>> = vec![
            Box::new(HdcScenario::default()),
            Box::new(MannScenario::default()),
            Box::new(EdgeScenario::default()),
            Box::new(TpuNvmScenario::default()),
        ];
        for s in &batch {
            let cands = s
                .candidates()
                .unwrap_or_else(|e| panic!("{}: {e}", s.kind()));
            assert!(!cands.is_empty(), "{}", s.kind());
            for c in &cands {
                assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
            }
        }
    }

    #[test]
    fn nan_accuracy_is_a_typed_error_not_a_panic() {
        let s = HdcScenario {
            acc_sw: f64::NAN,
            ..HdcScenario::default()
        };
        match s.candidates() {
            Err(XldaError::InvalidFom { name, fom }) => {
                assert!(name.contains("GPU HDC"), "{name}");
                assert!(fom.accuracy.is_nan());
            }
            other => panic!("expected InvalidFom, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_accuracy_is_rejected() {
        let s = MannScenario {
            acc_rram: 1.5,
            ..MannScenario::default()
        };
        assert!(matches!(s.candidates(), Err(XldaError::InvalidFom { .. })));
    }

    #[test]
    fn mann_rram_pipeline_beats_gpu_latency() {
        let cands = MannScenario::default().candidates().unwrap();
        assert_eq!(cands.len(), 2);
        let gpu = &cands[0].fom;
        let rram = &cands[1].fom;
        assert!(rram.latency_s < gpu.latency_s / 10.0);
        assert!(rram.energy_j < gpu.energy_j);
        assert!(rram.accuracy >= gpu.accuracy - 0.02);
    }
}
