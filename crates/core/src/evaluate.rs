//! Cross-layer candidate evaluators behind the unified [`Scenario`] API.
//!
//! Every evaluable workload is a type implementing [`Scenario`]: one
//! fallible [`Scenario::candidates`] call assembles end-to-end FOMs for
//! its concrete design points by composing the substrate crates —
//! baseline platform models for software mappings, the crossbar macro
//! model for in-memory encoding, and the Eva-CAM array model for
//! associative search. The built-in scenarios generate the candidate
//! sets behind the paper's platform comparisons ([`HdcScenario`] for
//! Fig. 3H, [`MannScenario`] for the latency side of Fig. 4E) plus the
//! two Sec. III open-question studies ([`EdgeScenario`],
//! [`TpuNvmScenario`]).
//!
//! Because dispatch is through one trait, every consumer — the sweep
//! engine, the triage loop, `xlda-serve`, and `xlda-bench` — picks up a
//! new workload as soon as it implements `Scenario`. The pre-trait free
//! functions (`hdc_candidates`, `try_mann_candidates`, …) remain as
//! deprecated delegating shims.

use crate::error::{validate_fom, XldaError};
use crate::fom::{Candidate, Fom};
use crate::mc::McDistribution;
use crate::store::{Digest, DigestWriter};
use xlda_baseline::{HybridPipeline, Kernel, Platform};
use xlda_circuit::tech::TechNode;
use xlda_crossbar::macro_model::CrossbarMacro;
use xlda_crossbar::CrossbarConfig;
use xlda_evacam::{CamArray, CamCellDesign, CamConfig, DataKind, MatchKind};
use xlda_nvram::{OptTarget, RamArray, RamCell, RamConfig};

/// One evaluable workload mapping: a bundle of scenario parameters that
/// can assemble its full candidate set.
///
/// This is the single dispatch surface shared by the sweep engine, the
/// triage loop, the `xlda-serve` daemon, and `xlda-bench`: adding a
/// workload means implementing this trait once, and every consumer picks
/// it up without a new per-workload entry point.
///
/// Implementations must be pure (same parameters, same candidates) and
/// thread-safe — sweeps and the serving layer evaluate scenarios from
/// many workers concurrently.
///
/// # Examples
///
/// ```
/// use xlda_core::evaluate::{HdcScenario, Scenario};
///
/// let s = HdcScenario::default();
/// let candidates = s.candidates().expect("default scenario models");
/// assert_eq!(s.kind(), "hdc");
/// assert!(!candidates.is_empty());
/// ```
pub trait Scenario: Send + Sync {
    /// Stable workload-kind tag (`"hdc"`, `"mann"`, `"edge"`,
    /// `"tpu_nvm"`, …) used for request routing, batching labels, and
    /// reports.
    fn kind(&self) -> &'static str;

    /// Evaluates the scenario into its candidate set.
    ///
    /// # Errors
    ///
    /// The first layer rejection ([`XldaError::Cam`], [`XldaError::Ram`],
    /// [`XldaError::Crossbar`], [`XldaError::Circuit`]) or FOM
    /// validation failure ([`XldaError::InvalidFom`],
    /// [`XldaError::NonFinite`]).
    fn candidates(&self) -> Result<Vec<Candidate>, XldaError>;

    /// Full evaluation: the candidate set plus any Monte-Carlo
    /// distribution summaries.
    ///
    /// Deterministic scenarios keep this default (candidates only).
    /// Monte-Carlo scenarios override it to run their trial population
    /// once and derive both the distributions and the quantile-based
    /// candidates from the same draws — consumers that want everything
    /// (like `xlda-serve`) call this and never pay for the trials twice.
    ///
    /// # Errors
    ///
    /// Same contract as [`Scenario::candidates`].
    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        Ok(Evaluation {
            candidates: self.candidates()?,
            distributions: Vec::new(),
        })
    }

    /// Content address of this scenario's complete parameter set for
    /// the persistent result store ([`crate::store`]).
    ///
    /// Must cover *everything* that can change the evaluation — kind
    /// tag, every numeric parameter (quantized), tech/config
    /// fingerprints — and *nothing* that cannot (MC `batch`/`threads`
    /// are schedule-only by the trial-stream contract and are
    /// excluded). Two scenarios with equal keys must evaluate
    /// bit-identically.
    ///
    /// The default returns `None`, which makes the store transparently
    /// bypass itself for scenario types that have not opted in.
    fn store_key(&self) -> Option<Digest> {
        None
    }
}

/// Boxed scenarios (the serving layer's batching currency) delegate the
/// whole trait, so `ResultStore::sweep` and `successive_halving` accept
/// `&[Box<dyn Scenario>]` directly.
impl<T: Scenario + ?Sized> Scenario for Box<T> {
    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        (**self).candidates()
    }

    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        (**self).evaluate()
    }

    fn store_key(&self) -> Option<Digest> {
        (**self).store_key()
    }
}

/// Folds the [`HdcScenario`] parameter block into an open digest —
/// shared by the HDC key and the wrapper scenarios (edge, TPU+NVM)
/// whose results are functions of the same block.
fn fold_hdc(w: &mut DigestWriter, s: &HdcScenario) {
    w.usize(s.dim_in)
        .usize(s.classes)
        .usize(s.hv_dim_sw)
        .usize(s.hv_dim_3b)
        .usize(s.hv_dim_2b)
        .usize(s.hv_dim_1b)
        .f64(s.acc_sw)
        .f64(s.acc_3b)
        .f64(s.acc_2b)
        .f64(s.acc_1b)
        .f64(s.acc_mlp)
        .word(s.tech.memo_key());
}

/// Everything one [`Scenario`] evaluation produces: the candidate set
/// every consumer understands, plus distribution summaries for
/// Monte-Carlo scenario kinds (empty for deterministic ones).
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Assembled, validated candidates.
    pub candidates: Vec<Candidate>,
    /// Monte-Carlo outcome distributions, when the scenario has any.
    pub distributions: Vec<McDistribution>,
}

/// Scenario parameters for the HDC platform comparison (Fig. 3H).
///
/// HV dimensions are the *iso-accuracy sized* lengths: lower-precision
/// cells need longer hypervectors to reach the same accuracy (and 1-bit
/// cannot reach it at all), per Sec. III. The accuracy numbers are
/// produced by the `xlda-hdc` simulation and passed in.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcScenario {
    /// Input feature dimensionality.
    pub dim_in: usize,
    /// Number of classes.
    pub classes: usize,
    /// HV length for the software / hybrid / MLP baselines.
    pub hv_dim_sw: usize,
    /// HV length giving iso-accuracy with 3-bit cells.
    pub hv_dim_3b: usize,
    /// HV length giving (near-)iso-accuracy with 2-bit cells.
    pub hv_dim_2b: usize,
    /// HV length used for the 1-bit SRAM CAM design point.
    pub hv_dim_1b: usize,
    /// Simulated accuracies for each design point.
    pub acc_sw: f64,
    /// 3-bit CAM accuracy.
    pub acc_3b: f64,
    /// 2-bit CAM accuracy.
    pub acc_2b: f64,
    /// 1-bit CAM accuracy.
    pub acc_1b: f64,
    /// MLP baseline accuracy.
    pub acc_mlp: f64,
    /// Process node for the dedicated hardware.
    pub tech: TechNode,
}

impl Default for HdcScenario {
    /// ISOLET-like shape with representative simulated accuracies.
    fn default() -> Self {
        Self {
            dim_in: 617,
            classes: 26,
            hv_dim_sw: 4096,
            hv_dim_3b: 2048,
            hv_dim_2b: 4096,
            hv_dim_1b: 4096,
            acc_sw: 0.93,
            acc_3b: 0.93,
            acc_2b: 0.92,
            acc_1b: 0.87,
            acc_mlp: 0.93,
            tech: TechNode::n40(),
        }
    }
}

/// Latency/energy of HDC inference on a software platform.
fn hdc_on_platform(s: &HdcScenario, platform: &Platform, batch: usize, hv: usize) -> (f64, f64) {
    let encode = Kernel::mvm(hv, s.dim_in);
    let search = Kernel::search(s.classes, hv, 4);
    let t = platform.time_per_item(&encode, batch) + platform.time_per_item(&search, batch);
    let e = (platform.energy(&encode, batch) + platform.energy(&search, batch)) / batch as f64;
    (t, e)
}

/// Latency/energy/area of HDC inference on a crossbar encoder plus a CAM
/// associative memory.
///
/// # Errors
///
/// Propagates the crossbar or CAM model's rejection of the design point
/// (e.g. an unachievable sense margin for long best-match words).
fn hdc_on_cam(
    s: &HdcScenario,
    design: CamCellDesign,
    data: DataKind,
    hv: usize,
) -> Result<(f64, f64, f64), XldaError> {
    // Encoding: random-projection MVM on analog crossbar tiles.
    let xbar_cfg = CrossbarConfig {
        rows: 256,
        cols: 256,
        ..CrossbarConfig::default()
    };
    let (t_encode, e_encode, a_encode) = {
        let _span = xlda_obs::span!("crossbar");
        let xmacro = CrossbarMacro::try_new(&xbar_cfg, &s.tech, 8)?;
        let tiles_rows = s.dim_in.div_ceil(256);
        let tiles_cols = hv.div_ceil(256);
        let mvm = xmacro.mvm_cost();
        // Column tiles run in parallel macros; row tiles accumulate
        // serially.
        (
            tiles_rows as f64 * mvm.latency_s,
            (tiles_rows * tiles_cols) as f64 * mvm.energy_j,
            (tiles_rows * tiles_cols) as f64 * xmacro.area_m2() * 1e6, // mm²
        )
    };

    // Search: one CAM holding `classes` words of `hv` cells.
    let bits = data.bits_per_cell() as usize;
    let rep = {
        let _span = xlda_obs::span!("evacam");
        let cam = CamArray::new(CamConfig {
            words: s.classes,
            bits_per_word: hv * bits,
            design,
            data,
            match_kind: MatchKind::Best { max_distance: 8 },
            row_banks: 1,
            tech: s.tech.clone(),
        })?;
        cam.report()
    };
    let out = (
        t_encode + rep.search_latency_s,
        e_encode + rep.search_energy_j,
        a_encode + rep.area_um2 * 1e-6,
    );
    if !(out.0.is_finite() && out.1.is_finite() && out.2.is_finite()) {
        return Err(XldaError::NonFinite {
            stage: "hdc_on_cam",
            quantity: "latency/energy/area composition",
        });
    }
    Ok(out)
}

impl Scenario for HdcScenario {
    fn kind(&self) -> &'static str {
        "hdc"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        fold_hdc(&mut w, self);
        Some(w.finish())
    }

    /// Builds the full Fig. 3H candidate set: layer models reject
    /// infeasible design points with a typed [`XldaError`] instead of
    /// panicking, and every assembled FOM bundle is validated for
    /// finiteness before it enters the candidate set.
    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        let s = self;
        let gpu = Platform::gpu();
        let mut out = Vec::new();

        let (t, e) = hdc_on_platform(s, &gpu, 1, s.hv_dim_sw);
        let name = "GPU HDC (batch 1)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?,
        ));

        let (t, e) = hdc_on_platform(s, &gpu, 1000, s.hv_dim_sw);
        let name = "GPU HDC (batch 1000)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?,
        ));

        // TPU encodes (dense MVM), GPU searches.
        let hybrid = HybridPipeline::tpu_gpu();
        let encode = Kernel::mvm(s.hv_dim_sw, s.dim_in);
        let search = Kernel::search(s.classes, s.hv_dim_sw, 4);
        let batch = 1000;
        let name = "TPU-GPU hybrid (batch 1000)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: hybrid.time(&encode, &search, batch) / batch as f64,
                    energy_j: hybrid.energy(&encode, &search, batch) / batch as f64,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?,
        ));

        for (name, design, data, hv, acc) in [
            (
                "3b FeFET CAM",
                CamCellDesign::Fefet2T,
                DataKind::MultiBit(3),
                s.hv_dim_3b,
                s.acc_3b,
            ),
            (
                "2b FeFET CAM",
                CamCellDesign::Fefet2T,
                DataKind::MultiBit(2),
                s.hv_dim_2b,
                s.acc_2b,
            ),
            (
                "1b SRAM CAM",
                CamCellDesign::Sram16T,
                DataKind::Binary,
                s.hv_dim_1b,
                s.acc_1b,
            ),
        ] {
            let (t, e, a) = hdc_on_cam(s, design, data, hv)?;
            out.push(Candidate::new(
                name,
                validate_fom(
                    name,
                    Fom {
                        latency_s: t,
                        energy_j: e,
                        area_mm2: a,
                        accuracy: acc,
                    },
                )?,
            ));
        }

        out.push(tpu_nvm_fom(s, 1)?);

        // MLP baseline: dim_in -> 512 -> classes on a GPU, batched.
        let l1 = Kernel::mvm(512, s.dim_in);
        let l2 = Kernel::mvm(s.classes, 512);
        let t = gpu.time_per_item(&l1, 1000) + gpu.time_per_item(&l2, 1000);
        let e = (gpu.energy(&l1, 1000) + gpu.energy(&l2, 1000)) / 1000.0;
        let name = "GPU MLP (batch 1000)";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_mlp,
                },
            )?,
        ));

        Ok(out)
    }
}

/// The paper's open question (Sec. III): "What if an existing
/// architecture (e.g., a TPU) is backed by a dense or distributed
/// non-volatile memory? Is this a better way to leverage an emerging
/// technology?" — answered by evaluation.
///
/// Models a TPU-class systolic core whose weights (projection matrix and
/// class HVs) reside in on-chip FeFET NVM instead of streaming from HBM:
/// weight traffic moves at the aggregated on-chip array bandwidth and at
/// NVM read energy, and the host-dispatch overhead shrinks (no off-chip
/// weight staging). The framework's verdict (see the
/// `nvm_backed_tpu_answers_the_open_question` test): it beats the GPU
/// baselines — especially at batch 1 and in energy — but the technology-
/// *enabled* CAM design point still wins, i.e. using the new device as
/// plain dense memory captures only part of its value.
#[derive(Debug, Clone, PartialEq)]
pub struct TpuNvmScenario {
    /// The HDC workload whose weights the on-chip NVM holds.
    pub base: HdcScenario,
    /// Inference batch size the weight streaming amortizes over.
    pub batch: usize,
}

impl TpuNvmScenario {
    /// Wraps an HDC scenario at the given batch size.
    pub fn new(base: HdcScenario, batch: usize) -> Self {
        Self { base, batch }
    }
}

impl Default for TpuNvmScenario {
    fn default() -> Self {
        Self::new(HdcScenario::default(), 1)
    }
}

impl Scenario for TpuNvmScenario {
    fn kind(&self) -> &'static str {
        "tpu_nvm"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        fold_hdc(&mut w, &self.base);
        w.usize(self.batch);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        Ok(vec![tpu_nvm_fom(&self.base, self.batch)?])
    }
}

/// Assembles the NVM-backed-TPU candidate shared by [`HdcScenario`]
/// (batch 1, inside the Fig. 3H set) and [`TpuNvmScenario`].
///
/// # Errors
///
/// [`XldaError::Ram`] if the NVM weight store cannot be organized
/// (degenerate capacity), [`XldaError::InvalidFom`] if the assembled
/// FOMs are non-finite.
fn tpu_nvm_fom(s: &HdcScenario, batch: usize) -> Result<Candidate, XldaError> {
    let tpu = Platform::tpu();
    // Weight footprint: bipolar projection (1 bit/element) + 4-bit class
    // HVs, held in on-chip FeFET NVM.
    let weight_bytes = (s.dim_in * s.hv_dim_sw) as u64 / 8 + (s.classes * s.hv_dim_sw) as u64 / 2;
    let rep = {
        let _span = xlda_obs::span!("nvram");
        let ram = RamArray::auto_organize(
            &RamConfig {
                capacity_bits: weight_bytes * 8,
                word_bits: 256,
                cell: RamCell::Fefet1T,
                tech: s.tech.clone(),
            },
            OptTarget::ReadLatency,
        )?;
        ram.report()
    };
    // 16 mats stream in parallel: aggregated on-chip weight bandwidth.
    let nvm_bw = 16.0 * (256.0 / 8.0) / rep.read_latency_s;
    let flops = 2.0 * (s.dim_in * s.hv_dim_sw + s.classes * s.hv_dim_sw) as f64;
    let t_compute = batch as f64 * flops / (tpu.peak_flops * tpu.efficiency);
    let t_weights = weight_bytes as f64 / nvm_bw; // streamed once per batch
                                                  // On-chip dispatch only: no host weight staging.
    let launch = 1e-6;
    let latency = (launch + t_compute.max(t_weights)) / batch as f64;
    let e_compute = tpu.active_power * (launch + t_compute.max(t_weights));
    let e_weights = weight_bytes as f64 / 32.0 * rep.read_energy_j;
    let name = format!("TPU + on-chip NVM (batch {batch})");
    let fom = validate_fom(
        &name,
        Fom {
            latency_s: latency,
            energy_j: (e_compute + e_weights) / batch as f64,
            area_mm2: rep.area_mm2,
            accuracy: s.acc_sw,
        },
    )?;
    Ok(Candidate::new(name, fom))
}

/// The paper's open question (Sec. III, (1)): "What is the best baseline
/// architecture to compare to? (i.e., is an HDC model more likely to be
/// deployed 'on the edge', making small batches more likely and a GPU
/// less likely to be employed?)" — answered by building the edge
/// candidate set: an edge-class GPU and a CPU at batch 1 against the
/// same CAM design point.
///
/// The framework's verdict (see `edge_deployment_answers_open_question`):
/// at the edge the software baselines get *worse* (no batching to
/// amortize launch overhead, weaker silicon), so the CAM's advantage
/// widens — the fair baseline question sharpens, rather than weakens,
/// the technology case.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeScenario {
    /// The HDC workload deployed at the edge (batch 1).
    pub base: HdcScenario,
}

impl EdgeScenario {
    /// Wraps an HDC scenario for edge deployment.
    pub fn new(base: HdcScenario) -> Self {
        Self { base }
    }
}

impl Scenario for EdgeScenario {
    fn kind(&self) -> &'static str {
        "edge"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        fold_hdc(&mut w, &self.base);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        let s = &self.base;
        let mut out = Vec::new();
        for platform in [Platform::edge_gpu(), Platform::cpu()] {
            let (t, e) = hdc_on_platform(s, &platform, 1, s.hv_dim_sw);
            let name = format!("{} HDC (batch 1)", platform.name);
            let fom = validate_fom(
                &name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: 0.0,
                    accuracy: s.acc_sw,
                },
            )?;
            out.push(Candidate::new(name, fom));
        }
        let (t, e, a) = hdc_on_cam(
            s,
            CamCellDesign::Fefet2T,
            DataKind::MultiBit(3),
            s.hv_dim_3b,
        )?;
        let name = "3b FeFET CAM";
        out.push(Candidate::new(
            name,
            validate_fom(
                name,
                Fom {
                    latency_s: t,
                    energy_j: e,
                    area_mm2: a,
                    accuracy: s.acc_3b,
                },
            )?,
        ));
        Ok(out)
    }
}

/// Scenario for the MANN latency comparison (Fig. 4E right axis).
#[derive(Debug, Clone, PartialEq)]
pub struct MannScenario {
    /// CNN weight count.
    pub weights: usize,
    /// Embedding dimensionality.
    pub emb_dim: usize,
    /// Hash signature bits.
    pub hash_bits: usize,
    /// Stored memories (support entries).
    pub entries: usize,
    /// Accuracy of the software-cosine skyline.
    pub acc_software: f64,
    /// Accuracy of the RRAM hashing pipeline.
    pub acc_rram: f64,
    /// Process node.
    pub tech: TechNode,
}

impl Default for MannScenario {
    fn default() -> Self {
        Self {
            weights: 65_000,
            emb_dim: 64,
            hash_bits: 256,
            entries: 125,
            acc_software: 0.95,
            acc_rram: 0.94,
            tech: TechNode::n40(),
        }
    }
}

impl Scenario for MannScenario {
    fn kind(&self) -> &'static str {
        "mann"
    }

    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        w.usize(self.weights)
            .usize(self.emb_dim)
            .usize(self.hash_bits)
            .usize(self.entries)
            .f64(self.acc_software)
            .f64(self.acc_rram)
            .word(self.tech.memo_key());
        Some(w.finish())
    }

    /// Builds the MANN platform candidates: GPU software stack vs. the
    /// all-RRAM in-memory pipeline.
    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        let s = self;
        let gpu = Platform::gpu();
        // GPU path: CNN + exact cosine search over raw embeddings.
        let cnn = Kernel {
            flops_per_item: (s.weights as u64) * 100,
            bytes_per_item: 28 * 28 * 4,
            shared_bytes: (s.weights * 4) as u64,
        };
        let search = Kernel::search(s.entries, s.emb_dim, 4);
        let t_gpu = gpu.time_per_item(&cnn, 1) + gpu.time_per_item(&search, 1);
        let e_gpu = gpu.energy(&cnn, 1) + gpu.energy(&search, 1);

        // RRAM path: CNN on crossbars, hashing on a stochastic crossbar, AM
        // search in an RRAM TCAM.
        let xbar_cfg = CrossbarConfig {
            rows: 64,
            cols: 64,
            ..CrossbarConfig::default()
        };
        let (xmacro, mvm) = {
            let _span = xlda_obs::span!("crossbar");
            let xmacro = CrossbarMacro::try_new(&xbar_cfg, &s.tech, 8)?;
            let mvm = xmacro.mvm_cost();
            (xmacro, mvm)
        };
        // Paper: >65k weights across 36 64x64 crossbars; layers pipeline but
        // inference visits each layer once.
        let cnn_tiles = s.weights.div_ceil(64 * 64).max(1);
        let layer_depth = 4.0;
        let t_cnn = layer_depth * mvm.latency_s;
        let e_cnn = cnn_tiles as f64 * mvm.energy_j;
        let hash_tiles = (s.emb_dim.div_ceil(64) * (2 * s.hash_bits).div_ceil(64)).max(1);
        let t_hash = mvm.latency_s;
        let e_hash = hash_tiles as f64 * mvm.energy_j;
        let rep = {
            let _span = xlda_obs::span!("evacam");
            let cam = CamArray::new(CamConfig {
                words: s.entries,
                bits_per_word: s.hash_bits,
                design: CamCellDesign::Rram2T2R,
                data: DataKind::Ternary,
                match_kind: MatchKind::Best { max_distance: 4 },
                row_banks: 1,
                tech: s.tech.clone(),
            })?;
            cam.report()
        };
        let area = (cnn_tiles + hash_tiles) as f64 * xmacro.area_m2() * 1e6 + rep.area_um2 * 1e-6;

        Ok(vec![
            Candidate::new(
                "GPU MANN (batch 1)",
                validate_fom(
                    "GPU MANN (batch 1)",
                    Fom {
                        latency_s: t_gpu,
                        energy_j: e_gpu,
                        area_mm2: 0.0,
                        accuracy: s.acc_software,
                    },
                )?,
            ),
            Candidate::new(
                "RRAM in-memory MANN",
                validate_fom(
                    "RRAM in-memory MANN",
                    Fom {
                        latency_s: t_cnn + t_hash + rep.search_latency_s,
                        energy_j: e_cnn + e_hash + rep.search_energy_j,
                        area_mm2: area,
                        accuracy: s.acc_rram,
                    },
                )?,
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deprecated pre-trait entry points.
//
// These free functions predate the `Scenario` trait; they remain as thin
// delegating shims so downstream code migrates on its own schedule. New
// code (and everything in-repo) goes through `Scenario::candidates`.
// ---------------------------------------------------------------------------

/// Builds the full Fig. 3H candidate set.
///
/// # Panics
///
/// Panics if any shipped design point fails to model — impossible for
/// scenarios near the default; arbitrary scenario grids should use the
/// fallible [`Scenario::candidates`] and collect per-point errors.
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on HdcScenario")]
pub fn hdc_candidates(s: &HdcScenario) -> Vec<Candidate> {
    s.candidates()
        .expect("shipped HDC design points must model")
}

/// Fallible Fig. 3H candidate set.
///
/// # Errors
///
/// As [`Scenario::candidates`] on [`HdcScenario`].
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on HdcScenario")]
pub fn try_hdc_candidates(s: &HdcScenario) -> Result<Vec<Candidate>, XldaError> {
    s.candidates()
}

/// Builds the edge-deployment candidate set.
///
/// # Panics
///
/// Panics if any shipped design point fails to model.
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on EdgeScenario")]
pub fn edge_candidates(s: &HdcScenario) -> Vec<Candidate> {
    EdgeScenario::new(s.clone())
        .candidates()
        .expect("shipped edge design points must model")
}

/// Fallible edge-deployment candidate set.
///
/// # Errors
///
/// As [`Scenario::candidates`] on [`EdgeScenario`].
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on EdgeScenario")]
pub fn try_edge_candidates(s: &HdcScenario) -> Result<Vec<Candidate>, XldaError> {
    EdgeScenario::new(s.clone()).candidates()
}

/// Builds the NVM-backed-TPU candidate.
///
/// # Panics
///
/// Panics if the NVM weight store cannot be organized.
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on TpuNvmScenario")]
pub fn tpu_nvm_candidate(s: &HdcScenario, batch: usize) -> Candidate {
    tpu_nvm_fom(s, batch).expect("NVM weight store organizes")
}

/// Fallible NVM-backed-TPU candidate.
///
/// # Errors
///
/// As [`Scenario::candidates`] on [`TpuNvmScenario`].
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on TpuNvmScenario")]
pub fn try_tpu_nvm_candidate(s: &HdcScenario, batch: usize) -> Result<Candidate, XldaError> {
    tpu_nvm_fom(s, batch)
}

/// Builds the MANN platform candidates.
///
/// # Panics
///
/// Panics if a design point fails to model.
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on MannScenario")]
pub fn mann_candidates(s: &MannScenario) -> Vec<Candidate> {
    s.candidates().expect("MANN TCAM design point must model")
}

/// Fallible MANN platform candidates.
///
/// # Errors
///
/// As [`Scenario::candidates`] on [`MannScenario`].
#[deprecated(since = "0.2.0", note = "use Scenario::candidates on MannScenario")]
pub fn try_mann_candidates(s: &MannScenario) -> Result<Vec<Candidate>, XldaError> {
    s.candidates()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdc_candidate_set_is_complete_and_valid() {
        let cands = HdcScenario::default().candidates().unwrap();
        assert_eq!(cands.len(), 8);
        for c in &cands {
            assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
            assert!(c.fom.latency_s > 0.0);
        }
    }

    #[test]
    fn fig3h_shape_batching_helps_gpu() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| {
            cands
                .iter()
                .find(|c| c.name.contains(n))
                .unwrap_or_else(|| panic!("{n} missing"))
                .fom
        };
        let b1 = find("batch 1)");
        let b1000 = find("batch 1000)");
        assert!(b1000.latency_s < b1.latency_s / 10.0);
    }

    #[test]
    fn fig3h_shape_3b_cam_beats_gpu_latency() {
        // The headline Fig. 3H result: the 3-bit FeFET CAM design point
        // beats even batched GPU inference at iso-accuracy.
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let cam3 = find("3b FeFET");
        let gpu_b1 = find("GPU HDC (batch 1)");
        let gpu_b1000 = find("GPU HDC (batch 1000)");
        assert!(cam3.fom.latency_s < gpu_b1.fom.latency_s / 100.0);
        assert!(cam3.fom.latency_s < gpu_b1000.fom.latency_s);
        assert!(cam3.fom.accuracy >= gpu_b1.fom.accuracy - 1e-9);
    }

    #[test]
    fn fig3h_shape_2b_needs_longer_hvs_and_is_slower_than_3b() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let cam3 = find("3b FeFET");
        let cam2 = find("2b FeFET");
        assert!(cam2.fom.latency_s > cam3.fom.latency_s);
        assert!(cam2.fom.energy_j > cam3.fom.energy_j);
    }

    #[test]
    fn fig3h_shape_1b_sram_fast_but_inaccurate() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let sram = find("1b SRAM");
        let cam3 = find("3b FeFET");
        assert!(sram.fom.accuracy < cam3.fom.accuracy);
        assert!(sram.fom.area_mm2 > cam3.fom.area_mm2); // 16T cells
    }

    #[test]
    fn fig3h_shape_hybrid_nominal_improvement() {
        let cands = HdcScenario::default().candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let gpu = find("GPU HDC (batch 1000)");
        let hybrid = find("TPU-GPU");
        assert!(hybrid.fom.latency_s < gpu.fom.latency_s);
        assert!(hybrid.fom.latency_s > gpu.fom.latency_s / 10.0); // nominal, not drastic
    }

    #[test]
    fn edge_deployment_answers_open_question() {
        // Sec. III open question (1): at the edge (batch 1, weaker
        // silicon) the software baselines slow down, so the CAM's
        // advantage is even larger than against the datacenter GPU.
        let s = HdcScenario::default();
        let edge = EdgeScenario::new(s.clone()).candidates().unwrap();
        assert_eq!(edge.len(), 3);
        let cam = edge.iter().find(|c| c.name.contains("CAM")).expect("cam");
        let edge_gpu = edge
            .iter()
            .find(|c| c.name.contains("edge-GPU"))
            .expect("edge gpu");
        let datacenter = s.candidates().unwrap();
        let dc_gpu_b1000 = datacenter
            .iter()
            .find(|c| c.name.contains("batch 1000)") && c.name.contains("GPU HDC"))
            .expect("dc gpu");
        let edge_advantage = edge_gpu.fom.latency_s / cam.fom.latency_s;
        let dc_advantage = dc_gpu_b1000.fom.latency_s / cam.fom.latency_s;
        assert!(
            edge_advantage > dc_advantage,
            "edge {edge_advantage:.0}x vs dc {dc_advantage:.0}x"
        );
        assert!(edge_advantage > 100.0);
    }

    #[test]
    fn nvm_backed_tpu_answers_the_open_question() {
        // Sec. III open question (2): an NVM-backed TPU is a *better
        // baseline* (beats GPU batch-1 latency and batched GPU energy)
        // but not a better *design point* than the FeFET CAM.
        let s = HdcScenario::default();
        let cands = s.candidates().unwrap();
        let find = |n: &str| cands.iter().find(|c| c.name.contains(n)).expect("exists");
        let nvm_tpu = find("TPU + on-chip NVM");
        let gpu_b1 = find("GPU HDC (batch 1)");
        let gpu_b1000 = find("GPU HDC (batch 1000)");
        let cam = find("3b FeFET CAM");
        assert!(nvm_tpu.fom.latency_s < gpu_b1.fom.latency_s / 5.0);
        assert!(nvm_tpu.fom.energy_j < gpu_b1000.fom.energy_j);
        assert!(cam.fom.latency_s < nvm_tpu.fom.latency_s / 10.0);
        assert!(cam.fom.energy_j < nvm_tpu.fom.energy_j);
    }

    /// The deprecated free-function shims must stay bit-identical to the
    /// trait they delegate to — downstream code migrating one call site
    /// at a time may not observe any behavior change.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_scenario_trait() {
        let s = HdcScenario::default();
        assert_eq!(try_hdc_candidates(&s).unwrap(), s.candidates().unwrap());
        assert_eq!(hdc_candidates(&s), s.candidates().unwrap());
        assert_eq!(
            try_edge_candidates(&s).unwrap(),
            EdgeScenario::new(s.clone()).candidates().unwrap()
        );
        assert_eq!(
            edge_candidates(&s),
            EdgeScenario::new(s.clone()).candidates().unwrap()
        );
        let m = MannScenario::default();
        assert_eq!(try_mann_candidates(&m).unwrap(), m.candidates().unwrap());
        assert_eq!(mann_candidates(&m), m.candidates().unwrap());
        let t = TpuNvmScenario::new(s.clone(), 4);
        assert_eq!(
            vec![try_tpu_nvm_candidate(&s, 4).unwrap()],
            t.candidates().unwrap()
        );
        assert_eq!(vec![tpu_nvm_candidate(&s, 4)], t.candidates().unwrap());
    }

    #[test]
    fn scenario_kinds_are_stable() {
        assert_eq!(HdcScenario::default().kind(), "hdc");
        assert_eq!(MannScenario::default().kind(), "mann");
        assert_eq!(EdgeScenario::default().kind(), "edge");
        assert_eq!(TpuNvmScenario::default().kind(), "tpu_nvm");
    }

    #[test]
    fn scenarios_dispatch_through_trait_objects() {
        // The serving layer batches heterogeneous requests as one slice
        // of trait objects; every built-in scenario must evaluate
        // through that indirection.
        let batch: Vec<Box<dyn Scenario>> = vec![
            Box::new(HdcScenario::default()),
            Box::new(MannScenario::default()),
            Box::new(EdgeScenario::default()),
            Box::new(TpuNvmScenario::default()),
        ];
        for s in &batch {
            let cands = s
                .candidates()
                .unwrap_or_else(|e| panic!("{}: {e}", s.kind()));
            assert!(!cands.is_empty(), "{}", s.kind());
            for c in &cands {
                assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
            }
        }
    }

    #[test]
    fn nan_accuracy_is_a_typed_error_not_a_panic() {
        let s = HdcScenario {
            acc_sw: f64::NAN,
            ..HdcScenario::default()
        };
        match s.candidates() {
            Err(XldaError::InvalidFom { name, fom }) => {
                assert!(name.contains("GPU HDC"), "{name}");
                assert!(fom.accuracy.is_nan());
            }
            other => panic!("expected InvalidFom, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_accuracy_is_rejected() {
        let s = MannScenario {
            acc_rram: 1.5,
            ..MannScenario::default()
        };
        assert!(matches!(s.candidates(), Err(XldaError::InvalidFom { .. })));
    }

    #[test]
    fn mann_rram_pipeline_beats_gpu_latency() {
        let cands = MannScenario::default().candidates().unwrap();
        assert_eq!(cands.len(), 2);
        let gpu = &cands[0].fom;
        let rram = &cands[1].fom;
        assert!(rram.latency_s < gpu.latency_s / 10.0);
        assert!(rram.energy_j < gpu.energy_j);
        assert!(rram.accuracy >= gpu.accuracy - 0.02);
    }
}
