//! NaN-safe total orderings for ranking floats.
//!
//! `partial_cmp().expect(...)` turns a single NaN score into a panic in
//! the middle of a sweep; `f64::total_cmp` alone is total but sorts +NaN
//! *greatest*, which would put a corrupted score at the top of a
//! descending ranking. These comparators order finite values with
//! `total_cmp` and pin NaN explicitly to the end, so the worst a NaN can
//! do is rank last.

use std::cmp::Ordering;

/// Descending order (higher first) with NaN last.
///
/// # Examples
///
/// ```
/// use xlda_core::order::desc_nan_last;
///
/// let mut v = [1.0, f64::NAN, 3.0, 2.0];
/// v.sort_by(|a, b| desc_nan_last(*a, *b));
/// assert_eq!(&v[..3], &[3.0, 2.0, 1.0]);
/// assert!(v[3].is_nan());
/// ```
pub fn desc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => b.total_cmp(&a),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Ascending order (lower first) with NaN last.
pub fn asc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.total_cmp(&b),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_pins_nan_last() {
        let mut v = [f64::NAN, -1.0, f64::INFINITY, 0.0, f64::NAN];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], -1.0);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn ascending_pins_nan_last() {
        let mut v = [2.0, f64::NAN, -3.0];
        v.sort_by(|a, b| asc_nan_last(*a, *b));
        assert_eq!(&v[..2], &[-3.0, 2.0]);
        assert!(v[2].is_nan());
    }

    #[test]
    fn zero_signs_do_not_panic_and_stay_adjacent() {
        let mut v = [0.0, -0.0, 1.0];
        v.sort_by(|a, b| asc_nan_last(*a, *b));
        assert_eq!(v[2], 1.0);
    }

    #[test]
    fn comparators_are_consistent_orders() {
        // Antisymmetry spot check: sort must never panic on "comparison
        // violates its contract" for any input mix.
        let vals = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1.5];
        for &a in &vals {
            for &b in &vals {
                let ab = desc_nan_last(a, b);
                let ba = desc_nan_last(b, a);
                assert_eq!(ab.reverse(), ba);
            }
        }
    }
}
