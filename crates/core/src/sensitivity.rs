//! Bottom-up device-metric sensitivity analysis (Fig. 6 linkage).
//!
//! Top-down profiling says which architecture fits a workload; the
//! complementary bottom-up question is *which device-level improvement
//! buys the most at the application level*. This module perturbs the
//! device parameters of a CAM design point and reports the swing in the
//! array-level FOMs that bound application behaviour — giving the
//! materials/device collaborators a prioritized list of levers
//! (the third-to-fourth column linkage in Fig. 6).

use xlda_circuit::matchline::{Matchline, MatchlineConfig};
use xlda_circuit::senseamp::SenseAmp;
use xlda_circuit::tech::TechNode;

/// The device-level levers exposed to the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceLever {
    /// On-state conductance (drive strength).
    OnConductance,
    /// Off-state leakage (on/off ratio).
    OffConductance,
    /// Cell capacitance contribution.
    CellCapacitance,
}

impl DeviceLever {
    /// All levers.
    pub fn all() -> [DeviceLever; 3] {
        [
            DeviceLever::OnConductance,
            DeviceLever::OffConductance,
            DeviceLever::CellCapacitance,
        ]
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceLever::OnConductance => "g_on",
            DeviceLever::OffConductance => "g_off",
            DeviceLever::CellCapacitance => "c_cell",
        }
    }
}

/// Result of perturbing one lever by a factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Perturbed lever.
    pub lever: DeviceLever,
    /// Multiplicative factor applied.
    pub factor: f64,
    /// Relative change in search (discharge) time.
    pub latency_change: f64,
    /// Relative change in best sense margin at distance 4.
    pub margin_change: f64,
    /// Relative change in the mismatch limit (array-size headroom).
    pub mismatch_limit_change: f64,
}

fn apply(config: &MatchlineConfig, lever: DeviceLever, factor: f64) -> MatchlineConfig {
    let mut c = *config;
    match lever {
        DeviceLever::OnConductance => c.g_on *= factor,
        DeviceLever::OffConductance => c.g_off *= factor,
        DeviceLever::CellCapacitance => c.c_cell *= factor,
    }
    // Keep the configuration physical.
    if c.g_off >= c.g_on {
        c.g_off = c.g_on / 2.0;
    }
    c
}

fn probe(config: &MatchlineConfig, tech: &TechNode, cells: usize) -> (f64, f64, usize) {
    let ml = Matchline::new(*config, tech, cells);
    let sa = SenseAmp::voltage_latch(tech);
    let m = 4.min(cells - 1);
    (
        ml.discharge_time(1),
        ml.best_margin(m),
        ml.mismatch_limit(&sa),
    )
}

/// Sweeps every lever by `factor` on a `cells`-long matchline and
/// reports the application-visible swings.
///
/// # Panics
///
/// Panics if `factor` is not positive or `cells < 2`.
pub fn matchline_sensitivity(
    config: &MatchlineConfig,
    tech: &TechNode,
    cells: usize,
    factor: f64,
) -> Vec<SensitivityRow> {
    assert!(factor > 0.0, "factor must be positive");
    assert!(cells >= 2, "need at least two cells");
    let (t0, m0, lim0) = probe(config, tech, cells);
    DeviceLever::all()
        .iter()
        .map(|&lever| {
            let perturbed = apply(config, lever, factor);
            let (t, m, lim) = probe(&perturbed, tech, cells);
            SensitivityRow {
                lever,
                factor,
                latency_change: t / t0 - 1.0,
                margin_change: m / m0 - 1.0,
                mismatch_limit_change: lim as f64 / lim0.max(1) as f64 - 1.0,
            }
        })
        .collect()
}

/// Ranks levers by total application-visible impact magnitude.
pub fn prioritized_levers(
    config: &MatchlineConfig,
    tech: &TechNode,
    cells: usize,
    factor: f64,
) -> Vec<(DeviceLever, f64)> {
    let mut impacts: Vec<(DeviceLever, f64)> = matchline_sensitivity(config, tech, cells, factor)
        .into_iter()
        .map(|r| {
            (
                r.lever,
                r.latency_change.abs() + r.margin_change.abs() + r.mismatch_limit_change.abs(),
            )
        })
        .collect();
    impacts.sort_by(|a, b| crate::order::desc_nan_last(a.1, b.1));
    impacts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MatchlineConfig {
        MatchlineConfig::default()
    }

    #[test]
    fn doubling_g_on_speeds_discharge() {
        let rows = matchline_sensitivity(&base(), &TechNode::n40(), 64, 2.0);
        let g_on = rows
            .iter()
            .find(|r| r.lever == DeviceLever::OnConductance)
            .expect("g_on row");
        assert!(g_on.latency_change < -0.3, "{:?}", g_on);
    }

    #[test]
    fn raising_leakage_hurts_margin_and_limit() {
        let rows = matchline_sensitivity(&base(), &TechNode::n40(), 256, 100.0);
        let g_off = rows
            .iter()
            .find(|r| r.lever == DeviceLever::OffConductance)
            .expect("g_off row");
        assert!(g_off.margin_change < 0.0, "{:?}", g_off);
        assert!(g_off.mismatch_limit_change <= 0.0);
    }

    #[test]
    fn capacitance_scales_latency_linearly() {
        let rows = matchline_sensitivity(&base(), &TechNode::n40(), 64, 2.0);
        let c = rows
            .iter()
            .find(|r| r.lever == DeviceLever::CellCapacitance)
            .expect("c_cell row");
        // Cell cap is most of the line cap: near-doubling of latency.
        assert!(c.latency_change > 0.5 && c.latency_change < 1.1, "{:?}", c);
    }

    #[test]
    fn prioritization_is_sorted_and_complete() {
        let p = prioritized_levers(&base(), &TechNode::n40(), 64, 2.0);
        assert_eq!(p.len(), 3);
        for w in p.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn bad_factor_panics() {
        matchline_sensitivity(&base(), &TechNode::n40(), 64, 0.0);
    }
}
