//! Weighted ranking ("triage") of evaluated candidates.
//!
//! The paper's analytical-modeling thesis (Sec. VI): with many
//! device/architecture combinations, a fast well-calibrated model should
//! *rank* options and prioritize the most promising for deep dives. This
//! module scores candidates against a weighted objective with an
//! optional iso-accuracy floor.

use crate::fom::Candidate;

/// Objective weights. Latency/energy/area contribute as normalized log
/// ratios (scale-free); accuracy contributes linearly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Weight on log-latency.
    pub w_latency: f64,
    /// Weight on log-energy.
    pub w_energy: f64,
    /// Weight on log-area.
    pub w_area: f64,
    /// Weight on accuracy.
    pub w_accuracy: f64,
    /// Candidates below this accuracy are excluded outright (the
    /// "iso-accuracy" constraint the paper applies in Fig. 3H).
    pub iso_accuracy_floor: Option<f64>,
}

impl Objective {
    /// Latency-dominant objective with an optional accuracy floor.
    pub fn latency_first(iso_accuracy_floor: Option<f64>) -> Self {
        Self {
            w_latency: 1.0,
            w_energy: 0.25,
            w_area: 0.1,
            w_accuracy: 2.0,
            iso_accuracy_floor,
        }
    }

    /// Energy-dominant objective (edge deployment).
    pub fn energy_first(iso_accuracy_floor: Option<f64>) -> Self {
        Self {
            w_latency: 0.25,
            w_energy: 1.0,
            w_area: 0.25,
            w_accuracy: 2.0,
            iso_accuracy_floor,
        }
    }
}

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked {
    /// Candidate name.
    pub name: String,
    /// Composite score (higher is better).
    pub score: f64,
    /// Index into the original candidate slice.
    pub index: usize,
    /// Whether the candidate met the accuracy floor.
    pub meets_floor: bool,
}

/// Ranks candidates under an objective, best first.
///
/// Candidates failing the accuracy floor are still returned (flagged and
/// sorted last) so reports can show *why* a fast design point loses.
pub fn rank(candidates: &[Candidate], objective: &Objective) -> Vec<Ranked> {
    if candidates.is_empty() {
        return Vec::new();
    }
    // Normalize against the geometric best on each axis.
    let min_pos = |f: fn(&Candidate) -> f64| {
        candidates
            .iter()
            .map(f)
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min)
    };
    let l0 = min_pos(|c| c.fom.latency_s).max(1e-15);
    let e0 = min_pos(|c| c.fom.energy_j).max(1e-18);
    let a0 = min_pos(|c| c.fom.area_mm2).max(1e-6);

    let mut ranked: Vec<Ranked> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let lat_pen = (c.fom.latency_s.max(1e-15) / l0).ln();
            let eng_pen = (c.fom.energy_j.max(1e-18) / e0).ln();
            let area_pen = (c.fom.area_mm2.max(1e-6) / a0).ln();
            let score = -objective.w_latency * lat_pen
                - objective.w_energy * eng_pen
                - objective.w_area * area_pen
                + objective.w_accuracy * c.fom.accuracy;
            let meets_floor = objective
                .iso_accuracy_floor
                .is_none_or(|f| c.fom.accuracy >= f);
            Ranked {
                name: c.name.clone(),
                score,
                index: i,
                meets_floor,
            }
        })
        .collect();
    // NaN-safe: a corrupted score must rank last, not panic the sweep
    // (and must not ride total_cmp's "+NaN is greatest" to the top).
    ranked.sort_by(|a, b| {
        b.meets_floor
            .cmp(&a.meets_floor)
            .then_with(|| crate::order::desc_nan_last(a.score, b.score))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::Fom;

    fn cand(name: &str, l: f64, e: f64, acc: f64) -> Candidate {
        Candidate::new(
            name,
            Fom {
                latency_s: l,
                energy_j: e,
                area_mm2: 1.0,
                accuracy: acc,
            },
        )
    }

    #[test]
    fn faster_candidate_ranks_higher_at_iso_accuracy() {
        let cs = vec![cand("slow", 1e-3, 1e-3, 0.9), cand("fast", 1e-6, 1e-3, 0.9)];
        let r = rank(&cs, &Objective::latency_first(None));
        assert_eq!(r[0].name, "fast");
    }

    #[test]
    fn accuracy_floor_pushes_violators_last() {
        let cs = vec![
            cand("fast-inaccurate", 1e-9, 1e-9, 0.5),
            cand("slow-accurate", 1e-3, 1e-3, 0.95),
        ];
        let r = rank(&cs, &Objective::latency_first(Some(0.9)));
        assert_eq!(r[0].name, "slow-accurate");
        assert!(!r[1].meets_floor);
    }

    #[test]
    fn energy_objective_changes_winner() {
        let cs = vec![
            cand("fast-hungry", 1e-6, 1e-2, 0.9),
            cand("slow-frugal", 1e-4, 1e-7, 0.9),
        ];
        let lat = rank(&cs, &Objective::latency_first(None));
        let eng = rank(&cs, &Objective::energy_first(None));
        assert_eq!(lat[0].name, "fast-hungry");
        assert_eq!(eng[0].name, "slow-frugal");
    }

    #[test]
    fn empty_input() {
        assert!(rank(&[], &Objective::latency_first(None)).is_empty());
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        // Regression: a NaN accuracy propagates into a NaN score; the old
        // partial_cmp().expect("finite scores") sort panicked here, and a
        // bare total_cmp descending sort would rank the NaN *first*.
        let cs = vec![
            cand("poisoned", 1e-6, 1e-6, f64::NAN),
            cand("ok-fast", 1e-6, 1e-6, 0.9),
            cand("ok-slow", 1e-3, 1e-3, 0.9),
        ];
        let r = rank(&cs, &Objective::latency_first(None));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].name, "ok-fast");
        assert_eq!(r[1].name, "ok-slow");
        assert_eq!(r[2].name, "poisoned");
        assert!(r[2].score.is_nan());
    }

    #[test]
    fn all_nan_scores_still_return_full_ranking() {
        let cs = vec![
            cand("a", 1e-6, 1e-6, f64::NAN),
            cand("b", 1e-3, 1e-3, f64::NAN),
        ];
        let r = rank(&cs, &Objective::latency_first(None));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|x| x.score.is_nan()));
    }

    #[test]
    fn triage_of_fig3h_prefers_3b_cam() {
        // End-to-end: the triage framework should surface the paper's
        // conclusion from the Fig. 3H candidate set.
        use crate::evaluate::Scenario;
        let cands = crate::evaluate::HdcScenario::default()
            .candidates()
            .expect("default scenario models");
        let r = rank(&cands, &Objective::latency_first(Some(0.9)));
        assert_eq!(r[0].name, "3b FeFET CAM", "ranking: {r:#?}");
    }
}
