//! Report emitters: Markdown and CSV tables from evaluated candidates.
//!
//! The triage pipeline's consumers are humans and spreadsheets; these
//! helpers turn a candidate set (plus optional ranking) into the two
//! formats the figure harnesses and downstream users need.

use crate::fom::Candidate;
use crate::triage::Ranked;

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.3} ns", s * 1e9)
    }
}

fn fmt_energy(j: f64) -> String {
    if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.3} µJ", j * 1e6)
    } else if j >= 1e-9 {
        format!("{:.3} nJ", j * 1e9)
    } else {
        format!("{:.3} pJ", j * 1e12)
    }
}

/// Renders candidates as a GitHub-flavored Markdown table.
///
/// # Examples
///
/// ```
/// use xlda_core::fom::{Candidate, Fom};
/// use xlda_core::report::to_markdown;
///
/// let c = Candidate::new("demo", Fom {
///     latency_s: 1e-6, energy_j: 1e-9, area_mm2: 0.5, accuracy: 0.9,
/// });
/// let md = to_markdown(&[c]);
/// assert!(md.contains("| demo |"));
/// ```
pub fn to_markdown(candidates: &[Candidate]) -> String {
    let mut out = String::from(
        "| design point | latency | energy | area (mm²) | accuracy |\n|---|---|---|---|---|\n",
    );
    for c in candidates {
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.1} % |\n",
            c.name,
            fmt_time(c.fom.latency_s),
            fmt_energy(c.fom.energy_j),
            c.fom.area_mm2,
            c.fom.accuracy * 100.0
        ));
    }
    out
}

/// Renders candidates as CSV (SI units, machine-consumable).
///
/// Names containing commas or quotes are quoted per RFC 4180.
pub fn to_csv(candidates: &[Candidate]) -> String {
    let mut out = String::from("name,latency_s,energy_j,area_mm2,accuracy\n");
    for c in candidates {
        let name = if c.name.contains(',') || c.name.contains('"') {
            format!("\"{}\"", c.name.replace('"', "\"\""))
        } else {
            c.name.clone()
        };
        out.push_str(&format!(
            "{},{:e},{:e},{:e},{}\n",
            name, c.fom.latency_s, c.fom.energy_j, c.fom.area_mm2, c.fom.accuracy
        ));
    }
    out
}

/// Renders a ranking as a numbered Markdown list, flagging candidates
/// below the accuracy floor.
pub fn ranking_to_markdown(ranking: &[Ranked]) -> String {
    let mut out = String::new();
    for (i, r) in ranking.iter().enumerate() {
        let flag = if r.meets_floor {
            ""
        } else {
            " *(below accuracy floor)*"
        };
        out.push_str(&format!("{}. {}{}\n", i + 1, r.name, flag));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::Fom;
    use crate::triage::{rank, Objective};

    fn cands() -> Vec<Candidate> {
        vec![
            Candidate::new(
                "fast, small",
                Fom {
                    latency_s: 12e-9,
                    energy_j: 27e-9,
                    area_mm2: 0.05,
                    accuracy: 0.93,
                },
            ),
            Candidate::new(
                "slow",
                Fom {
                    latency_s: 31e-6,
                    energy_j: 9.5e-3,
                    area_mm2: 0.0,
                    accuracy: 0.93,
                },
            ),
        ]
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = to_markdown(&cands());
        assert!(md.starts_with("| design point |"));
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("12.000 ns"));
        assert!(md.contains("9.500 mJ"));
    }

    #[test]
    fn csv_quotes_commas_and_parses_back() {
        let csv = to_csv(&cands());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("\"fast, small\""));
        // Every data line has exactly 5 fields outside quotes.
        let fields = lines[2].split(',').count();
        assert_eq!(fields, 5);
        // Values round-trip through parse.
        let lat: f64 = lines[2]
            .split(',')
            .nth(1)
            .expect("field")
            .parse()
            .expect("parses");
        assert!((lat - 31e-6).abs() < 1e-12);
    }

    #[test]
    fn ranking_markdown_flags_floor_violations() {
        let mut cs = cands();
        cs[1].fom.accuracy = 0.5;
        let ranking = rank(&cs, &Objective::latency_first(Some(0.9)));
        let md = ranking_to_markdown(&ranking);
        assert!(md.starts_with("1. fast, small\n"));
        assert!(md.contains("below accuracy floor"));
    }
}
