//! Figures of merit shared across the design space.

/// End-to-end figures of merit for one candidate design point.
///
/// Latency, energy, and area are "lower is better"; accuracy is "higher
/// is better".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fom {
    /// End-to-end latency per inference/query (s).
    pub latency_s: f64,
    /// Energy per inference/query (J).
    pub energy_j: f64,
    /// Silicon area of the dedicated hardware (mm²); 0 for rented
    /// general-purpose baselines.
    pub area_mm2: f64,
    /// Application accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl Fom {
    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.latency_s
    }

    /// Strict Pareto dominance: at least as good on every axis and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &Fom) -> bool {
        let le = self.latency_s <= other.latency_s
            && self.energy_j <= other.energy_j
            && self.area_mm2 <= other.area_mm2
            && self.accuracy >= other.accuracy;
        let lt = self.latency_s < other.latency_s
            || self.energy_j < other.energy_j
            || self.area_mm2 < other.area_mm2
            || self.accuracy > other.accuracy;
        le && lt
    }

    /// Validates that all fields are finite and in range.
    pub fn is_valid(&self) -> bool {
        self.latency_s.is_finite()
            && self.latency_s >= 0.0
            && self.energy_j.is_finite()
            && self.energy_j >= 0.0
            && self.area_mm2.is_finite()
            && self.area_mm2 >= 0.0
            && (0.0..=1.0).contains(&self.accuracy)
    }
}

/// A named, evaluated candidate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Candidate {
    /// Display name (e.g. "3b FeFET CAM").
    pub name: String,
    /// Evaluated figures of merit.
    pub fom: Fom,
}

impl Candidate {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, fom: Fom) -> Self {
        Self {
            name: name.into(),
            fom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fom(l: f64, e: f64, a: f64, acc: f64) -> Fom {
        Fom {
            latency_s: l,
            energy_j: e,
            area_mm2: a,
            accuracy: acc,
        }
    }

    #[test]
    fn dominance_requires_strictness() {
        let a = fom(1.0, 1.0, 1.0, 0.9);
        let same = a;
        let worse = fom(2.0, 1.0, 1.0, 0.9);
        assert!(!a.dominates(&same));
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
    }

    #[test]
    fn accuracy_axis_points_up() {
        let hi = fom(1.0, 1.0, 1.0, 0.95);
        let lo = fom(1.0, 1.0, 1.0, 0.90);
        assert!(hi.dominates(&lo));
    }

    #[test]
    fn incomparable_points_do_not_dominate() {
        let fast_big = fom(1.0, 1.0, 5.0, 0.9);
        let slow_small = fom(2.0, 1.0, 1.0, 0.9);
        assert!(!fast_big.dominates(&slow_small));
        assert!(!slow_small.dominates(&fast_big));
    }

    #[test]
    fn edp_and_validity() {
        let f = fom(2.0, 3.0, 1.0, 0.5);
        assert_eq!(f.edp(), 6.0);
        assert!(f.is_valid());
        assert!(!fom(-1.0, 0.0, 0.0, 0.5).is_valid());
        assert!(!fom(1.0, 0.0, 0.0, 1.5).is_valid());
    }
}
