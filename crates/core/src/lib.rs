//! Cross-layer design-space exploration framework — the paper's primary
//! contribution (Secs. I, VII, Figs. 1 and 6).
//!
//! Everything below this crate models one *layer* (devices, circuits,
//! arrays, algorithms, systems). This crate ties the layers together so a
//! designer can ask the paper's question: *for a given application
//! workload, which technology-enabled architecture is worth a deep
//! dive?* It provides:
//!
//! - [`fom::Fom`] — the common figure-of-merit bundle (latency, energy,
//!   area, accuracy) with dominance and derived metrics;
//! - [`pareto`] — Pareto-front extraction over candidate evaluations;
//! - [`evaluate`] — the unified [`Scenario`](evaluate::Scenario) trait
//!   and its cross-layer evaluators that assemble end-to-end FOMs for
//!   concrete mappings (HDC on GPU / TPU-GPU hybrid / multi-bit
//!   FeFET CAM / SRAM CAM; MLP on GPU; MANN variants; edge and
//!   NVM-backed-TPU studies) by composing the substrate crates — these
//!   generate the Fig. 3H-style comparisons;
//! - [`triage`] — weighted ranking with iso-accuracy floors, the "rapidly
//!   and accurately triage technology-enabled architectures" step;
//! - [`sensitivity`] — bottom-up linkage (Fig. 6): perturb device-level
//!   metrics and report the application-level swing, identifying which
//!   materials/device lever matters most;
//! - [`profile`] — top-down linkage: workload composition → architecture
//!   recommendation and device-metric priorities (Sec. VII);
//! - [`sweep`] — parallel fan-out and memoization for large sweeps;
//! - [`store`] — persistent content-addressed result store plus
//!   successive-halving incremental DSE on top of it;
//! - [`mc`] — variation-aware Monte-Carlo scenario kinds (CAM yield,
//!   MANN accuracy under relaxation/read noise, NVM lifetime/V_th)
//!   returning distribution summaries instead of single FOMs;
//! - [`cim`] — Eva-CiM-style IMC-favorability analysis of programs.
//!
//! # Examples
//!
//! ```
//! use xlda_core::evaluate::{HdcScenario, Scenario};
//! use xlda_core::triage::{rank, Objective};
//!
//! let scenario = HdcScenario::default();
//! let candidates = scenario.candidates().expect("default scenario models");
//! let ranking = rank(&candidates, &Objective::latency_first(Some(0.9)));
//! assert!(!ranking.is_empty());
//! ```

pub mod cim;
pub mod error;
pub mod evaluate;
pub mod fom;
pub mod mc;
pub mod order;
pub mod pareto;
pub mod profile;
pub mod report;
pub mod sensitivity;
pub mod store;
pub mod sweep;
pub mod triage;

pub use error::XldaError;
pub use fom::Fom;
