//! Eva-CiM-style in-memory-computing favorability analysis (Sec. VI).
//!
//! Eva-CiM "enables researchers to assess whether a program is
//! IMC-favorable (i.e., can benefit from an IMC architecture), the pros
//! and cons of increased memory size, etc." — producing system-level
//! energy and performance estimates for a program on a processor with an
//! attached in-memory-compute array. This module reproduces that lane of
//! the tooling: it composes the system simulator's workload traces, the
//! crossbar macro model, and the RAM model into a *favorability verdict*
//! with the energy/delay numbers behind it.

use xlda_circuit::tech::TechNode;
use xlda_crossbar::macro_model::CrossbarMacro;
use xlda_crossbar::CrossbarConfig;
use xlda_syssim::study::offload_speedup;
use xlda_syssim::system::{AccelConfig, SystemConfig};
use xlda_syssim::workload::Workload;

/// The verdict Eva-CiM-style analysis renders for a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Favorability {
    /// Large end-to-end gains: invest in IMC for this program.
    StronglyFavorable,
    /// Real but modest gains: IMC helps if the hardware is already there.
    MarginallyFavorable,
    /// No meaningful gain (Amdahl-limited or data-movement-bound).
    Unfavorable,
}

/// Full analysis result for one program.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CimAnalysis {
    /// Program name.
    pub workload: String,
    /// End-to-end speedup with the IMC array attached.
    pub speedup: f64,
    /// End-to-end energy gain.
    pub energy_gain: f64,
    /// Fraction of operations the IMC array can absorb.
    pub offload_fraction: f64,
    /// Silicon cost of the attached IMC array (mm²).
    pub imc_area_mm2: f64,
    /// The verdict.
    pub verdict: Favorability,
}

/// Analysis thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CimCriteria {
    /// Speedup at or above which a program is strongly favorable.
    pub strong_speedup: f64,
    /// Speedup below which a program is unfavorable.
    pub min_speedup: f64,
}

impl Default for CimCriteria {
    /// Strong ≥ 5×; unfavorable < 1.5×.
    fn default() -> Self {
        Self {
            strong_speedup: 5.0,
            min_speedup: 1.5,
        }
    }
}

/// Analyzes whether `workload` is IMC-favorable on a system with the
/// given accelerator attached.
pub fn analyze(workload: &Workload, accel: &AccelConfig, criteria: &CimCriteria) -> CimAnalysis {
    let system = SystemConfig {
        accel: Some(*accel),
        ..SystemConfig::cpu_only()
    };
    let row = offload_speedup(workload, &system);
    let xmacro = CrossbarMacro::new(
        &CrossbarConfig {
            rows: accel.rows,
            cols: accel.cols,
            ..CrossbarConfig::default()
        },
        &TechNode::n40(),
        8,
    );
    let imc_area_mm2 = accel.units as f64 * xmacro.area_m2() * 1e6;
    let verdict = if row.speedup >= criteria.strong_speedup {
        Favorability::StronglyFavorable
    } else if row.speedup >= criteria.min_speedup {
        Favorability::MarginallyFavorable
    } else {
        Favorability::Unfavorable
    };
    CimAnalysis {
        workload: workload.name.clone(),
        speedup: row.speedup,
        energy_gain: row.energy_gain,
        offload_fraction: row.offload_fraction,
        imc_area_mm2,
        verdict,
    }
}

/// The "pros and cons of increased memory size" question: sweeps the IMC
/// array size and reports (tiles-equivalent capacity, speedup, area).
///
/// Returns one row per `units` entry.
pub fn array_size_sweep(
    workload: &Workload,
    base: &AccelConfig,
    unit_counts: &[usize],
) -> Vec<(usize, f64, f64)> {
    unit_counts
        .iter()
        .map(|&units| {
            let accel = AccelConfig { units, ..*base };
            let a = analyze(workload, &accel, &CimCriteria::default());
            (units, a.speedup, a.imc_area_mm2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_syssim::workload::{cnn_trace, KernelOp};

    #[test]
    fn cnn_is_strongly_favorable() {
        let a = analyze(
            &cnn_trace(8),
            &AccelConfig::default(),
            &CimCriteria::default(),
        );
        assert_eq!(a.verdict, Favorability::StronglyFavorable, "{a:?}");
        assert!(a.speedup > 5.0);
        assert!(a.imc_area_mm2 > 0.0);
    }

    #[test]
    fn scalar_program_is_unfavorable() {
        let w = Workload {
            name: "pointer-chasing".into(),
            kernels: vec![KernelOp {
                name: "scalar".into(),
                compute_ops: 1_000_000_000,
                weight_bytes: 0,
                activation_bytes: 64_000_000,
                offloadable: false,
            }],
        };
        let a = analyze(&w, &AccelConfig::default(), &CimCriteria::default());
        assert_eq!(a.verdict, Favorability::Unfavorable);
        assert!(a.speedup <= 1.01);
    }

    #[test]
    fn mixed_program_is_marginal() {
        let w = Workload {
            name: "half-mvm".into(),
            kernels: vec![
                KernelOp {
                    name: "mvm".into(),
                    compute_ops: 1_000_000_000,
                    weight_bytes: 4_000_000,
                    activation_bytes: 400_000,
                    offloadable: true,
                },
                KernelOp {
                    name: "scalar".into(),
                    compute_ops: 1_000_000_000,
                    weight_bytes: 0,
                    activation_bytes: 4_000_000,
                    offloadable: false,
                },
            ],
        };
        let a = analyze(&w, &AccelConfig::default(), &CimCriteria::default());
        assert_eq!(a.verdict, Favorability::MarginallyFavorable, "{a:?}");
    }

    #[test]
    fn array_size_sweep_shows_diminishing_returns() {
        let sweep = array_size_sweep(&cnn_trace(6), &AccelConfig::default(), &[1, 2, 4, 16]);
        assert_eq!(sweep.len(), 4);
        // Speedup never falls with more units; area grows linearly.
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.99, "{sweep:?}");
            assert!(w[1].2 > w[0].2);
        }
        // Diminishing returns: the 8x unit jump from 2 to 16 gains less
        // than 8x the speedup.
        let gain = sweep[3].1 / sweep[1].1;
        assert!(gain < 8.0, "gain {gain}");
    }
}
