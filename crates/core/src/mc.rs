//! Variation-aware Monte-Carlo scenario kinds.
//!
//! Deterministic grids answer "what is this design's FOM"; the paper's
//! predictive claims also need "what is the *distribution* of outcomes
//! over device variation". This module adds that workload class behind
//! the same [`Scenario`] trait every consumer already dispatches on:
//!
//! - [`CamYieldMcScenario`] — yield-aware CAM sizing: the distribution of
//!   matchline sensing margins under per-cell conductance variation, plus
//!   the variation-aware array-width limit.
//! - [`MannAccuracyMcScenario`] — MANN retrieval-accuracy distributions
//!   when the in-memory LSH projection suffers conductance relaxation and
//!   read noise (the Sec. IV non-idealities).
//! - [`NvmLifetimeMcScenario`] — NVM lifetime and V_th percentiles over
//!   endurance spread, wear-leveling variation, and programming noise.
//!
//! Each scenario returns [`McDistribution`] summaries (mean/σ/p5/p50/p95,
//! yield fraction) instead of a single deterministic FOM, with
//! quantile-derived [`Candidate`]s so the triage/sweep/bench consumers
//! that only understand candidates still get a meaningful view.
//!
//! # Determinism
//!
//! The engine ([`run_trials_with`]) splits the trial range into
//! structure-of-arrays batches ([`TrialBatch`]) and schedules them with
//! the fallible sweep engine. Every trial's RNG stream is derived from
//! `(seed, global_trial_index)` ([`xlda_num::rng::Rng64::for_trial`]) and
//! each trial consumes only its own stream in a fixed per-column order,
//! so results are bit-identical for any batch size, worker count, or
//! schedule — pinned by the chunking-invariance tests and the bench
//! checksum gate, but true by construction.

use crate::error::{validate_fom, XldaError};
use crate::evaluate::{Evaluation, Scenario};
use crate::fom::{Candidate, Fom};
use crate::store::{Digest, DigestWriter};
use crate::sweep::{par_try_map_with, PointFailure, SweepOptions};
use xlda_circuit::matchline::MatchlineConfig;
use xlda_device::mlc::{MultiLevelCell, StateVariable};
use xlda_device::rram::Rram;
use xlda_device::MemoryDevice;
use xlda_evacam::variation::{max_cells_with_variation, CellVariation};
use xlda_num::trial::{checksum, summarize, yield_fraction, Summary, TrialBatch};

/// Default trials per batch when [`McParams::batch`] is 0: large enough
/// to amortize dispatch, small enough that a 1-core smoke run still
/// exercises multiple batches.
pub const DEFAULT_BATCH: usize = 256;

/// Monte-Carlo population controls shared by every MC scenario kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McParams {
    /// Trial population size.
    pub trials: usize,
    /// Experiment seed; together with the global trial index it fully
    /// determines every draw.
    pub seed: u64,
    /// Trials per structure-of-arrays batch (0 = [`DEFAULT_BATCH`]).
    /// Any value produces bit-identical results; this only tunes
    /// scheduling granularity.
    pub batch: usize,
    /// Worker threads for the trial sweep. Defaults to 1 because the
    /// outer consumers (sweep grids, the serve worker pool) already
    /// provide the parallelism; set 0 for all cores when running one
    /// deep scenario standalone.
    pub threads: usize,
}

impl Default for McParams {
    fn default() -> Self {
        Self {
            trials: 2048,
            seed: 0xA11CE,
            batch: 0,
            threads: 1,
        }
    }
}

impl McParams {
    fn sweep_opts(&self) -> SweepOptions {
        SweepOptions::builder().threads(self.threads).build()
    }

    fn validate(&self, stage: &'static str) -> Result<(), XldaError> {
        if self.trials == 0 {
            return Err(XldaError::NonFinite {
                stage,
                quantity: "trial population (zero trials)",
            });
        }
        Ok(())
    }
}

/// One Monte-Carlo outcome distribution: the digest a scenario returns
/// instead of a deterministic FOM.
#[derive(Debug, Clone, PartialEq)]
pub struct McDistribution {
    /// Outcome name (`"matchline_margin"`, `"accuracy"`, …).
    pub name: &'static str,
    /// Physical unit of the samples.
    pub unit: &'static str,
    /// Human-readable pass criterion behind [`yield_fraction`].
    ///
    /// [`yield_fraction`]: McDistribution::yield_fraction
    pub criterion: &'static str,
    /// Mean/σ/range/percentiles over the trial population.
    pub summary: Summary,
    /// Fraction of trials meeting the criterion (NaN outcomes fail).
    pub yield_fraction: f64,
    /// Order-sensitive FNV fold over the outcome column's bit patterns;
    /// equal iff two runs produced bit-identical trials in order.
    pub checksum: u64,
}

fn distribution(
    name: &'static str,
    unit: &'static str,
    criterion: &'static str,
    xs: &[f64],
    ok: impl Fn(f64) -> bool,
) -> McDistribution {
    McDistribution {
        name,
        unit,
        criterion,
        summary: summarize(xs),
        yield_fraction: yield_fraction(xs, ok),
        checksum: checksum(xs),
    }
}

/// A candidate whose accuracy axis carries a Monte-Carlo quantile or
/// yield (clamped into the FOM's `[0, 1]` domain; NaN — an all-NaN
/// outcome column — still fails validation loudly).
fn fraction_candidate(name: &str, fraction: f64) -> Result<Candidate, XldaError> {
    let fom = Fom {
        latency_s: 0.0,
        energy_j: 0.0,
        area_mm2: 0.0,
        accuracy: fraction.clamp(0.0, 1.0),
    };
    Ok(Candidate::new(name, validate_fom(name, fom)?))
}

/// Runs `trials` Monte-Carlo trials in structure-of-arrays batches and
/// returns `outputs` concatenated outcome columns (each of length
/// `trials`, in global trial order).
///
/// `eval` is called once per batch with the batch's per-trial RNG
/// streams and one scratch column per output (pre-sized to the batch
/// length); it must fill every column slot and draw only from the
/// batch's own streams so results stay chunking-invariant. Scheduling
/// (worker count, schedule arm, sweep chunking of the batch list) comes
/// from `opts`; any deadline in `opts` is ignored — an MC population is
/// all-or-nothing, deadlines belong to the serving layer.
///
/// # Errors
///
/// The first batch error, in trial order.
///
/// # Panics
///
/// Re-raises a panic from `eval` (a modeling bug, not an infeasible
/// point), and panics if `eval` resizes an output column.
pub fn run_trials_with<F>(
    trials: usize,
    seed: u64,
    batch: usize,
    opts: &SweepOptions,
    outputs: usize,
    eval: F,
) -> Result<Vec<Vec<f64>>, XldaError>
where
    F: Fn(&mut TrialBatch, &mut [Vec<f64>]) -> Result<(), XldaError> + Sync,
{
    let _span = xlda_obs::span!("mc.trials");
    let batch = if batch == 0 { DEFAULT_BATCH } else { batch };
    let ranges: Vec<(u64, usize)> = (0..trials)
        .step_by(batch)
        .map(|s| (s as u64, batch.min(trials - s)))
        .collect();
    let opts = SweepOptions {
        deadline: None,
        ..*opts
    };
    let per_batch = par_try_map_with(
        &ranges,
        |&(start, len)| {
            let _span = xlda_obs::span!("mc.batch");
            let mut b = TrialBatch::new(seed, start, len);
            let mut cols: Vec<Vec<f64>> = (0..outputs).map(|_| vec![0.0; len]).collect();
            eval(&mut b, &mut cols)?;
            assert!(
                cols.iter().all(|c| c.len() == len),
                "mc batch resized an output column"
            );
            Ok(cols)
        },
        &opts,
    );
    let mut out: Vec<Vec<f64>> = (0..outputs).map(|_| Vec::with_capacity(trials)).collect();
    for r in per_batch {
        match r {
            Ok(cols) => {
                for (o, c) in out.iter_mut().zip(cols) {
                    o.extend(c);
                }
            }
            Err(PointFailure::Error(e)) => return Err(e),
            Err(PointFailure::Panicked(msg)) => panic!("mc trial batch panicked: {msg}"),
            // Stripped above; an MC population is never partially run.
            Err(PointFailure::DeadlineExceeded) => unreachable!("mc strips sweep deadlines"),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CAM yield
// ---------------------------------------------------------------------------

/// Yield-aware CAM sizing under per-cell conductance variation.
///
/// Each trial realizes two matchlines — one with `mismatches` and one
/// with `mismatches + 1` mismatching cells — with every pull-down path's
/// conductance drawn per cell, and records the relative sensing margin
/// `(G(m+1) − G(m)) / g_on`. A negative margin is a best-match
/// mis-ordering: the array width at which the margin distribution's
/// lower tail crosses zero is the real, variation-limited CAM size
/// (Sec. VI of the paper; the deterministic model in
/// [`xlda_evacam::CamArray`] assumes nominal cells).
#[derive(Debug, Clone, PartialEq)]
pub struct CamYieldMcScenario {
    /// Trial population controls.
    pub mc: McParams,
    /// Matchline length (cells per word).
    pub cells: usize,
    /// Base mismatch count `m` being distinguished from `m + 1`.
    pub mismatches: usize,
    /// Pull-down conductance of a mismatching cell (S).
    pub g_on: f64,
    /// Leakage conductance of a matching cell (S).
    pub g_off: f64,
    /// Per-cell variation spreads.
    pub variation: CellVariation,
    /// Analytic sizing target: sensing-error probability bound used for
    /// the yield-sized-matchline candidate.
    pub target_error: f64,
}

impl Default for CamYieldMcScenario {
    /// MRAM-like window (25 µS / 10 µS): a low on/off ratio where the
    /// variation limit actually binds at modest array widths.
    fn default() -> Self {
        Self {
            mc: McParams::default(),
            cells: 128,
            mismatches: 4,
            g_on: 25e-6,
            g_off: 10e-6,
            variation: CellVariation::default(),
            target_error: 1e-3,
        }
    }
}

impl CamYieldMcScenario {
    fn matchline(&self) -> MatchlineConfig {
        MatchlineConfig {
            g_on: self.g_on,
            g_off: self.g_off,
            ..MatchlineConfig::default()
        }
    }

    fn validate(&self) -> Result<(), XldaError> {
        self.mc.validate("cam_yield_mc")?;
        if self.cells == 0
            || self.mismatches + 1 > self.cells
            || !(self.g_on.is_finite() && self.g_on > 0.0)
            || !(self.g_off.is_finite() && self.g_off >= 0.0)
        {
            return Err(XldaError::NonFinite {
                stage: "cam_yield_mc",
                quantity: "matchline configuration",
            });
        }
        Ok(())
    }

    /// Raw outcome columns (`[margin]`) under an explicit sweep
    /// configuration — the chunking-invariance test hook.
    pub fn outcomes_with(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, XldaError> {
        self.validate()?;
        let (g_on, g_off) = (self.g_on, self.g_off);
        let (s_on, s_off) = (
            self.variation.sigma_g_on_rel,
            self.variation.sigma_g_off_rel,
        );
        let (cells, m) = (self.cells, self.mismatches);
        run_trials_with(
            self.mc.trials,
            self.mc.seed,
            self.mc.batch,
            opts,
            1,
            move |batch, cols| {
                let n = batch.len();
                let mut margin = vec![0.0; n];
                let mut col = vec![0.0; n];
                // Column-major accumulation: cell k of every trial's two
                // matchlines is drawn across the batch before cell k+1.
                // Trial i's stream is consumed in the same column order
                // regardless of batch boundaries.
                for line in 0..2usize {
                    let sign = if line == 0 { -1.0 } else { 1.0 }; // G(m) vs G(m+1)
                    let mis = m + line;
                    for _ in 0..mis {
                        batch.fill_normal(1.0, s_on, &mut col);
                        for (acc, c) in margin.iter_mut().zip(&col) {
                            *acc += sign * (g_on * c).max(0.0);
                        }
                    }
                    for _ in 0..cells - mis {
                        batch.fill_normal(1.0, s_off, &mut col);
                        for (acc, c) in margin.iter_mut().zip(&col) {
                            *acc += sign * (g_off * c).max(0.0);
                        }
                    }
                }
                for (out, mg) in cols[0].iter_mut().zip(&margin) {
                    *out = mg / g_on;
                }
                Ok(())
            },
        )
    }
}

impl Scenario for CamYieldMcScenario {
    fn kind(&self) -> &'static str {
        "cam_yield_mc"
    }

    /// `trials` and `seed` fully determine the draws; `batch`/`threads`
    /// are schedule-only (bit-identical results by the trial-stream
    /// contract) and deliberately left out of the key.
    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        w.usize(self.mc.trials)
            .word(self.mc.seed)
            .usize(self.cells)
            .usize(self.mismatches)
            .f64(self.g_on)
            .f64(self.g_off)
            .f64(self.variation.sigma_g_on_rel)
            .f64(self.variation.sigma_g_off_rel)
            .f64(self.target_error);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        Ok(self.evaluate()?.candidates)
    }

    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        let cols = self.outcomes_with(&self.mc.sweep_opts())?;
        let margins = &cols[0];
        let dist = distribution(
            "matchline_margin",
            "g_on (relative)",
            "margin > 0 (no best-match mis-ordering)",
            margins,
            |x| x > 0.0,
        );
        let mut candidates = vec![fraction_candidate(
            &format!(
                "CAM sensing yield ({} cells, m={})",
                self.cells, self.mismatches
            ),
            dist.yield_fraction,
        )?];
        // The sizing half: the widest matchline the analytic variation
        // model certifies at the target error, as its own candidate.
        if let Some(max_cells) = max_cells_with_variation(
            &self.matchline(),
            &self.variation,
            self.mismatches,
            self.target_error,
        ) {
            candidates.push(fraction_candidate(
                &format!("yield-sized matchline ({max_cells} cells)"),
                1.0 - self.target_error,
            )?);
        }
        Ok(Evaluation {
            candidates,
            distributions: vec![dist],
        })
    }
}

// ---------------------------------------------------------------------------
// MANN accuracy
// ---------------------------------------------------------------------------

/// MANN retrieval-accuracy distribution under device variation.
///
/// Each trial realizes one in-memory LSH hash array: per hash bit, a
/// differential pair of stochastic HRS conductances
/// ([`Rram::sample_stochastic_hrs`]), then conductance relaxation over
/// [`relax_decades`](Self::relax_decades) decades
/// ([`Rram::try_relax`] — the typed-error path) and multiplicative read
/// noise on the differential. A bit flips when the perturbed
/// differential changes sign; the trial's retrieval accuracy degrades
/// linearly toward chance level at 50 % flipped bits (binary random
/// codes at Hamming distance `bits/2` carry no information — this is the
/// exposure the paper's ternary LSH scheme suppresses).
#[derive(Debug, Clone, PartialEq)]
pub struct MannAccuracyMcScenario {
    /// Trial population controls.
    pub mc: McParams,
    /// Hash signature length in bits.
    pub hash_bits: usize,
    /// Stored entries (support set size); chance accuracy is
    /// `1 / entries`.
    pub entries: usize,
    /// Software (no-variation) retrieval accuracy.
    pub acc_software: f64,
    /// Decades of relaxation time since programming.
    pub relax_decades: f64,
    /// Relative one-sigma multiplicative read noise.
    pub read_noise: f64,
    /// Yield criterion: trial passes when accuracy ≥ this floor.
    pub acc_floor: f64,
}

impl Default for MannAccuracyMcScenario {
    /// Omniglot-like 5-way × 25-class episode shape with the Sec. IV
    /// TaOx device, read 3 decades after programming.
    fn default() -> Self {
        Self {
            mc: McParams::default(),
            hash_bits: 256,
            entries: 125,
            acc_software: 0.95,
            relax_decades: 3.0,
            read_noise: 0.01,
            acc_floor: 0.85,
        }
    }
}

impl MannAccuracyMcScenario {
    fn validate(&self) -> Result<(), XldaError> {
        self.mc.validate("mann_mc")?;
        if self.hash_bits == 0
            || self.entries == 0
            || !(0.0..=1.0).contains(&self.acc_software)
            || !(self.read_noise.is_finite() && self.read_noise >= 0.0)
        {
            return Err(XldaError::NonFinite {
                stage: "mann_mc",
                quantity: "hash configuration",
            });
        }
        // relax_decades is validated by the device layer (try_relax) on
        // the first draw; nothing to pre-check here.
        Ok(())
    }

    /// Raw outcome columns (`[accuracy, flip_fraction]`) under an
    /// explicit sweep configuration — the chunking-invariance test hook.
    pub fn outcomes_with(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, XldaError> {
        self.validate()?;
        let dev = Rram::taox();
        let bits = self.hash_bits;
        let decades = self.relax_decades;
        let read_noise = self.read_noise;
        let chance = 1.0 / self.entries as f64;
        let acc_sw = self.acc_software;
        run_trials_with(
            self.mc.trials,
            self.mc.seed,
            self.mc.batch,
            opts,
            2,
            move |batch, cols| {
                let n = batch.len();
                let mut flips = vec![0u32; n];
                // Bit-major: every trial's pair for hash bit b is drawn
                // (and relaxed, and read) across the batch before bit
                // b+1 — fixed per-trial stream order, columnar updates.
                for _ in 0..bits {
                    let mut err = None;
                    batch.for_each(|i, rng| {
                        if err.is_some() {
                            return;
                        }
                        let g_pos = dev.sample_stochastic_hrs(rng);
                        let g_neg = dev.sample_stochastic_hrs(rng);
                        let d0 = g_pos - g_neg;
                        let relaxed = dev
                            .try_relax(g_pos, decades, rng)
                            .and_then(|p| dev.try_relax(g_neg, decades, rng).map(|q| p - q));
                        match relaxed {
                            Ok(d_relaxed) => {
                                let d1 = d_relaxed * (1.0 + rng.normal(0.0, read_noise));
                                if (d1 > 0.0) != (d0 > 0.0) {
                                    flips[i] += 1;
                                }
                            }
                            Err(e) => err = Some(e),
                        }
                    });
                    if let Some(e) = err {
                        return Err(e.into());
                    }
                }
                let (acc_col, rest) = cols.split_first_mut().expect("two output columns");
                let flip_col = &mut rest[0];
                for i in 0..n {
                    let flip_frac = flips[i] as f64 / bits as f64;
                    // Linear decay to chance at half the bits flipped.
                    let intact = 1.0 - (2.0 * flip_frac).min(1.0);
                    acc_col[i] = chance + (acc_sw - chance) * intact;
                    flip_col[i] = flip_frac;
                }
                Ok(())
            },
        )
    }
}

impl Scenario for MannAccuracyMcScenario {
    fn kind(&self) -> &'static str {
        "mann_mc"
    }

    /// Schedule-only `batch`/`threads` excluded; see
    /// [`CamYieldMcScenario::store_key`].
    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        w.usize(self.mc.trials)
            .word(self.mc.seed)
            .usize(self.hash_bits)
            .usize(self.entries)
            .f64(self.acc_software)
            .f64(self.relax_decades)
            .f64(self.read_noise)
            .f64(self.acc_floor);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        Ok(self.evaluate()?.candidates)
    }

    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        let cols = self.outcomes_with(&self.mc.sweep_opts())?;
        let acc_floor = self.acc_floor;
        let acc = distribution(
            "accuracy",
            "fraction",
            "accuracy >= acc_floor",
            &cols[0],
            |x| x >= acc_floor,
        );
        let flips = distribution(
            "flip_fraction",
            "fraction",
            "flip_fraction <= 0.5 (above: hash is chance-level)",
            &cols[1],
            |x| x <= 0.5,
        );
        let candidates = vec![
            fraction_candidate("RRAM MANN accuracy p05", acc.summary.p5)?,
            fraction_candidate("RRAM MANN accuracy p50", acc.summary.p50)?,
            fraction_candidate("RRAM MANN accuracy p95", acc.summary.p95)?,
        ];
        Ok(Evaluation {
            candidates,
            distributions: vec![acc, flips],
        })
    }
}

// ---------------------------------------------------------------------------
// NVM lifetime / V_th
// ---------------------------------------------------------------------------

/// NVM lifetime and V_th percentiles over device and system variation.
///
/// Per trial: the array's effective write endurance is drawn log-normally
/// around the device nominal (cycling endurance spreads about a decade in
/// measured parts), the achieved wear-leveling efficiency is drawn
/// normally around its target, and lifetime follows the
/// [`xlda_nvram::lifetime`] first-cell-wearout model. Independently, one
/// FeFET-like multi-level cell is programmed to a (per-trial) random
/// level and its threshold voltage recorded, yielding the V_th
/// distribution and the read-back yield of paper Fig. 3G.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmLifetimeMcScenario {
    /// Trial population controls.
    pub mc: McParams,
    /// Array capacity in bytes.
    pub capacity_bytes: f64,
    /// Sustained write traffic (bytes/second).
    pub write_bytes_per_second: f64,
    /// Target wear-leveling efficiency in `(0, 1]`.
    pub leveling: f64,
    /// One-sigma spread of the achieved leveling efficiency.
    pub leveling_sigma: f64,
    /// Nominal per-cell write endurance (cycles).
    pub endurance: f64,
    /// One-sigma endurance spread in decades (log10).
    pub endurance_sigma_decades: f64,
    /// Yield criterion: trial passes when lifetime ≥ this many years.
    pub required_years: f64,
    /// Bits per multi-level cell for the V_th study.
    pub vth_bits: u8,
    /// V_th window low edge (V).
    pub vth_lo: f64,
    /// V_th window high edge (V).
    pub vth_hi: f64,
    /// One-sigma V_th programming spread (V).
    pub vth_sigma: f64,
}

impl Default for NvmLifetimeMcScenario {
    /// A 1 GiB TaOx array under 50 MB/s of writes, with the paper's
    /// FeFET 8-level V_th window (0.4–1.6 V, σ = 94 mV).
    fn default() -> Self {
        Self {
            mc: McParams::default(),
            capacity_bytes: (1u64 << 30) as f64,
            write_bytes_per_second: 50e6,
            leveling: 0.9,
            leveling_sigma: 0.05,
            endurance: Rram::taox().endurance(),
            endurance_sigma_decades: 0.3,
            required_years: 5.0,
            vth_bits: 3,
            vth_lo: 0.4,
            vth_hi: 1.6,
            vth_sigma: 0.094,
        }
    }
}

const YEAR_S: f64 = 365.25 * 86400.0;

impl NvmLifetimeMcScenario {
    fn validate(&self) -> Result<(), XldaError> {
        self.mc.validate("nvm_mc")?;
        let ok = self.capacity_bytes.is_finite()
            && self.capacity_bytes > 0.0
            && self.write_bytes_per_second.is_finite()
            && self.write_bytes_per_second > 0.0
            && self.leveling > 0.0
            && self.leveling <= 1.0
            && self.endurance.is_finite()
            && self.endurance > 0.0
            && (1..=4).contains(&self.vth_bits)
            && self.vth_lo < self.vth_hi;
        if !ok {
            return Err(XldaError::NonFinite {
                stage: "nvm_mc",
                quantity: "array/traffic configuration",
            });
        }
        Ok(())
    }

    /// Raw outcome columns (`[lifetime_years, vth_volts, read_ok]`)
    /// under an explicit sweep configuration — the chunking-invariance
    /// test hook.
    pub fn outcomes_with(&self, opts: &SweepOptions) -> Result<Vec<Vec<f64>>, XldaError> {
        self.validate()?;
        let cell = MultiLevelCell::uniform(
            StateVariable::ThresholdVoltage,
            self.vth_bits,
            self.vth_lo,
            self.vth_hi,
            self.vth_sigma,
        );
        let levels = cell.levels().len();
        let ln10 = std::f64::consts::LN_10;
        let mu_endurance = self.endurance.ln();
        let sigma_endurance = self.endurance_sigma_decades * ln10;
        let (leveling, leveling_sigma) = (self.leveling, self.leveling_sigma);
        let capacity = self.capacity_bytes;
        let traffic = self.write_bytes_per_second;
        run_trials_with(
            self.mc.trials,
            self.mc.seed,
            self.mc.batch,
            opts,
            3,
            move |batch, cols| {
                let n = batch.len();
                // Column 1: endurance draws; column 2: leveling draws.
                let mut endurance = vec![0.0; n];
                let mut level_eff = vec![0.0; n];
                batch.fill_log_normal(mu_endurance, sigma_endurance, &mut endurance);
                batch.fill_normal(leveling, leveling_sigma, &mut level_eff);
                // Columns 3+: per-trial V_th program/read.
                let (life_col, rest) = cols.split_first_mut().expect("three output columns");
                let (vth_col, rest) = rest.split_first_mut().expect("three output columns");
                let ok_col = &mut rest[0];
                batch.for_each(|i, rng| {
                    let target = rng.index(levels);
                    let v = cell.program(target, rng);
                    vth_col[i] = v;
                    ok_col[i] = if cell.read_level(v) == target {
                        1.0
                    } else {
                        0.0
                    };
                });
                for i in 0..n {
                    let eff = level_eff[i].clamp(0.05, 1.0);
                    // First-cell wearout: endurance / (traffic focused by
                    // imperfect leveling onto capacity), in years.
                    life_col[i] = endurance[i] * eff * capacity / traffic / YEAR_S;
                }
                Ok(())
            },
        )
    }
}

impl Scenario for NvmLifetimeMcScenario {
    fn kind(&self) -> &'static str {
        "nvm_mc"
    }

    /// Schedule-only `batch`/`threads` excluded; see
    /// [`CamYieldMcScenario::store_key`].
    fn store_key(&self) -> Option<Digest> {
        let mut w = DigestWriter::new(self.kind());
        w.usize(self.mc.trials)
            .word(self.mc.seed)
            .f64(self.capacity_bytes)
            .f64(self.write_bytes_per_second)
            .f64(self.leveling)
            .f64(self.leveling_sigma)
            .f64(self.endurance)
            .f64(self.endurance_sigma_decades)
            .f64(self.required_years)
            .word(u64::from(self.vth_bits))
            .f64(self.vth_lo)
            .f64(self.vth_hi)
            .f64(self.vth_sigma);
        Some(w.finish())
    }

    fn candidates(&self) -> Result<Vec<Candidate>, XldaError> {
        Ok(self.evaluate()?.candidates)
    }

    fn evaluate(&self) -> Result<Evaluation, XldaError> {
        let cols = self.outcomes_with(&self.mc.sweep_opts())?;
        let years = self.required_years;
        let lifetime = distribution(
            "lifetime",
            "years",
            "lifetime >= required_years",
            &cols[0],
            |x| x >= years,
        );
        let vth = distribution(
            "vth",
            "V",
            "programmed level reads back correctly",
            &cols[1],
            // The V_th column's yield is the read-back success rate,
            // which lives in the companion 0/1 column.
            {
                let _ = &cols[2];
                |x| x.is_finite()
            },
        );
        let read_yield = xlda_num::trial::yield_fraction(&cols[2], |x| x > 0.5);
        let vth = McDistribution {
            yield_fraction: read_yield,
            criterion: "programmed level reads back correctly",
            ..vth
        };
        let candidates = vec![
            fraction_candidate(
                &format!("NVM lifetime yield (>= {years} y)"),
                lifetime.yield_fraction,
            )?,
            fraction_candidate("V_th read-back yield", read_yield)?,
        ];
        Ok(Evaluation {
            candidates,
            distributions: vec![lifetime, vth],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Schedule;

    #[test]
    fn run_trials_concatenates_in_order() {
        let cols = run_trials_with(10, 1, 3, &SweepOptions::default(), 1, |batch, cols| {
            for (i, slot) in cols[0].iter_mut().enumerate() {
                *slot = batch.global_index(i) as f64;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(cols[0], (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn run_trials_propagates_errors() {
        let err = run_trials_with(8, 1, 2, &SweepOptions::default(), 1, |batch, _cols| {
            if batch.start() >= 4 {
                Err(XldaError::NonFinite {
                    stage: "test",
                    quantity: "q",
                })
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, XldaError::NonFinite { stage: "test", .. }));
    }

    #[test]
    fn cam_yield_matches_analytic_error() {
        let s = CamYieldMcScenario {
            mc: McParams {
                trials: 8192,
                ..McParams::default()
            },
            ..CamYieldMcScenario::default()
        };
        let eval = s.evaluate().unwrap();
        let dist = &eval.distributions[0];
        assert_eq!(dist.summary.trials, 8192);
        let mc_error = 1.0 - dist.yield_fraction;
        let analytic = xlda_evacam::variation::analytic_error_probability(
            &s.matchline(),
            &s.variation,
            s.cells,
            s.mismatches,
        );
        assert!(
            (mc_error - analytic).abs() < 0.02 + 0.3 * analytic,
            "mc {mc_error} vs analytic {analytic}"
        );
        // Margin is centered near (g_on - g_off)/g_on.
        let expect = (s.g_on - s.g_off) / s.g_on;
        assert!((dist.summary.mean - expect).abs() < 0.1 * expect);
    }

    #[test]
    fn mann_accuracy_degrades_with_relaxation_time() {
        let base = MannAccuracyMcScenario {
            mc: McParams {
                trials: 512,
                ..McParams::default()
            },
            hash_bits: 64,
            ..MannAccuracyMcScenario::default()
        };
        let short = MannAccuracyMcScenario {
            relax_decades: 0.5,
            ..base.clone()
        };
        let long = MannAccuracyMcScenario {
            relax_decades: 6.0,
            ..base
        };
        let acc_short = short.evaluate().unwrap().distributions[0].summary.mean;
        let acc_long = long.evaluate().unwrap().distributions[0].summary.mean;
        assert!(acc_long < acc_short, "short {acc_short} vs long {acc_long}");
        assert!(acc_short <= 0.95 && acc_long > 0.0);
    }

    #[test]
    fn mann_negative_relaxation_is_typed_error() {
        let s = MannAccuracyMcScenario {
            mc: McParams {
                trials: 8,
                ..McParams::default()
            },
            hash_bits: 4,
            relax_decades: -1.0,
            ..MannAccuracyMcScenario::default()
        };
        let err = s.evaluate().unwrap_err();
        assert!(
            matches!(
                err,
                XldaError::NonFinite {
                    stage: "rram.relax",
                    ..
                }
            ),
            "got {err:?}"
        );
        assert!(!err.is_infeasible());
    }

    #[test]
    fn nvm_lifetime_scales_with_traffic() {
        let base = NvmLifetimeMcScenario {
            mc: McParams {
                trials: 512,
                ..McParams::default()
            },
            ..NvmLifetimeMcScenario::default()
        };
        let heavy = NvmLifetimeMcScenario {
            write_bytes_per_second: base.write_bytes_per_second * 100.0,
            ..base.clone()
        };
        let light = base.evaluate().unwrap();
        let hot = heavy.evaluate().unwrap();
        assert!(light.distributions[0].summary.p50 > hot.distributions[0].summary.p50);
        // V_th sits inside the window and mostly reads back.
        let vth = &light.distributions[1];
        assert!(vth.summary.min > 0.0 && vth.summary.max < 2.0);
        // 8 levels over 1.2 V with sigma = 94 mV overlap substantially
        // (half-spacing is ~0.9 sigma): read-back yield is well below 1
        // but far above the 1/8 chance floor.
        assert!(vth.yield_fraction > 0.4 && vth.yield_fraction < 0.95);
    }

    #[test]
    fn zero_trials_is_rejected() {
        let s = CamYieldMcScenario {
            mc: McParams {
                trials: 0,
                ..McParams::default()
            },
            ..CamYieldMcScenario::default()
        };
        assert!(s.evaluate().is_err());
    }

    #[test]
    fn scenario_objects_expose_distributions() {
        let scenarios: Vec<Box<dyn Scenario>> = vec![
            Box::new(CamYieldMcScenario {
                mc: McParams {
                    trials: 64,
                    ..McParams::default()
                },
                cells: 32,
                ..CamYieldMcScenario::default()
            }),
            Box::new(MannAccuracyMcScenario {
                mc: McParams {
                    trials: 64,
                    ..McParams::default()
                },
                hash_bits: 16,
                ..MannAccuracyMcScenario::default()
            }),
            Box::new(NvmLifetimeMcScenario {
                mc: McParams {
                    trials: 64,
                    ..McParams::default()
                },
                ..NvmLifetimeMcScenario::default()
            }),
        ];
        for s in &scenarios {
            let eval = s.evaluate().unwrap();
            assert!(!eval.distributions.is_empty(), "{} has dists", s.kind());
            assert!(!eval.candidates.is_empty(), "{} has candidates", s.kind());
            // candidates() agrees with evaluate() (same trials, same seed).
            assert_eq!(s.candidates().unwrap(), eval.candidates);
            for d in &eval.distributions {
                assert!((0.0..=1.0).contains(&d.yield_fraction));
                assert_eq!(d.summary.trials + d.summary.nan_count, 64);
            }
        }
        // Deterministic scenarios report no distributions via the default.
        let hdc = crate::evaluate::HdcScenario::default();
        assert!(hdc.evaluate().unwrap().distributions.is_empty());
    }

    #[test]
    fn batch_and_schedule_do_not_change_results() {
        let s = MannAccuracyMcScenario {
            mc: McParams {
                trials: 100,
                ..McParams::default()
            },
            hash_bits: 8,
            ..MannAccuracyMcScenario::default()
        };
        let reference = s.outcomes_with(&SweepOptions::default()).unwrap();
        for batch in [1usize, 7, 64, 100] {
            for schedule in [Schedule::StaticChunks, Schedule::WorkStealing] {
                let v = MannAccuracyMcScenario {
                    mc: McParams { batch, ..s.mc },
                    ..s.clone()
                };
                let opts = SweepOptions::builder()
                    .schedule(schedule)
                    .threads(4)
                    .build();
                let got = v.outcomes_with(&opts).unwrap();
                assert_eq!(got, reference, "batch {batch} schedule {schedule:?}");
            }
        }
    }
}
