//! The cross-layer error type.
//!
//! Every layer below the DSE loop has its own typed error —
//! [`CamError`](xlda_evacam::CamError) for array-level CAM modeling,
//! [`RamError`](xlda_nvram::RamError) for NVM organization,
//! [`CircuitError`](xlda_circuit::CircuitError) for circuit-primitive
//! domains, [`CrossbarError`](xlda_crossbar::CrossbarError) for the
//! crossbar macro model. [`XldaError`] unifies them so a sweep over
//! thousands of design points can collect *why* each infeasible point
//! failed instead of panicking on the first one.
//!
//! Two failure families matter to DSE and are distinguished by
//! [`XldaError::is_infeasible`]:
//!
//! - **Infeasible** points are well-formed questions with a negative
//!   answer — e.g. no matchline length achieves the required sense
//!   margin. These are *results*: a sweep records them and moves on.
//! - **Invalid** points are malformed questions — zero-sized arrays,
//!   NaN inputs, non-finite intermediates. These usually indicate a bug
//!   in the sweep generator and deserve louder handling.

use crate::fom::Fom;
use xlda_circuit::CircuitError;
use xlda_crossbar::CrossbarError;
use xlda_evacam::CamError;
use xlda_nvram::RamError;

/// Any failure produced by cross-layer evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum XldaError {
    /// CAM array modeling failed.
    Cam(CamError),
    /// NVM array organization failed.
    Ram(RamError),
    /// A circuit primitive was driven outside its domain.
    Circuit(CircuitError),
    /// The crossbar macro model rejected its configuration.
    Crossbar(CrossbarError),
    /// A finite-input computation produced a non-finite intermediate.
    NonFinite {
        /// Evaluation stage (e.g. `"hdc_on_cam"`).
        stage: &'static str,
        /// The quantity that went non-finite (e.g. `"encode energy"`).
        quantity: &'static str,
    },
    /// An assembled candidate's figures of merit failed validation
    /// ([`Fom::is_valid`]): negative, non-finite, or out-of-range.
    InvalidFom {
        /// Candidate name.
        name: String,
        /// The offending figures of merit.
        fom: Fom,
    },
}

impl XldaError {
    /// Whether this error marks an *infeasible* design point (a valid
    /// question whose answer is "cannot be built") rather than an
    /// *invalid* one (a malformed configuration or numerical defect).
    ///
    /// Sweeps typically tally infeasible points as ordinary results and
    /// escalate invalid ones.
    pub fn is_infeasible(&self) -> bool {
        match self {
            XldaError::Cam(CamError::SenseMarginUnachievable { .. })
            | XldaError::Cam(CamError::UnsupportedData { .. })
            | XldaError::Cam(CamError::UnsupportedMatch { .. })
            | XldaError::Ram(RamError::CapacityBelowWord) => true,
            XldaError::Cam(CamError::EmptyArray)
            | XldaError::Ram(RamError::EmptyConfig)
            | XldaError::Circuit(_)
            | XldaError::Crossbar(_)
            | XldaError::NonFinite { .. }
            | XldaError::InvalidFom { .. } => false,
        }
    }
}

impl From<CamError> for XldaError {
    fn from(e: CamError) -> Self {
        XldaError::Cam(e)
    }
}

impl From<RamError> for XldaError {
    fn from(e: RamError) -> Self {
        XldaError::Ram(e)
    }
}

impl From<CircuitError> for XldaError {
    fn from(e: CircuitError) -> Self {
        XldaError::Circuit(e)
    }
}

impl From<CrossbarError> for XldaError {
    fn from(e: CrossbarError) -> Self {
        XldaError::Crossbar(e)
    }
}

impl From<xlda_device::rram::RramError> for XldaError {
    fn from(e: xlda_device::rram::RramError) -> Self {
        // The device crate sits below this one and cannot name XldaError;
        // its single failure mode (negative/non-finite relaxation time)
        // is an invalid numeric input, which is what NonFinite marks.
        match e {
            xlda_device::rram::RramError::InvalidRelaxTime { .. } => XldaError::NonFinite {
                stage: "rram.relax",
                quantity: "relaxation decades",
            },
        }
    }
}

impl std::fmt::Display for XldaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XldaError::Cam(e) => write!(f, "CAM model: {e}"),
            XldaError::Ram(e) => write!(f, "RAM model: {e}"),
            XldaError::Circuit(e) => write!(f, "circuit model: {e}"),
            XldaError::Crossbar(e) => write!(f, "crossbar model: {e}"),
            XldaError::NonFinite { stage, quantity } => {
                write!(f, "{stage}: {quantity} evaluated to a non-finite value")
            }
            XldaError::InvalidFom { name, fom } => {
                write!(f, "candidate {name:?} produced invalid FOMs: {fom:?}")
            }
        }
    }
}

impl std::error::Error for XldaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XldaError::Cam(e) => Some(e),
            XldaError::Ram(e) => Some(e),
            XldaError::Circuit(e) => Some(e),
            XldaError::Crossbar(e) => Some(e),
            XldaError::NonFinite { .. } | XldaError::InvalidFom { .. } => None,
        }
    }
}

/// Validates a candidate FOM bundle, converting the boolean
/// [`Fom::is_valid`] into a typed, named error.
pub fn validate_fom(name: &str, fom: Fom) -> Result<Fom, XldaError> {
    if fom.is_valid() {
        Ok(fom)
    } else {
        Err(XldaError::InvalidFom {
            name: name.to_string(),
            fom,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn from_impls_wrap_layer_errors() {
        let e: XldaError = CamError::EmptyArray.into();
        assert!(matches!(e, XldaError::Cam(CamError::EmptyArray)));
        let e: XldaError = RamError::EmptyConfig.into();
        assert!(matches!(e, XldaError::Ram(RamError::EmptyConfig)));
        let e: XldaError = CircuitError::NoOutputs.into();
        assert!(matches!(e, XldaError::Circuit(CircuitError::NoOutputs)));
        let e: XldaError = CrossbarError::ZeroAdcShare.into();
        assert!(matches!(
            e,
            XldaError::Crossbar(CrossbarError::ZeroAdcShare)
        ));
        let e: XldaError = xlda_device::rram::RramError::InvalidRelaxTime { decades: -2.0 }.into();
        assert!(matches!(
            e,
            XldaError::NonFinite {
                stage: "rram.relax",
                ..
            }
        ));
        assert!(!e.is_infeasible());
    }

    #[test]
    fn infeasible_vs_invalid_split() {
        let infeasible: XldaError = CamError::SenseMarginUnachievable {
            required_resolution: 48,
        }
        .into();
        assert!(infeasible.is_infeasible());
        let invalid: XldaError = CamError::EmptyArray.into();
        assert!(!invalid.is_infeasible());
        assert!(!XldaError::NonFinite {
            stage: "x",
            quantity: "y"
        }
        .is_infeasible());
    }

    #[test]
    fn display_and_source_chain() {
        let e: XldaError = CamError::EmptyArray.into();
        assert!(e.to_string().contains("CAM model"));
        assert!(e.source().is_some());
        let nf = XldaError::NonFinite {
            stage: "stage",
            quantity: "q",
        };
        assert!(nf.to_string().contains("non-finite"));
        assert!(nf.source().is_none());
    }

    #[test]
    fn validate_fom_names_the_candidate() {
        let bad = Fom {
            latency_s: f64::NAN,
            energy_j: 1.0,
            area_mm2: 0.0,
            accuracy: 0.9,
        };
        match validate_fom("broken", bad) {
            Err(XldaError::InvalidFom { name, .. }) => assert_eq!(name, "broken"),
            other => panic!("expected InvalidFom, got {other:?}"),
        }
        let good = Fom {
            latency_s: 1.0,
            energy_j: 1.0,
            area_mm2: 0.0,
            accuracy: 0.9,
        };
        assert!(validate_fom("ok", good).is_ok());
    }
}
