//! Persistent, content-addressed FOM result store.
//!
//! Memoization (`xlda_num::memo`) stops at the circuit constructors:
//! every request still re-evaluates full sweep points, so the serve
//! tier's warm-hit-rate-1.0 story only holds within one process
//! lifetime. This module caches at the *result* level and persists it:
//!
//! - [`Digest`] — a 128-bit content address of a scenario's complete
//!   parameter set, derived through [`DigestWriter`] from the scenario
//!   kind tag, the tech/config fingerprints, and every `f64` parameter
//!   quantized by the same 44-bit policy the memo caches use
//!   ([`memo::quantize`]). Two scenarios that would evaluate
//!   identically share a digest; anything that can change a result
//!   changes it. Schedule-only knobs (MC `batch`/`threads`) are
//!   deliberately excluded — results are bit-identical across them by
//!   the trial-stream contract, so they must hit the same entry.
//! - [`ResultStore`] — a sharded in-memory index over an append-only
//!   on-disk segment file. Records are FNV-checksummed and loaded
//!   crash-safely: a torn tail (the process was killed mid-append) or a
//!   corrupted record truncates the file back to the last good record
//!   instead of poisoning the store. Values round-trip `f64` results
//!   bit-exactly (`to_bits`/`from_bits`), so a stored result is
//!   indistinguishable from a recomputed one — pinned by
//!   `tests/store_transparency.rs`.
//! - [`ResultStore::sweep`] — the sweep-engine integration: a
//!   `par_try_map` whose evaluator consults the store before
//!   evaluating and appends every fresh result.
//! - [`successive_halving`] — incremental DSE on top of the store:
//!   rank a grid by evaluating a strided fraction first, then refine
//!   around the survivors, halving the stride each round. Exact for
//!   every point it touches because misses fall through to the normal
//!   engine.
//!
//! # Invalidation
//!
//! The on-disk header carries a format version (record layout) and a
//! model version ([`MODEL_VERSION`]). Bump the model version whenever a
//! constructor or evaluator changes numerically: every existing store
//! then resets itself (truncates to a fresh header) on next open
//! instead of serving stale FOMs. See DESIGN.md §13.
//!
//! # Stats plumbing
//!
//! [`attach`] registers the process-global store with the memo registry
//! under `core.result_store`, so its hit/miss/entry counters appear in
//! every existing `CacheSnapshot` consumer (sweep stats, the serve
//! `stats`/`metrics` endpoints) with **no** new plumbing. The clear
//! hook is a no-op on purpose: `memo::clear_all()` resets *derivation*
//! caches between measurements; the durable result store is cleared
//! only by deleting its file.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, RwLock};

use crate::error::XldaError;
use crate::evaluate::{Evaluation, Scenario};
use crate::fom::{Candidate, Fom};
use crate::mc::McDistribution;
use crate::order::desc_nan_last;
use crate::sweep::{memo, par_try_map_with, PointFailure, SweepOptions};
use crate::triage::{rank, Objective};
use xlda_num::trial::Summary;

/// On-disk record layout version. Bump when the framing or payload
/// encoding changes shape.
pub const FORMAT_VERSION: u32 = 1;

/// Model/semantics version baked into both the file header and every
/// digest derivation. Bump whenever any evaluator, constructor, or
/// scenario default changes numerically: stores written by older code
/// reset themselves on open instead of serving stale results.
pub const MODEL_VERSION: u32 = 1;

/// File magic; the trailing byte versions the header layout itself.
const MAGIC: &[u8; 8] = b"XLDASTR\x01";

/// Header length: magic + format version + model version.
pub const HEADER_LEN: u64 = 16;

/// Sanity cap on one record's payload; a corrupt length field must not
/// drive a multi-gigabyte allocation.
const MAX_RECORD: u32 = 16 << 20;

/// Shards in the in-memory index (same scale as `xlda_num::memo`).
const SHARDS: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;
/// Second-lane offset basis (low half of the 128-bit FNV basis), giving
/// the digest an independent stream over the same words.
const FNV_OFFSET_LO: u64 = 0x6c62_272e_07bb_0142;

// ---------------------------------------------------------------------------
// Digest
// ---------------------------------------------------------------------------

/// A 128-bit content address of one scenario's full parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    /// High 64 bits (primary FNV-1a lane).
    pub hi: u64,
    /// Low 64 bits (independent second lane).
    pub lo: u64,
}

impl Digest {
    /// Renders the digest as 32 lowercase hex digits (`hi` then `lo`),
    /// the wire format the serve `refine` request kind exchanges.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`to_hex`](Digest::to_hex) form.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(Digest {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

/// Incremental digest builder used by [`Scenario::store_key`]
/// implementations.
///
/// Folds words into two FNV-1a lanes with independent offsets (the
/// second lane also rotates each word, so the lanes never degenerate
/// into copies). `f64` parameters go through [`memo::quantize`] first:
/// the same 44-significant-bit policy the memo caches use, so
/// sub-grid-noise-equal parameters share a key while distinct model
/// parameters never collide in practice.
#[derive(Debug, Clone)]
pub struct DigestWriter {
    hi: u64,
    lo: u64,
    words: u64,
}

impl DigestWriter {
    /// Starts a digest for one scenario kind. The kind tag, the model
    /// version, and the digest schema are all part of the address.
    pub fn new(kind: &str) -> Self {
        let mut w = Self {
            hi: FNV_OFFSET,
            lo: FNV_OFFSET_LO,
            words: 0,
        };
        w.word(u64::from(MODEL_VERSION));
        w.bytes(kind.as_bytes());
        w
    }

    /// Folds one raw 64-bit word.
    pub fn word(&mut self, v: u64) -> &mut Self {
        self.hi = (self.hi ^ v).wrapping_mul(FNV_PRIME);
        self.lo = (self.lo ^ v.rotate_left(31)).wrapping_mul(FNV_PRIME);
        self.words += 1;
        self
    }

    /// Folds a usize parameter.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.word(v as u64)
    }

    /// Folds an `f64` parameter under the memo quantization policy.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.word(memo::quantize(v))
    }

    /// Folds a byte string (length-prefixed, so `("ab","c")` and
    /// `("a","bc")` cannot collide).
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.word(b.len() as u64);
        for &byte in b {
            self.word(u64::from(byte));
        }
        self
    }

    /// Finishes the digest; the folded word count guards against
    /// extension ambiguity.
    pub fn finish(&self) -> Digest {
        let mut hi = (self.hi ^ self.words).wrapping_mul(FNV_PRIME);
        let mut lo = (self.lo ^ self.words.rotate_left(31)).wrapping_mul(FNV_PRIME);
        // One avalanche round per lane so near-identical folds differ
        // in more than the low bits.
        hi ^= hi >> 29;
        hi = hi.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        lo ^= lo >> 29;
        lo = lo.wrapping_mul(0x94d0_49bb_1331_11eb);
        Digest {
            hi: hi ^ (hi >> 32),
            lo: lo ^ (lo >> 32),
        }
    }
}

// ---------------------------------------------------------------------------
// Record serialization (hand-rolled, little-endian, bit-exact f64)
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    put_u16(out, b.len().min(u16::MAX as usize) as u16);
    out.extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
}

/// Byte-walking reader over one record payload; every getter returns
/// `None` past the end, which the loader treats as a corrupt record.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
}

fn checksum_bytes(payload: &[u8]) -> u64 {
    payload.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

fn encode_record(digest: Digest, kind: &str, eval: &Evaluation) -> Vec<u8> {
    let mut payload = Vec::with_capacity(128);
    put_u64(&mut payload, digest.hi);
    put_u64(&mut payload, digest.lo);
    put_str(&mut payload, kind);
    put_u32(&mut payload, eval.candidates.len() as u32);
    for c in &eval.candidates {
        put_str(&mut payload, &c.name);
        put_f64(&mut payload, c.fom.latency_s);
        put_f64(&mut payload, c.fom.energy_j);
        put_f64(&mut payload, c.fom.area_mm2);
        put_f64(&mut payload, c.fom.accuracy);
    }
    put_u32(&mut payload, eval.distributions.len() as u32);
    for d in &eval.distributions {
        put_str(&mut payload, d.name);
        put_str(&mut payload, d.unit);
        put_str(&mut payload, d.criterion);
        put_u64(&mut payload, d.summary.trials as u64);
        put_u64(&mut payload, d.summary.nan_count as u64);
        for v in [
            d.summary.mean,
            d.summary.std_dev,
            d.summary.min,
            d.summary.max,
            d.summary.p5,
            d.summary.p50,
            d.summary.p95,
        ] {
            put_f64(&mut payload, v);
        }
        put_f64(&mut payload, d.yield_fraction);
        put_u64(&mut payload, d.checksum);
    }
    let mut record = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut record, payload.len() as u32);
    record.extend_from_slice(&payload);
    put_u64(&mut record, checksum_bytes(&payload));
    record
}

fn decode_payload(payload: &[u8]) -> Option<(Digest, Evaluation)> {
    let mut c = Cursor::new(payload);
    let digest = Digest {
        hi: c.u64()?,
        lo: c.u64()?,
    };
    let _kind = c.str()?;
    let n_cands = c.u32()? as usize;
    if n_cands > MAX_RECORD as usize {
        return None;
    }
    let mut candidates = Vec::with_capacity(n_cands.min(1024));
    for _ in 0..n_cands {
        let name = c.str()?;
        let fom = Fom {
            latency_s: c.f64()?,
            energy_j: c.f64()?,
            area_mm2: c.f64()?,
            accuracy: c.f64()?,
        };
        candidates.push(Candidate { name, fom });
    }
    let n_dists = c.u32()? as usize;
    if n_dists > MAX_RECORD as usize {
        return None;
    }
    let mut distributions = Vec::with_capacity(n_dists.min(64));
    for _ in 0..n_dists {
        let name = intern(&c.str()?);
        let unit = intern(&c.str()?);
        let criterion = intern(&c.str()?);
        let trials = c.u64()? as usize;
        let nan_count = c.u64()? as usize;
        let summary = Summary {
            trials,
            nan_count,
            mean: c.f64()?,
            std_dev: c.f64()?,
            min: c.f64()?,
            max: c.f64()?,
            p5: c.f64()?,
            p50: c.f64()?,
            p95: c.f64()?,
        };
        let yield_fraction = c.f64()?;
        let checksum = c.u64()?;
        distributions.push(McDistribution {
            name,
            unit,
            criterion,
            summary,
            yield_fraction,
            checksum,
        });
    }
    if c.at != payload.len() {
        return None; // trailing garbage: not a record this version wrote
    }
    Some((
        digest,
        Evaluation {
            candidates,
            distributions,
        },
    ))
}

/// Interns a distribution label so deserialized [`McDistribution`]s can
/// carry the `&'static str` fields the in-process type uses. The label
/// vocabulary is tiny and fixed (a handful of outcome names per MC
/// scenario kind), so the one-time leak per unique string is bounded.
fn intern(s: &str) -> &'static str {
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = pool.iter().find(|&&p| p == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.push(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Construction knobs for [`ResultStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// In-memory index bound; `0` = unbounded. When exceeded, the
    /// oldest entries (insertion order) are evicted from the index —
    /// they stay on disk and reload (subject to the same bound) on the
    /// next open.
    pub max_entries: usize,
}

/// What loading the segment file found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Complete, checksum-valid records restored into the index.
    pub recovered_records: u64,
    /// Bytes truncated off the tail (torn final append or corruption).
    pub truncated_bytes: u64,
    /// The file had a different format/model version (or was not a
    /// store at all) and was reset to an empty store.
    pub reset: bool,
}

/// Counters for one store at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the index.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Fresh results appended (disk + index).
    pub inserted: u64,
    /// Entries evicted from the in-memory index by `max_entries`.
    pub evictions: u64,
    /// Entries currently indexed.
    pub entries: u64,
    /// Bytes in the segment file (header + records).
    pub persisted_bytes: u64,
    /// Disk appends that failed; the evaluation still succeeded, the
    /// result just was not persisted.
    pub io_errors: u64,
}

impl StoreStats {
    /// Hits over total lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A persistent, content-addressed [`Evaluation`] store: sharded
/// in-memory index over an append-only, FNV-checksummed segment file.
pub struct ResultStore {
    shards: Vec<RwLock<HashMap<Digest, Evaluation>>>,
    /// Insertion order for FIFO eviction under `max_entries`.
    order: Mutex<VecDeque<Digest>>,
    /// `None` for a purely in-memory store.
    file: Option<Mutex<File>>,
    path: Option<PathBuf>,
    opts: StoreOptions,
    load: LoadReport,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserted: AtomicU64,
    evictions: AtomicU64,
    persisted_bytes: AtomicU64,
    io_errors: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResultStore {
    fn empty(opts: StoreOptions) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            order: Mutex::new(VecDeque::new()),
            file: None,
            path: None,
            opts,
            load: LoadReport::default(),
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persisted_bytes: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// A store with no backing file (tests, transient refine sessions).
    pub fn in_memory() -> Self {
        Self::empty(StoreOptions::default())
    }

    /// Opens (creating if needed) the store at `path` with default
    /// options and replays its records into the index.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with(path, StoreOptions::default())
    }

    /// [`open`](ResultStore::open) with explicit [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, missing parent
    /// directory). Corruption never errors: torn tails and bad records
    /// are truncated away, incompatible versions reset the file, and
    /// both outcomes are reported in [`load_report`](Self::load_report).
    pub fn open_with(path: impl AsRef<Path>, opts: StoreOptions) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        // O_APPEND: every record lands atomically at EOF, so two store
        // instances on one path interleave at record granularity
        // instead of corrupting each other (reads still honor seek).
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut store = Self::empty(opts);
        store.load = store.replay(&mut file)?;
        store
            .persisted_bytes
            .store(file.metadata()?.len(), Ordering::Relaxed);
        store.path = Some(path);
        store.file = Some(Mutex::new(file));
        Ok(store)
    }

    /// Replays the segment file into the empty index, truncating the
    /// torn/corrupt tail and resetting incompatible files.
    fn replay(&self, file: &mut File) -> std::io::Result<LoadReport> {
        let mut report = LoadReport::default();
        let len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        let have_header = len >= HEADER_LEN && {
            file.read_exact(&mut header)?;
            &header[..8] == MAGIC
                && u32::from_le_bytes(header[8..12].try_into().unwrap()) == FORMAT_VERSION
                && u32::from_le_bytes(header[12..16].try_into().unwrap()) == MODEL_VERSION
        };
        if !have_header {
            // Not ours, or written by a different format/model version:
            // reset rather than serve stale results.
            report.reset = len > 0;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut h = Vec::with_capacity(HEADER_LEN as usize);
            h.extend_from_slice(MAGIC);
            h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            h.extend_from_slice(&MODEL_VERSION.to_le_bytes());
            file.write_all(&h)?;
            file.sync_data().ok();
            return Ok(report);
        }
        let mut buf = Vec::with_capacity((len - HEADER_LEN) as usize);
        file.read_to_end(&mut buf)?;
        let mut at = 0usize;
        let mut good_end = 0usize; // relative to the record region
        while at + 4 <= buf.len() {
            let rec_len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
            if rec_len > MAX_RECORD {
                break;
            }
            let payload_start = at + 4;
            let payload_end = match payload_start.checked_add(rec_len as usize) {
                Some(e) if e + 8 <= buf.len() => e,
                _ => break, // torn tail: record extends past EOF
            };
            let payload = &buf[payload_start..payload_end];
            let want = u64::from_le_bytes(buf[payload_end..payload_end + 8].try_into().unwrap());
            if checksum_bytes(payload) != want {
                break; // bit flip; everything after an append-only break is suspect
            }
            let Some((digest, eval)) = decode_payload(payload) else {
                break;
            };
            self.index_insert(digest, eval);
            report.recovered_records += 1;
            at = payload_end + 8;
            good_end = at;
        }
        let good_len = HEADER_LEN + good_end as u64;
        if good_len < len {
            report.truncated_bytes = len - good_len;
            file.set_len(good_len)?;
            file.sync_data().ok();
        }
        file.seek(SeekFrom::End(0))?;
        Ok(report)
    }

    fn shard(&self, d: &Digest) -> &RwLock<HashMap<Digest, Evaluation>> {
        &self.shards[(d.hi as usize) % SHARDS]
    }

    /// Inserts into the index only (no disk, no `inserted` counter);
    /// shared by replay and [`insert`](Self::insert). First write wins,
    /// like the memo caches — content addressing makes duplicates
    /// identical anyway.
    fn index_insert(&self, digest: Digest, eval: Evaluation) -> bool {
        let fresh = {
            let mut shard = self
                .shard(&digest)
                .write()
                .unwrap_or_else(|e| e.into_inner());
            match shard.entry(digest) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(eval);
                    true
                }
            }
        };
        if !fresh {
            return false;
        }
        self.entries.fetch_add(1, Ordering::Relaxed);
        if self.opts.max_entries > 0 {
            let mut order = self.order.lock().unwrap_or_else(|e| e.into_inner());
            order.push_back(digest);
            while order.len() > self.opts.max_entries {
                if let Some(old) = order.pop_front() {
                    let removed = self
                        .shard(&old)
                        .write()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&old)
                        .is_some();
                    if removed {
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        true
    }

    /// Looks up a digest, counting the hit or miss.
    pub fn get(&self, digest: &Digest) -> Option<Evaluation> {
        let hit = self
            .shard(digest)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(digest)
            .cloned();
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether the index holds `digest`, without touching the counters.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.shard(digest)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(digest)
    }

    /// Stores one evaluated result: appends the checksummed record to
    /// the segment file (one `write(2)` in append mode, so concurrent
    /// writers interleave at record granularity) and indexes it.
    pub fn insert(&self, digest: Digest, kind: &str, eval: &Evaluation) {
        if !self.index_insert(digest, eval.clone()) {
            return; // already present; disk already has it (or will)
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        if let Some(file) = &self.file {
            let record = encode_record(digest, kind, eval);
            let mut f = file.lock().unwrap_or_else(|e| e.into_inner());
            match f.write_all(&record) {
                Ok(()) => {
                    self.persisted_bytes
                        .fetch_add(record.len() as u64, Ordering::Relaxed);
                }
                Err(_) => {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Flushes the segment file to stable storage.
    pub fn flush(&self) {
        if let Some(file) = &self.file {
            let f = file.lock().unwrap_or_else(|e| e.into_inner());
            let _ = f.sync_data();
        }
    }

    /// Evaluates `scenario` through the store: a digest hit returns the
    /// stored result (bit-exact, indistinguishable from recomputing);
    /// a miss falls through to [`Scenario::evaluate`] and persists the
    /// result. Scenarios without a [`Scenario::store_key`] bypass the
    /// store entirely.
    ///
    /// # Errors
    ///
    /// Exactly [`Scenario::evaluate`]'s contract; errors are never
    /// cached (a transiently infeasible point stays re-evaluable).
    pub fn evaluate_cached(&self, scenario: &dyn Scenario) -> Result<Evaluation, XldaError> {
        let Some(digest) = scenario.store_key() else {
            return scenario.evaluate();
        };
        if let Some(hit) = self.get(&digest) {
            return Ok(hit);
        }
        let eval = scenario.evaluate()?;
        self.insert(digest, scenario.kind(), &eval);
        Ok(eval)
    }

    /// Sweeps `scenarios` on the parallel engine with the store
    /// consulted before every evaluation (`par_try_map` + per-point
    /// containment semantics).
    pub fn sweep<S: Scenario + Sync>(
        &self,
        scenarios: &[S],
        opts: &SweepOptions,
    ) -> Vec<Result<Evaluation, PointFailure<XldaError>>> {
        par_try_map_with(scenarios, |s| self.evaluate_cached(s), opts)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            persisted_bytes: self.persisted_bytes.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }

    /// Entries currently indexed.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// What the open-time replay found (recovered/truncated/reset).
    pub fn load_report(&self) -> LoadReport {
        self.load
    }

    /// Backing file path, if persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

// ---------------------------------------------------------------------------
// Global attachment (CacheSnapshot plumbing)
// ---------------------------------------------------------------------------

static GLOBAL: RwLock<Option<Arc<ResultStore>>> = RwLock::new(None);
static REGISTER: Once = Once::new();

/// Installs `store` as the process-global result store and registers it
/// with the memo registry as `core.result_store`, so its hit/miss/entry
/// counters surface through every existing [`memo::CacheSnapshot`]
/// consumer (sweep stats, serve `stats`/`metrics`). The registered
/// clear hook is a no-op: `memo::clear_all()` resets derivation caches,
/// not durable results.
pub fn attach(store: Arc<ResultStore>) {
    REGISTER.call_once(|| {
        memo::register(
            "core.result_store",
            || match &*GLOBAL.read().unwrap_or_else(|e| e.into_inner()) {
                Some(s) => {
                    let st = s.stats();
                    (st.hits, st.misses, st.entries)
                }
                None => (0, 0, 0),
            },
            || {},
        );
    });
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(store);
}

/// Removes the process-global store (the registry probe reads zeros).
pub fn detach() {
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The process-global store, if one is attached.
pub fn global() -> Option<Arc<ResultStore>> {
    GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone()
}

// ---------------------------------------------------------------------------
// Successive-halving triage (incremental DSE)
// ---------------------------------------------------------------------------

/// Knobs for [`successive_halving`].
#[derive(Debug, Clone, Copy)]
pub struct HalvingConfig {
    /// Fraction of the grid evaluated in the first round (stride
    /// `ceil(1/fraction)`); clamped to `(0, 1]`. Default 0.25.
    pub fraction: f64,
    /// Ranking objective scoring each evaluated point by its best
    /// candidate.
    pub objective: Objective,
}

impl Default for HalvingConfig {
    fn default() -> Self {
        Self {
            fraction: 0.25,
            objective: Objective::latency_first(None),
        }
    }
}

/// One evaluated, scored grid point in a halving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct HalvingRanked {
    /// Index into the input grid.
    pub index: usize,
    /// Best candidate's name at this point (empty when the point
    /// failed to evaluate).
    pub name: String,
    /// Best candidate's objective score (NaN when the point failed).
    pub score: f64,
}

/// What [`successive_halving`] evaluated and concluded.
#[derive(Debug)]
pub struct HalvingOutcome {
    /// Evaluated points, best first (failed points rank last).
    pub ranking: Vec<HalvingRanked>,
    /// Per-grid-index results; `None` = never evaluated (pruned).
    pub results: Vec<Option<Result<Evaluation, PointFailure<XldaError>>>>,
    /// Points actually evaluated (store hits included).
    pub evaluated: usize,
    /// Total grid size.
    pub grid: usize,
}

/// Ranks a scenario grid by evaluating a strided fraction first, then
/// refining around the survivors with the stride halved each round
/// until it reaches 1. Every touched point is evaluated exactly
/// (store hit or fresh engine evaluation — bit-identical either way),
/// so the returned scores are true scores; only *pruned* points are
/// approximate in the sense of never being scored. With a store warmed
/// by a prior full sweep, the whole procedure is pure lookups.
pub fn successive_halving<S: Scenario + Sync>(
    store: &ResultStore,
    scenarios: &[S],
    opts: &SweepOptions,
    config: &HalvingConfig,
) -> HalvingOutcome {
    let n = scenarios.len();
    let mut results: Vec<Option<Result<Evaluation, PointFailure<XldaError>>>> =
        (0..n).map(|_| None).collect();
    if n == 0 {
        return HalvingOutcome {
            ranking: Vec::new(),
            results,
            evaluated: 0,
            grid: 0,
        };
    }
    let fraction = if config.fraction.is_finite() {
        config.fraction.clamp(1e-6, 1.0)
    } else {
        0.25
    };
    let mut stride = ((1.0 / fraction).ceil() as usize).clamp(1, n);
    let mut frontier: Vec<usize> = (0..n).step_by(stride).collect();
    let score_of = |r: &Result<Evaluation, PointFailure<XldaError>>| -> f64 {
        match r {
            Ok(ev) => rank(&ev.candidates, &config.objective)
                .first()
                .map_or(f64::NAN, |best| best.score),
            Err(_) => f64::NAN,
        }
    };
    loop {
        let todo: Vec<usize> = frontier
            .iter()
            .copied()
            .filter(|&i| results[i].is_none())
            .collect();
        if !todo.is_empty() {
            let batch: Vec<&S> = todo.iter().map(|&i| &scenarios[i]).collect();
            let outs = par_try_map_with(&batch, |s| store.evaluate_cached(*s), opts);
            for (&i, out) in todo.iter().zip(outs) {
                results[i] = Some(out);
            }
        }
        if stride == 1 {
            break;
        }
        // Keep the top half of the current frontier (at least one) and
        // refine around each survivor at half the stride.
        let mut scored: Vec<(usize, f64)> = frontier
            .iter()
            .map(|&i| {
                let s = results[i].as_ref().map_or(f64::NAN, &score_of);
                (i, s)
            })
            .collect();
        scored.sort_by(|a, b| desc_nan_last(a.1, b.1).then_with(|| a.0.cmp(&b.0)));
        let keep = scored.len().div_ceil(2);
        stride /= 2;
        let mut next = Vec::new();
        for &(i, _) in scored.iter().take(keep) {
            for j in [i.saturating_sub(stride), i, (i + stride).min(n - 1)] {
                if !next.contains(&j) {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
    }
    let mut ranking: Vec<HalvingRanked> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
        .map(|(index, r)| match r {
            Ok(ev) => {
                let best = rank(&ev.candidates, &config.objective);
                HalvingRanked {
                    index,
                    name: best.first().map(|b| b.name.clone()).unwrap_or_default(),
                    score: best.first().map_or(f64::NAN, |b| b.score),
                }
            }
            Err(_) => HalvingRanked {
                index,
                name: String::new(),
                score: f64::NAN,
            },
        })
        .collect();
    let evaluated = ranking.len();
    ranking.sort_by(|a, b| desc_nan_last(a.score, b.score).then_with(|| a.index.cmp(&b.index)));
    HalvingOutcome {
        ranking,
        results,
        evaluated,
        grid: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::HdcScenario;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xlda_store_unit_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = DigestWriter::new("hdc").f64(1.25).usize(26).finish();
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"a".repeat(31)), None);
    }

    #[test]
    fn digest_separates_kind_and_params() {
        let a = DigestWriter::new("hdc").usize(26).finish();
        let b = DigestWriter::new("mann").usize(26).finish();
        let c = DigestWriter::new("hdc").usize(27).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Sub-quantization noise collapses, like the memo keys.
        let x = DigestWriter::new("hdc").f64(1.0).finish();
        let y = DigestWriter::new("hdc").f64(1.0 + 1e-15).finish();
        assert_eq!(x, y);
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let eval = HdcScenario::default().evaluate().unwrap();
        let d = HdcScenario::default().store_key().unwrap();
        let rec = encode_record(d, "hdc", &eval);
        let payload = &rec[4..rec.len() - 8];
        let (got_d, got_eval) = decode_payload(payload).unwrap();
        assert_eq!(got_d, d);
        assert_eq!(got_eval, eval);
    }

    #[test]
    fn in_memory_store_hits_after_insert() {
        let store = ResultStore::in_memory();
        let s = HdcScenario::default();
        let first = store.evaluate_cached(&s).unwrap();
        let second = store.evaluate_cached(&s).unwrap();
        assert_eq!(first, second);
        let st = store.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert_eq!(st.hit_rate(), 0.5);
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let mut p = tmp("evict");
        p.set_extension("bin");
        let _ = std::fs::remove_file(&p);
        let store = ResultStore::open_with(&p, StoreOptions { max_entries: 2 }).expect("open");
        let ev = Evaluation {
            candidates: vec![],
            distributions: vec![],
        };
        for i in 0..4u64 {
            store.insert(Digest { hi: i, lo: i }, "t", &ev);
        }
        let st = store.stats();
        assert_eq!(st.entries, 2);
        assert_eq!(st.evictions, 2);
        assert!(!store.contains(&Digest { hi: 0, lo: 0 }));
        assert!(store.contains(&Digest { hi: 3, lo: 3 }));
        // Disk keeps everything; reload re-applies the bound.
        drop(store);
        let store = ResultStore::open_with(&p, StoreOptions { max_entries: 2 }).expect("reopen");
        assert_eq!(store.load_report().recovered_records, 4);
        assert_eq!(store.stats().entries, 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn halving_evaluates_a_fraction_and_is_exact() {
        let grid: Vec<HdcScenario> = (0..16)
            .map(|i| HdcScenario {
                classes: 10 + i,
                ..HdcScenario::default()
            })
            .collect();
        let store = ResultStore::in_memory();
        let out = successive_halving(
            &store,
            &grid,
            &SweepOptions::builder().threads(1).build(),
            &HalvingConfig::default(),
        );
        assert_eq!(out.grid, 16);
        assert!(out.evaluated < 16, "halving must prune: {}", out.evaluated);
        assert!(out.evaluated >= 4, "first round covers the stride sample");
        // Every touched point is exact.
        for r in out.ranking.iter() {
            let direct = grid[r.index].evaluate().unwrap();
            let stored = out.results[r.index].as_ref().unwrap().as_ref().unwrap();
            assert_eq!(stored, &direct);
        }
        // Warmed store: a rerun is pure lookups.
        let warm = ResultStore::in_memory();
        for s in &grid {
            warm.insert(s.store_key().unwrap(), s.kind(), &s.evaluate().unwrap());
        }
        let before = warm.stats();
        let again = successive_halving(
            &warm,
            &grid,
            &SweepOptions::builder().threads(1).build(),
            &HalvingConfig::default(),
        );
        let after = warm.stats();
        assert_eq!(after.misses, before.misses, "warm halving must not miss");
        assert_eq!(again.evaluated, out.evaluated);
        assert_eq!(
            again.ranking.first().map(|r| r.index),
            out.ranking.first().map(|r| r.index)
        );
    }
}
