//! Pareto-front extraction over evaluated candidates.

use crate::fom::Candidate;

/// Indices of the Pareto-optimal candidates (not dominated by any other).
///
/// Order follows the input. Duplicate FOMs all survive (none strictly
/// dominates its copy).
pub fn pareto_front(candidates: &[Candidate]) -> Vec<usize> {
    (0..candidates.len())
        .filter(|&i| {
            !candidates
                .iter()
                .enumerate()
                .any(|(j, c)| j != i && c.fom.dominates(&candidates[i].fom))
        })
        .collect()
}

/// Splits candidates into Pareto layers: layer 0 is the front, layer 1 is
/// the front once layer 0 is removed, and so on.
pub fn pareto_layers(candidates: &[Candidate]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let layer: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && candidates[j].fom.dominates(&candidates[i].fom))
            })
            .collect();
        if layer.is_empty() {
            // Cannot happen with a strict dominance relation, but guard
            // against pathological inputs (e.g. NaN) to avoid looping.
            layers.push(remaining.clone());
            break;
        }
        remaining.retain(|i| !layer.contains(i));
        layers.push(layer);
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::Fom;

    fn cand(name: &str, l: f64, e: f64, acc: f64) -> Candidate {
        Candidate::new(
            name,
            Fom {
                latency_s: l,
                energy_j: e,
                area_mm2: 1.0,
                accuracy: acc,
            },
        )
    }

    #[test]
    fn front_excludes_dominated() {
        let cs = vec![
            cand("good", 1.0, 1.0, 0.9),
            cand("dominated", 2.0, 2.0, 0.8),
            cand("tradeoff", 0.5, 3.0, 0.9),
        ];
        let front = pareto_front(&cs);
        assert_eq!(front, vec![0, 2]);
    }

    #[test]
    fn identical_points_coexist() {
        let cs = vec![cand("a", 1.0, 1.0, 0.9), cand("b", 1.0, 1.0, 0.9)];
        assert_eq!(pareto_front(&cs).len(), 2);
    }

    #[test]
    fn layers_partition_everything() {
        let cs = vec![
            cand("l0", 1.0, 1.0, 0.9),
            cand("l1", 2.0, 2.0, 0.8),
            cand("l2", 3.0, 3.0, 0.7),
        ];
        let layers = pareto_layers(&cs);
        assert_eq!(layers.len(), 3);
        let total: usize = layers.iter().map(|l| l.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(layers[0], vec![0]);
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert!(pareto_layers(&[]).is_empty());
    }
}
