//! Top-down workload profiling and architecture recommendation
//! (Sec. VII, rightmost columns of Fig. 6).
//!
//! The flow the paper prescribes for algorithm/architecture researchers:
//! profile the workload's computational composition, decide which
//! alternative architecture the composition maps to, and derive which
//! device metrics matter most for that mapping (write-heavy → endurance,
//! large read-mostly datasets → density, and so on).

use xlda_syssim::workload::Workload;

/// Computational composition of a workload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadProfile {
    /// Fraction of operations in dense MVM kernels.
    pub mvm_fraction: f64,
    /// Fraction of operations in associative search kernels.
    pub search_fraction: f64,
    /// Fraction in irregular/elementwise kernels.
    pub other_fraction: f64,
    /// Memory writes per read (endurance pressure).
    pub writes_per_read: f64,
    /// Stationary working set (MiB).
    pub working_set_mib: f64,
}

impl WorkloadProfile {
    /// Builds a profile from a kernel trace. Kernels whose names contain
    /// `search`/`am` count as search; offloadable kernels as MVM; the
    /// rest as other.
    pub fn from_workload(w: &Workload, writes_per_read: f64) -> Self {
        let total = w.total_ops().max(1) as f64;
        let mut mvm = 0u64;
        let mut search = 0u64;
        let mut other = 0u64;
        let mut working_set = 0u64;
        for k in &w.kernels {
            if k.name.contains("search") || k.name.contains("am_") {
                search += k.compute_ops;
            } else if k.offloadable {
                mvm += k.compute_ops;
            } else {
                other += k.compute_ops;
            }
            working_set += k.weight_bytes;
        }
        Self {
            mvm_fraction: mvm as f64 / total,
            search_fraction: search as f64 / total,
            other_fraction: other as f64 / total,
            writes_per_read,
            working_set_mib: working_set as f64 / (1 << 20) as f64,
        }
    }

    /// Validates that fractions are sane.
    pub fn is_valid(&self) -> bool {
        let sum = self.mvm_fraction + self.search_fraction + self.other_fraction;
        (0.99..=1.01).contains(&sum) && self.writes_per_read >= 0.0 && self.working_set_mib >= 0.0
    }
}

/// Architecture lanes of the Fig. 1 design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ArchRecommendation {
    /// Crossbar in-memory compute (MVM-dominated).
    CrossbarImc,
    /// Associative-memory acceleration (search-dominated).
    AssociativeMemory,
    /// Mixed crossbar + AM pipeline (both stages significant).
    CrossbarPlusAm,
    /// Stay on a general-purpose baseline (irregular workload).
    GeneralPurpose,
}

/// Recommends an architecture lane from the workload composition.
pub fn recommend(profile: &WorkloadProfile) -> ArchRecommendation {
    let mvm = profile.mvm_fraction;
    let search = profile.search_fraction;
    if search >= 0.25 && mvm >= 0.25 {
        ArchRecommendation::CrossbarPlusAm
    } else if search >= 0.3 {
        ArchRecommendation::AssociativeMemory
    } else if mvm >= 0.5 {
        ArchRecommendation::CrossbarImc
    } else {
        ArchRecommendation::GeneralPurpose
    }
}

/// Device metrics that top-down analysis can prioritize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DeviceMetric {
    /// Write endurance (cycles).
    Endurance,
    /// Write latency/energy.
    WriteSpeed,
    /// Bits per area (density).
    Density,
    /// Read latency.
    ReadSpeed,
    /// On/off ratio (sensing margin).
    OnOffRatio,
}

/// Orders device metrics by importance for the given workload profile
/// (Sec. VII: "are data traffic patterns write heavy, thereby
/// prioritizing device endurance...? are datasets large with frequent
/// reads, thereby prioritizing denser memory?").
pub fn device_priorities(profile: &WorkloadProfile) -> Vec<DeviceMetric> {
    let mut scored: Vec<(DeviceMetric, f64)> = vec![
        (DeviceMetric::Endurance, 2.0 * profile.writes_per_read),
        (DeviceMetric::WriteSpeed, 1.5 * profile.writes_per_read),
        (
            DeviceMetric::Density,
            (profile.working_set_mib / 16.0).min(2.0) * (1.0 - profile.writes_per_read).max(0.0)
                + profile.working_set_mib / 64.0,
        ),
        (
            DeviceMetric::ReadSpeed,
            profile.mvm_fraction + profile.search_fraction,
        ),
        (DeviceMetric::OnOffRatio, 2.0 * profile.search_fraction),
    ];
    scored.sort_by(|a, b| crate::order::desc_nan_last(a.1, b.1));
    scored.into_iter().map(|(m, _)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_syssim::workload::{cnn_trace, hdc_trace, mann_trace};

    #[test]
    fn cnn_profile_recommends_crossbar() {
        let p = WorkloadProfile::from_workload(&cnn_trace(8), 0.0);
        assert!(p.is_valid());
        assert!(p.mvm_fraction > 0.9);
        assert_eq!(recommend(&p), ArchRecommendation::CrossbarImc);
    }

    #[test]
    fn hdc_profile_recommends_mixed_pipeline() {
        // HDC with many classes: encoding MVM plus substantial search.
        let p = WorkloadProfile::from_workload(&hdc_trace(617, 4096, 500), 0.0);
        assert!(p.search_fraction > 0.25, "{p:?}");
        assert_eq!(recommend(&p), ArchRecommendation::CrossbarPlusAm);
    }

    #[test]
    fn mann_has_search_component() {
        let p = WorkloadProfile::from_workload(&mann_trace(65_000, 64, 128, 10_000), 0.0);
        assert!(p.search_fraction > 0.0);
        assert!(p.is_valid());
    }

    #[test]
    fn irregular_workload_stays_general_purpose() {
        let p = WorkloadProfile {
            mvm_fraction: 0.2,
            search_fraction: 0.1,
            other_fraction: 0.7,
            writes_per_read: 0.1,
            working_set_mib: 4.0,
        };
        assert_eq!(recommend(&p), ArchRecommendation::GeneralPurpose);
    }

    #[test]
    fn write_heavy_prioritizes_endurance() {
        let p = WorkloadProfile {
            mvm_fraction: 0.5,
            search_fraction: 0.1,
            other_fraction: 0.4,
            writes_per_read: 1.5,
            working_set_mib: 4.0,
        };
        let metrics = device_priorities(&p);
        assert_eq!(metrics[0], DeviceMetric::Endurance);
    }

    #[test]
    fn large_read_mostly_dataset_prioritizes_density() {
        let p = WorkloadProfile {
            mvm_fraction: 0.4,
            search_fraction: 0.2,
            other_fraction: 0.4,
            writes_per_read: 0.001,
            working_set_mib: 512.0,
        };
        let metrics = device_priorities(&p);
        assert_eq!(metrics[0], DeviceMetric::Density);
    }

    #[test]
    fn search_heavy_prioritizes_on_off_ratio_over_density() {
        let p = WorkloadProfile {
            mvm_fraction: 0.1,
            search_fraction: 0.8,
            other_fraction: 0.1,
            writes_per_read: 0.01,
            working_set_mib: 1.0,
        };
        let metrics = device_priorities(&p);
        let pos = |m: DeviceMetric| metrics.iter().position(|&x| x == m).expect("present");
        assert!(pos(DeviceMetric::OnOffRatio) < pos(DeviceMetric::Density));
    }
}
