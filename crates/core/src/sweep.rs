//! Parallel design-space sweep utilities.
//!
//! DSE workloads are embarrassingly parallel (each design point evaluates
//! independently) and highly redundant (sweeps revisit the same array
//! configurations). [`par_map`] fans a sweep out across threads while
//! preserving input order; [`Cache`] memoizes expensive evaluations
//! across sweep points.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;

/// Evaluates `f` over `inputs` in parallel, preserving order.
///
/// The closure runs on scoped threads, so it may borrow from the
/// caller's stack. Panics in workers propagate to the caller.
pub fn par_map<I, O, F>(inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(inputs.len());
    let chunk = inputs.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk_inputs in inputs.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move |_| chunk_inputs.iter().map(f).collect::<Vec<O>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked")
}

/// Why one sweep point produced no result.
///
/// A fallible sweep must not let one bad design point take down the
/// other ten thousand: evaluator errors are collected per point, and
/// even a panicking evaluator (a modeling bug, not an infeasible point)
/// is contained to its own slot.
#[derive(Debug, Clone, PartialEq)]
pub enum PointFailure<E> {
    /// The evaluator returned a typed error for this point.
    Error(E),
    /// The evaluator panicked on this point; the payload message is
    /// preserved when it was a string.
    Panicked(String),
}

impl<E: std::fmt::Display> std::fmt::Display for PointFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointFailure::Error(e) => write!(f, "{e}"),
            PointFailure::Panicked(msg) => write!(f, "evaluator panicked: {msg}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for PointFailure<E> {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates a fallible `f` over `inputs` in parallel, preserving order
/// and collecting per-point outcomes instead of panicking.
///
/// Each point yields `Ok(output)`, `Err(PointFailure::Error(e))` for a
/// typed evaluator error, or `Err(PointFailure::Panicked(msg))` if the
/// evaluator panicked on that point — the panic is caught at the point
/// boundary, so the rest of the sweep still completes.
///
/// # Examples
///
/// ```
/// use xlda_core::sweep::{par_try_map, PointFailure};
///
/// let inputs = [1i64, -2, 3];
/// let out = par_try_map(&inputs, |&x| {
///     if x > 0 { Ok(x * x) } else { Err("negative") }
/// });
/// assert_eq!(out[0], Ok(1));
/// assert_eq!(out[1], Err(PointFailure::Error("negative")));
/// assert_eq!(out[2], Ok(9));
/// ```
pub fn par_try_map<I, O, E, F>(inputs: &[I], f: F) -> Vec<Result<O, PointFailure<E>>>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(&I) -> Result<O, E> + Sync,
{
    par_map(inputs, |input| {
        // The closure is shared immutably across points and evaluators
        // are pure, so unwind safety reduces to not observing a
        // half-updated input — which `&I` cannot be.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(input)))
            .map_err(panic_message)
            .map_or_else(
                |msg| Err(PointFailure::Panicked(msg)),
                |r| r.map_err(PointFailure::Error),
            )
    })
}

/// A thread-safe memoization cache for sweep evaluations.
///
/// # Examples
///
/// ```
/// use xlda_core::sweep::Cache;
///
/// let cache: Cache<u32, u64> = Cache::new();
/// let v = cache.get_or_insert_with(7, || 7 * 7);
/// assert_eq!(v, 49);
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Cache<K, V> {
    map: RwLock<HashMap<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Cache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the cached value for `key`, computing and storing it with
    /// `compute` on a miss.
    ///
    /// `compute` may run more than once under contention; the first
    /// stored value wins, keeping results deterministic for pure
    /// evaluators.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        if let Some(v) = self.map.read().get(&key) {
            return v.clone();
        }
        let value = compute();
        let mut guard = self.map.write();
        guard.entry(key).or_insert(value).clone()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u64> = (0..1000).collect();
        let out = par_map(&inputs, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u64> = par_map(&Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_borrows_from_stack() {
        let base = [10u64, 20, 30];
        let inputs = vec![0usize, 1, 2];
        let out = par_map(&inputs, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn par_try_map_collects_errors_in_order() {
        let inputs: Vec<i64> = (-3..3).collect();
        let out = par_try_map(&inputs, |&x| if x >= 0 { Ok(x * 2) } else { Err(x) });
        assert_eq!(out.len(), 6);
        for (i, r) in inputs.iter().zip(&out) {
            if *i >= 0 {
                assert_eq!(*r, Ok(i * 2));
            } else {
                assert_eq!(*r, Err(PointFailure::Error(*i)));
            }
        }
    }

    #[test]
    fn par_try_map_contains_panics_to_their_point() {
        let inputs = vec![1u32, 2, 3, 4];
        let out: Vec<Result<u32, PointFailure<String>>> = par_try_map(&inputs, |&x| {
            if x == 3 {
                panic!("model bug at point {x}");
            }
            Ok(x)
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        match &out[2] {
            Err(PointFailure::Panicked(msg)) => assert!(msg.contains("point 3"), "{msg}"),
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(out[3], Ok(4));
    }

    #[test]
    fn point_failure_displays_both_variants() {
        let e: PointFailure<&str> = PointFailure::Error("infeasible");
        assert_eq!(e.to_string(), "infeasible");
        let p: PointFailure<&str> = PointFailure::Panicked("boom".into());
        assert!(p.to_string().contains("panicked"));
    }

    #[test]
    fn cache_hits_avoid_recompute() {
        let cache: Cache<u32, u32> = Cache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_insert_with(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_is_usable_from_par_map_workers() {
        let cache: Cache<u64, u64> = Cache::new();
        let inputs: Vec<u64> = (0..256).map(|i| i % 8).collect();
        let out = par_map(&inputs, |&x| cache.get_or_insert_with(x, || x * 100));
        assert_eq!(cache.len(), 8);
        for (i, &v) in inputs.iter().zip(&out) {
            assert_eq!(v, i * 100);
        }
    }
}
