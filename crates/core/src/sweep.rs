//! Parallel design-space sweep utilities.
//!
//! DSE workloads are embarrassingly parallel (each design point evaluates
//! independently) and highly redundant (sweeps revisit the same array
//! configurations). [`par_map`] fans a sweep out across threads while
//! preserving input order; [`Cache`] memoizes expensive evaluations
//! across sweep points.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;

/// Evaluates `f` over `inputs` in parallel, preserving order.
///
/// The closure runs on scoped threads, so it may borrow from the
/// caller's stack. Panics in workers propagate to the caller.
pub fn par_map<I, O, F>(inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(inputs.len());
    let chunk = inputs.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk_inputs in inputs.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move |_| chunk_inputs.iter().map(f).collect::<Vec<O>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked")
}

/// A thread-safe memoization cache for sweep evaluations.
///
/// # Examples
///
/// ```
/// use xlda_core::sweep::Cache;
///
/// let cache: Cache<u32, u64> = Cache::new();
/// let v = cache.get_or_insert_with(7, || 7 * 7);
/// assert_eq!(v, 49);
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Cache<K, V> {
    map: RwLock<HashMap<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Cache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the cached value for `key`, computing and storing it with
    /// `compute` on a miss.
    ///
    /// `compute` may run more than once under contention; the first
    /// stored value wins, keeping results deterministic for pure
    /// evaluators.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        if let Some(v) = self.map.read().get(&key) {
            return v.clone();
        }
        let value = compute();
        let mut guard = self.map.write();
        guard.entry(key).or_insert(value).clone()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u64> = (0..1000).collect();
        let out = par_map(&inputs, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u64> = par_map(&Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_borrows_from_stack() {
        let base = [10u64, 20, 30];
        let inputs = vec![0usize, 1, 2];
        let out = par_map(&inputs, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn cache_hits_avoid_recompute() {
        let cache: Cache<u32, u32> = Cache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_insert_with(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_is_usable_from_par_map_workers() {
        let cache: Cache<u64, u64> = Cache::new();
        let inputs: Vec<u64> = (0..256).map(|i| i % 8).collect();
        let out = par_map(&inputs, |&x| cache.get_or_insert_with(x, || x * 100));
        assert_eq!(cache.len(), 8);
        for (i, &v) in inputs.iter().zip(&out) {
            assert_eq!(v, i * 100);
        }
    }
}
