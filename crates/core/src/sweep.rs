//! Parallel design-space sweep engine (v2).
//!
//! DSE workloads are embarrassingly parallel (each design point evaluates
//! independently) and highly redundant (sweeps revisit the same array
//! configurations). Version 2 of the engine adds three things over the
//! original statically chunked fan-out:
//!
//! - **work-stealing dispatch** ([`Schedule::WorkStealing`]): workers
//!   self-schedule small chunks off a shared atomic cursor, so a slow
//!   region of the design space (e.g. large capacities that organize
//!   slowly) cannot strand the other workers the way one oversized
//!   static chunk can;
//! - **cross-point memoization**: the layer crates share sub-evaluations
//!   (decoder FOMs, driver sizing, matchline limits, RAM organizations,
//!   crossbar macros) through the sharded caches in [`memo`]
//!   (re-exported here from `xlda_num`), and sweeps report their hit
//!   rates;
//! - **observability** ([`SweepStats`], [`sweep_with_stats`]): points/sec,
//!   per-cache hit rates, a per-layer *self-time* breakdown built on
//!   `xlda_obs` spans (enable with [`xlda_obs::span::set_enabled`]), and
//!   top-K slow-point capture with full span trees when tracing is on.
//!
//! Output order is always input order, independent of the schedule: the
//! engine tracks chunk indices and reassembles results deterministically.

use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use xlda_num::memo;
pub use xlda_num::memo::{CacheSnapshot, ShardedCache};
pub use xlda_obs::span::SpanAgg;
pub use xlda_obs::trace::SpanEvent;

/// How the engine hands sweep points to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// One contiguous pre-assigned chunk per worker (the v1 behavior):
    /// lowest dispatch overhead, but load imbalance when evaluation cost
    /// varies across the input range.
    StaticChunks,
    /// Workers pull fixed-size chunks off a shared atomic cursor until
    /// the input is drained. Imbalance is bounded by one chunk.
    WorkStealing,
}

/// Target number of work-unit steals per worker when `chunk == 0`: the
/// auto chunk is sized as `points / (threads * TARGET_STEALS_PER_WORKER)`
/// so load imbalance is bounded by ~1/8 of a worker's share.
pub const TARGET_STEALS_PER_WORKER: usize = 8;

/// Smallest chunk the `chunk == 0` heuristic will pick: one point per
/// steal (tiny inputs degrade to pure self-scheduling).
pub const MIN_AUTO_CHUNK: usize = 1;

/// Largest chunk the `chunk == 0` heuristic will pick, bounding the
/// work a single steal can strand behind one slow point on huge inputs.
pub const MAX_AUTO_CHUNK: usize = 256;

/// Target steals per worker for *columnar* dispatch ([`par_batch_map`]).
/// Batch kernels amortize hoisted circuit solves over each chunk, so
/// columnar chunks are sized ~4x larger than scalar ones (fewer,
/// fatter steals) at the cost of coarser load balance.
pub const COLUMNAR_TARGET_STEALS_PER_WORKER: usize = 2;

/// Smallest chunk columnar auto-sizing will pick: hoisting needs a few
/// points per batch to pay for itself.
pub const MIN_COLUMNAR_CHUNK: usize = 8;

/// Largest chunk columnar auto-sizing will pick.
pub const MAX_COLUMNAR_CHUNK: usize = 4096;

/// Whether sweeps evaluate through the columnar batch kernels.
///
/// `#[non_exhaustive]`: a future `Fast` variant may permit reassociating
/// SoA transforms that are *not* bit-identical to the scalar path; any
/// such mode will be a documented opt-in like this one, never a default
/// (see `DESIGN.md` §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Columnar {
    /// Scalar per-point evaluation (the default).
    #[default]
    Off,
    /// Columnar batch kernels restricted to bit-exact hoisting: cached
    /// sub-solves are produced by the same pure functions on identical
    /// inputs and composed in the scalar expression order, so results
    /// are bit-identical to [`Columnar::Off`].
    Exact,
}

/// Sweep engine tuning knobs.
///
/// Since 0.3.0 this is builder-only: construct via
/// [`SweepOptions::builder`] (or [`SweepOptions::default`] /
/// [`SweepOptions::v1_static`] for the stock shapes) and read through
/// the getters — new tuning knobs are then additive rather than
/// breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SweepOptions {
    pub(crate) schedule: Schedule,
    pub(crate) threads: usize,
    pub(crate) chunk: usize,
    pub(crate) deadline: Option<Duration>,
    pub(crate) columnar: Columnar,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            schedule: Schedule::WorkStealing,
            threads: 0,
            chunk: 0,
            deadline: None,
            columnar: Columnar::Off,
        }
    }
}

impl SweepOptions {
    /// The v1-compatible configuration: static chunking, one chunk per
    /// thread. Used by benchmarks as the pre-v2 baseline.
    pub fn v1_static() -> Self {
        Self {
            schedule: Schedule::StaticChunks,
            ..Self::default()
        }
    }

    /// Starts a builder over the default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use xlda_core::sweep::{Schedule, SweepOptions};
    ///
    /// let opts = SweepOptions::builder()
    ///     .schedule(Schedule::WorkStealing)
    ///     .threads(4)
    ///     .chunk(16)
    ///     .deadline(Duration::from_millis(250))
    ///     .build();
    /// assert_eq!(opts.threads(), 4);
    /// assert_eq!(opts.deadline(), Some(Duration::from_millis(250)));
    /// ```
    pub fn builder() -> SweepOptionsBuilder {
        SweepOptionsBuilder {
            opts: Self::default(),
        }
    }

    /// Dispatch schedule (default: [`Schedule::WorkStealing`]).
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Worker threads; `0` means the machine's available parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Points per stolen work unit; `0` picks a chunk that gives each
    /// worker ~[`TARGET_STEALS_PER_WORKER`] steals (clamped to
    /// [`MIN_AUTO_CHUNK`]`..=`[`MAX_AUTO_CHUNK`]; columnar dispatch
    /// sizes by [`COLUMNAR_TARGET_STEALS_PER_WORKER`] instead). Ignored
    /// by [`Schedule::StaticChunks`].
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Wall-clock budget for the whole sweep, measured from the moment
    /// the sweep entry point is called. Honored by the *fallible* paths
    /// ([`par_try_map_with`]): points whose evaluation has not started
    /// when the budget expires yield
    /// [`PointFailure::DeadlineExceeded`] instead of being evaluated.
    /// Columnar dispatch checks at chunk (not point) granularity. The
    /// infallible paths ignore it (a skipped point has no representable
    /// outcome there). `None` (the default) never expires.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Columnar-kernel mode (default: [`Columnar::Off`]).
    pub fn columnar(&self) -> Columnar {
        self.columnar
    }

    fn resolve_threads(&self, points: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, points.max(1))
    }

    fn resolve_chunk(&self, points: usize, threads: usize) -> usize {
        match self.schedule {
            Schedule::StaticChunks => points.div_ceil(threads).max(1),
            Schedule::WorkStealing => {
                if self.chunk > 0 {
                    self.chunk
                } else {
                    (points / (threads * TARGET_STEALS_PER_WORKER))
                        .clamp(MIN_AUTO_CHUNK, MAX_AUTO_CHUNK)
                }
            }
        }
    }

    /// Chunk sizing for [`par_batch_map`]: larger chunks than the scalar
    /// heuristic, because a batch kernel's hoisted solves amortize over
    /// the whole chunk. An explicit `chunk` wins; static scheduling
    /// keeps one thread-sized chunk per worker.
    fn resolve_columnar_chunk(&self, points: usize, threads: usize) -> usize {
        match self.schedule {
            Schedule::StaticChunks => points.div_ceil(threads).max(1),
            Schedule::WorkStealing => {
                if self.chunk > 0 {
                    self.chunk
                } else {
                    (points / (threads * COLUMNAR_TARGET_STEALS_PER_WORKER))
                        .clamp(MIN_COLUMNAR_CHUNK, MAX_COLUMNAR_CHUNK)
                }
            }
        }
    }
}

/// Builder for [`SweepOptions`] (see [`SweepOptions::builder`]).
#[derive(Debug, Clone)]
pub struct SweepOptionsBuilder {
    opts: SweepOptions,
}

impl SweepOptionsBuilder {
    /// Sets the dispatch schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.opts.schedule = schedule;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Sets the steal chunk size (`0` = auto heuristic).
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.opts.chunk = chunk;
        self
    }

    /// Sets the sweep wall-clock deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.opts.deadline = Some(deadline);
        self
    }

    /// Sets the columnar-kernel mode.
    pub fn columnar(mut self, columnar: Columnar) -> Self {
        self.opts.columnar = columnar;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> SweepOptions {
        self.opts
    }
}

/// Core dispatch: evaluates `f` over `inputs` under `opts`, preserving
/// input order. Workers pull chunk indices from a shared cursor (under
/// static chunking each chunk is thread-sized, so every worker takes at
/// most one), tag results with their chunk index, and the caller
/// reassembles in index order — output order never depends on thread
/// interleaving.
fn dispatch<I, O, F>(inputs: &[I], f: F, opts: &SweepOptions) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let threads = opts.resolve_threads(inputs.len());
    let chunk = opts.resolve_chunk(inputs.len(), threads);
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            handles.push(scope.spawn(move |_| {
                let mut mine: Vec<(usize, Vec<O>)> = Vec::new();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    let lo = c * chunk;
                    if lo >= inputs.len() {
                        break;
                    }
                    let hi = (lo + chunk).min(inputs.len());
                    mine.push((c, inputs[lo..hi].iter().map(f).collect()));
                }
                mine
            }));
        }
        let mut parts: Vec<(usize, Vec<O>)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect();
        parts.sort_unstable_by_key(|&(c, _)| c);
        parts.into_iter().flat_map(|(_, v)| v).collect()
    })
    .expect("sweep scope panicked")
}

/// Evaluates `f` over `inputs` in parallel, preserving order.
///
/// The closure runs on scoped threads, so it may borrow from the
/// caller's stack. A panic in any point is contained at the point
/// boundary and re-raised on the caller's thread with the point index
/// and the original payload message — not a generic join error.
pub fn par_map<I, O, F>(inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    par_map_with(inputs, f, &SweepOptions::default())
}

/// [`par_map`] with explicit [`SweepOptions`].
///
/// # Panics
///
/// Re-raises the first (in input order) evaluator panic as
/// `"sweep point <i> panicked: <payload>"`.
pub fn par_map_with<I, O, F>(inputs: &[I], f: F, opts: &SweepOptions) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let contained = dispatch(
        inputs,
        |input| {
            // Evaluators are pure over `&I`, so unwind safety reduces to
            // not observing half-updated state — which a shared borrow
            // cannot be.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(input)))
                .map_err(panic_message)
        },
        opts,
    );
    contained
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(o) => o,
            Err(msg) => panic!("sweep point {i} panicked: {msg}"),
        })
        .collect()
}

/// Why one sweep point produced no result.
///
/// A fallible sweep must not let one bad design point take down the
/// other ten thousand: evaluator errors are collected per point, and
/// even a panicking evaluator (a modeling bug, not an infeasible point)
/// is contained to its own slot.
#[derive(Debug, Clone, PartialEq)]
pub enum PointFailure<E> {
    /// The evaluator returned a typed error for this point.
    Error(E),
    /// The evaluator panicked on this point; the payload message is
    /// preserved when it was a string.
    Panicked(String),
    /// The sweep's [`SweepOptions::deadline`] expired before this
    /// point's evaluation started; the point was skipped, not evaluated.
    DeadlineExceeded,
}

impl<E: std::fmt::Display> std::fmt::Display for PointFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointFailure::Error(e) => write!(f, "{e}"),
            PointFailure::Panicked(msg) => write!(f, "evaluator panicked: {msg}"),
            PointFailure::DeadlineExceeded => {
                write!(f, "sweep deadline expired before evaluation")
            }
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for PointFailure<E> {}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates a fallible `f` over `inputs` in parallel, preserving order
/// and collecting per-point outcomes instead of panicking.
///
/// Each point yields `Ok(output)`, `Err(PointFailure::Error(e))` for a
/// typed evaluator error, or `Err(PointFailure::Panicked(msg))` if the
/// evaluator panicked on that point — the panic is caught at the point
/// boundary, so the rest of the sweep still completes.
///
/// # Examples
///
/// ```
/// use xlda_core::sweep::{par_try_map, PointFailure};
///
/// let inputs = [1i64, -2, 3];
/// let out = par_try_map(&inputs, |&x| {
///     if x > 0 { Ok(x * x) } else { Err("negative") }
/// });
/// assert_eq!(out[0], Ok(1));
/// assert_eq!(out[1], Err(PointFailure::Error("negative")));
/// assert_eq!(out[2], Ok(9));
/// ```
pub fn par_try_map<I, O, E, F>(inputs: &[I], f: F) -> Vec<Result<O, PointFailure<E>>>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(&I) -> Result<O, E> + Sync,
{
    par_try_map_with(inputs, f, &SweepOptions::default())
}

/// [`par_try_map`] with explicit [`SweepOptions`].
///
/// When [`SweepOptions::deadline`] is set, the budget is measured from
/// this call: any point whose evaluation has not *started* when it
/// expires is skipped and reported as
/// [`PointFailure::DeadlineExceeded`]. Points already being evaluated
/// run to completion — the engine never interrupts an evaluator, it
/// stops admitting new ones, so a sweep overshoots by at most one point
/// per worker.
pub fn par_try_map_with<I, O, E, F>(
    inputs: &[I],
    f: F,
    opts: &SweepOptions,
) -> Vec<Result<O, PointFailure<E>>>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(&I) -> Result<O, E> + Sync,
{
    let expires_at = opts.deadline.map(|d| Instant::now() + d);
    dispatch(
        inputs,
        |input| {
            if expires_at.is_some_and(|t| Instant::now() >= t) {
                return Err(PointFailure::DeadlineExceeded);
            }
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(input)))
                .map_err(panic_message)
                .map_or_else(
                    |msg| Err(PointFailure::Panicked(msg)),
                    |r| r.map_err(PointFailure::Error),
                )
        },
        opts,
    )
}

/// Chunk-granular work-stealing dispatch for columnar batch kernels.
///
/// Where [`par_map_with`] hands each *point* to the evaluator,
/// `par_batch_map` hands each stolen *chunk* — `run_chunk(base, slice)`
/// receives the chunk's starting index into `inputs` plus the contiguous
/// sub-slice, and returns one output per chunk (typically an SoA batch,
/// see `xlda_num::batch::CandidateBatch`). Chunks are returned in input
/// order, so concatenating the per-chunk outputs reconstructs the full
/// sweep in order.
///
/// Chunk sizing uses the columnar heuristic
/// ([`COLUMNAR_TARGET_STEALS_PER_WORKER`]): larger chunks than scalar
/// dispatch, because the kernel's hoisted solves amortize over the whole
/// chunk. Error/panic containment and deadline checks are the *caller's*
/// responsibility inside `run_chunk` — this primitive only schedules.
pub fn par_batch_map<I, B, FB>(inputs: &[I], opts: &SweepOptions, run_chunk: FB) -> Vec<B>
where
    I: Sync,
    B: Send,
    FB: Fn(usize, &[I]) -> B + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let threads = opts.resolve_threads(inputs.len());
    let chunk = opts.resolve_columnar_chunk(inputs.len(), threads);
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let run_chunk = &run_chunk;
            let cursor = &cursor;
            handles.push(scope.spawn(move |_| {
                let mut mine: Vec<(usize, B)> = Vec::new();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    let lo = c * chunk;
                    if lo >= inputs.len() {
                        break;
                    }
                    let hi = (lo + chunk).min(inputs.len());
                    mine.push((c, run_chunk(lo, &inputs[lo..hi])));
                }
                mine
            }));
        }
        let mut parts: Vec<(usize, B)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect();
        parts.sort_unstable_by_key(|&(c, _)| c);
        parts.into_iter().map(|(_, b)| b).collect()
    })
    .expect("sweep scope panicked")
}

// ---------------------------------------------------------------------------
// Observability: per-sweep stats on top of xlda_obs spans.
// ---------------------------------------------------------------------------

/// How many of the slowest points a stats sweep keeps span trees for.
pub const SLOW_POINTS_CAPTURED: usize = 8;

/// One of the slowest points of a sweep, captured by [`sweep_with_stats`]
/// when span collection is enabled.
#[derive(Debug, Clone)]
pub struct SlowPoint {
    /// Index of the point in the sweep's input slice.
    pub index: usize,
    /// Wall time of this point's evaluation.
    pub elapsed: Duration,
    /// Caller-supplied label (scenario kind, candidate name, ... — empty
    /// for [`sweep_with_stats`], see [`sweep_with_stats_labeled`]).
    pub label: String,
    /// The point's span tree: every span finished on the worker thread
    /// during this point's evaluation. Empty unless trace capture
    /// ([`xlda_obs::trace::start`]) was also active.
    pub spans: Vec<SpanEvent>,
}

/// Observability record of one sweep: throughput, memo-cache activity,
/// a per-layer span breakdown, and the slowest points, all measured over
/// just that sweep (global accumulators are diffed before/after).
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Number of design points evaluated.
    pub points: usize,
    /// Wall time of the whole sweep.
    pub elapsed: Duration,
    /// Per-cache hit/miss deltas over the sweep, sorted by cache name.
    pub caches: Vec<CacheSnapshot>,
    /// Per-span aggregate deltas over the sweep (empty unless
    /// [`xlda_obs::span::set_enabled`] is on), sorted by span name. The
    /// `self_nanos` of all spans partition instrumented wall time per
    /// worker thread, so this is a flamegraph-style layer breakdown;
    /// the engine's own `"sweep.point"` root span makes the partition
    /// cover (almost) the whole sweep.
    pub layers: Vec<SpanAgg>,
    /// The up-to-[`SLOW_POINTS_CAPTURED`] slowest points, slowest first
    /// (empty unless span collection is enabled).
    pub slowest: Vec<SlowPoint>,
}

impl SweepStats {
    /// Evaluated points per second of wall time.
    pub fn points_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.points as f64 / s
        } else {
            f64::INFINITY
        }
    }

    /// Total cache hits across all registered caches during the sweep.
    pub fn cache_hits(&self) -> u64 {
        self.caches.iter().map(|c| c.hits).sum()
    }

    /// Total cache misses across all registered caches during the sweep.
    pub fn cache_misses(&self) -> u64 {
        self.caches.iter().map(|c| c.misses).sum()
    }

    /// Aggregate hit rate across all caches (0.0 with no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Sum of per-span self time over the sweep — the instrumented share
    /// of worker wall time. With N worker threads this can approach
    /// `N * elapsed`.
    pub fn layer_self_time(&self) -> Duration {
        Duration::from_nanos(self.layers.iter().map(|l| l.self_nanos).sum())
    }
}

pub(crate) fn diff_caches(
    before: &[CacheSnapshot],
    after: Vec<CacheSnapshot>,
) -> Vec<CacheSnapshot> {
    after
        .into_iter()
        .map(|a| {
            // A cache first registered mid-sweep has no "before" row; its
            // delta is its whole history. Saturate the subtraction so a
            // cache cleared mid-sweep reports a partial delta instead of
            // panicking on u64 underflow.
            let b = before.iter().find(|b| b.name == a.name);
            CacheSnapshot {
                name: a.name,
                hits: a.hits.saturating_sub(b.map_or(0, |b| b.hits)),
                misses: a.misses.saturating_sub(b.map_or(0, |b| b.misses)),
                entries: a.entries,
            }
        })
        .collect()
}

/// Bounded keep-the-slowest collector; entries stay sorted slowest-first.
struct TopSlow {
    points: Vec<SlowPoint>,
    cap: usize,
}

impl TopSlow {
    fn new(cap: usize) -> Self {
        TopSlow {
            points: Vec::with_capacity(cap + 1),
            cap,
        }
    }

    fn admits(&self, elapsed: Duration) -> bool {
        self.points.len() < self.cap || self.points.last().is_some_and(|p| elapsed > p.elapsed)
    }

    fn push(&mut self, p: SlowPoint) {
        let at = self.points.partition_point(|q| q.elapsed >= p.elapsed);
        self.points.insert(at, p);
        self.points.truncate(self.cap);
    }
}

/// Runs [`par_map_with`] and measures it: wall time, throughput,
/// memo-cache deltas, the per-span layer breakdown, and (when spans are
/// enabled) the slowest points. Equivalent to
/// [`sweep_with_stats_labeled`] with empty labels.
pub fn sweep_with_stats<I, O, F>(inputs: &[I], f: F, opts: &SweepOptions) -> (Vec<O>, SweepStats)
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    sweep_with_stats_labeled(inputs, f, |_| String::new(), opts)
}

/// [`sweep_with_stats`] with a per-point label (scenario kind, candidate
/// name, ...) recorded on captured slow points.
///
/// When span collection is enabled ([`xlda_obs::span::set_enabled`]),
/// every point runs under a `"sweep.point"` root span and the engine
/// keeps the [`SLOW_POINTS_CAPTURED`] slowest points; if trace capture
/// ([`xlda_obs::trace::start`]) is also active, each captured point
/// carries the span events recorded on its worker thread during its
/// evaluation. With spans disabled the closure runs bare — the only
/// per-point cost is one relaxed atomic load.
pub fn sweep_with_stats_labeled<I, O, F, L>(
    inputs: &[I],
    f: F,
    label: L,
    opts: &SweepOptions,
) -> (Vec<O>, SweepStats)
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
    L: Fn(usize) -> String + Sync,
{
    let caches_before = memo::snapshot();
    let spans_before = xlda_obs::span::aggregate_snapshot();
    let slow = Mutex::new(TopSlow::new(SLOW_POINTS_CAPTURED));
    let indices: Vec<usize> = (0..inputs.len()).collect();
    let start = Instant::now();
    let out = par_map_with(
        &indices,
        |&i| {
            if !xlda_obs::span::enabled() {
                return f(&inputs[i]);
            }
            let mark = xlda_obs::trace::thread_watermark();
            let t0 = Instant::now();
            let o = {
                let _point = xlda_obs::span!("sweep.point");
                f(&inputs[i])
            };
            let elapsed = t0.elapsed();
            let mut slow = slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.admits(elapsed) {
                let spans = if xlda_obs::trace::active() {
                    xlda_obs::trace::thread_events_since(mark)
                } else {
                    Vec::new()
                };
                slow.push(SlowPoint {
                    index: i,
                    elapsed,
                    label: label(i),
                    spans,
                });
            }
            o
        },
        opts,
    );
    let elapsed = start.elapsed();
    let stats = SweepStats {
        points: inputs.len(),
        elapsed,
        caches: diff_caches(&caches_before, memo::snapshot()),
        layers: xlda_obs::span::diff_aggregates(
            &spans_before,
            &xlda_obs::span::aggregate_snapshot(),
        ),
        slowest: slow.into_inner().unwrap_or_else(|e| e.into_inner()).points,
    };
    (out, stats)
}

/// A thread-safe memoization cache for sweep evaluations.
///
/// Since v2 this is a thin wrapper over [`memo::ShardedCache`]: lookups
/// shard across sixteen locks instead of serializing on one, and hits
/// and misses are counted. Unlike the caches declared with
/// [`xlda_num::memo_cache!`], a `Cache` is caller-owned and unregistered
/// — it does not appear in [`memo::snapshot`] — but the global memo
/// switch still governs it (a disabled switch bypasses it too, since
/// transparency tests must silence *every* memo layer).
///
/// # Examples
///
/// ```
/// use xlda_core::sweep::Cache;
///
/// let cache: Cache<u32, u64> = Cache::new();
/// let v = cache.get_or_insert_with(7, || 7 * 7);
/// assert_eq!(v, 49);
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug)]
pub struct Cache<K, V> {
    inner: ShardedCache<K, V>,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Cache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Cache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            inner: ShardedCache::new(),
        }
    }

    /// Returns the cached value for `key`, computing and storing it with
    /// `compute` on a miss.
    ///
    /// `compute` may run more than once under contention; the first
    /// stored value wins, keeping results deterministic for pure
    /// evaluators.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, compute: F) -> V {
        self.inner.get_or_insert_with(key, compute)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Hit/miss counters accumulated by this cache.
    pub fn stats(&self) -> &memo::CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xlda_num::memo_cache;

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u64> = (0..1000).collect();
        let out = par_map(&inputs, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u64> = par_map(&Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_borrows_from_stack() {
        let base = [10u64, 20, 30];
        let inputs = vec![0usize, 1, 2];
        let out = par_map(&inputs, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn schedules_agree_and_preserve_order() {
        let inputs: Vec<u64> = (0..4097).collect();
        let expect: Vec<u64> = inputs.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for opts in [
            SweepOptions::v1_static(),
            SweepOptions::default(),
            SweepOptions::builder()
                .schedule(Schedule::WorkStealing)
                .threads(3)
                .chunk(5)
                .build(),
            SweepOptions::builder()
                .schedule(Schedule::WorkStealing)
                .threads(8)
                .chunk(1)
                .build(),
        ] {
            let out = par_map_with(&inputs, |&x| x.wrapping_mul(x) ^ 7, &opts);
            assert_eq!(out, expect, "schedule {opts:?}");
        }
    }

    #[test]
    fn par_map_panic_surfaces_point_payload() {
        let inputs: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&inputs, |&x| {
                if x == 41 {
                    panic!("model bug on candidate {x}");
                }
                x
            })
        })
        .expect_err("sweep must propagate the panic");
        let msg = panic_message(caught);
        assert!(msg.contains("sweep point 41"), "{msg}");
        assert!(msg.contains("model bug on candidate 41"), "{msg}");
    }

    #[test]
    fn par_try_map_collects_errors_in_order() {
        let inputs: Vec<i64> = (-3..3).collect();
        let out = par_try_map(&inputs, |&x| if x >= 0 { Ok(x * 2) } else { Err(x) });
        assert_eq!(out.len(), 6);
        for (i, r) in inputs.iter().zip(&out) {
            if *i >= 0 {
                assert_eq!(*r, Ok(i * 2));
            } else {
                assert_eq!(*r, Err(PointFailure::Error(*i)));
            }
        }
    }

    #[test]
    fn par_try_map_contains_panics_to_their_point() {
        let inputs = vec![1u32, 2, 3, 4];
        let out: Vec<Result<u32, PointFailure<String>>> = par_try_map(&inputs, |&x| {
            if x == 3 {
                panic!("model bug at point {x}");
            }
            Ok(x)
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        match &out[2] {
            Err(PointFailure::Panicked(msg)) => assert!(msg.contains("point 3"), "{msg}"),
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(out[3], Ok(4));
    }

    #[test]
    fn point_failure_displays_all_variants() {
        let e: PointFailure<&str> = PointFailure::Error("infeasible");
        assert_eq!(e.to_string(), "infeasible");
        let p: PointFailure<&str> = PointFailure::Panicked("boom".into());
        assert!(p.to_string().contains("panicked"));
        let d: PointFailure<&str> = PointFailure::DeadlineExceeded;
        assert!(d.to_string().contains("deadline"));
    }

    /// Pins the `chunk == 0` heuristic the serving layer relies on:
    /// `points / (threads * TARGET_STEALS_PER_WORKER)` clamped to
    /// `MIN_AUTO_CHUNK..=MAX_AUTO_CHUNK` — ~8 steals per worker, never 0,
    /// never more than 256 points behind one steal.
    #[test]
    fn auto_chunk_heuristic_is_pinned() {
        assert_eq!(TARGET_STEALS_PER_WORKER, 8);
        assert_eq!(MIN_AUTO_CHUNK, 1);
        assert_eq!(MAX_AUTO_CHUNK, 256);
        let auto = SweepOptions::default();
        // Mid-range: exact ~8-steals sizing.
        assert_eq!(auto.resolve_chunk(6400, 4), 6400 / (4 * 8));
        assert_eq!(auto.resolve_chunk(1024, 8), 1024 / (8 * 8));
        // Tiny inputs clamp up to one point per steal, never zero.
        assert_eq!(auto.resolve_chunk(1, 8), MIN_AUTO_CHUNK);
        assert_eq!(auto.resolve_chunk(7, 1), MIN_AUTO_CHUNK);
        // Huge inputs clamp down so one steal never strands >256 points.
        assert_eq!(auto.resolve_chunk(1_000_000, 2), MAX_AUTO_CHUNK);
        // An explicit chunk bypasses the heuristic entirely...
        let explicit = SweepOptions::builder().chunk(42).build();
        assert_eq!(explicit.resolve_chunk(1_000_000, 2), 42);
        // ...and static scheduling ignores it (one chunk per thread).
        assert_eq!(SweepOptions::v1_static().resolve_chunk(100, 8), 13);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(SweepOptions::builder().build(), SweepOptions::default());
    }

    #[test]
    fn expired_deadline_skips_unstarted_points() {
        let inputs: Vec<u32> = (0..64).collect();
        let opts = SweepOptions::builder().deadline(Duration::ZERO).build();
        let out: Vec<Result<u32, PointFailure<&str>>> =
            par_try_map_with(&inputs, |&x| Ok(x), &opts);
        assert_eq!(out.len(), 64);
        assert!(
            out.iter()
                .all(|r| matches!(r, Err(PointFailure::DeadlineExceeded))),
            "an already-expired deadline admits no points"
        );
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let inputs: Vec<u32> = (0..64).collect();
        let opts = SweepOptions::builder()
            .deadline(Duration::from_secs(3600))
            .build();
        let out: Vec<Result<u32, PointFailure<&str>>> =
            par_try_map_with(&inputs, |&x| Ok(x * 2), &opts);
        let expect: Vec<Result<u32, PointFailure<&str>>> =
            inputs.iter().map(|&x| Ok(x * 2)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn infallible_paths_ignore_the_deadline() {
        let inputs: Vec<u32> = (0..16).collect();
        let opts = SweepOptions::builder().deadline(Duration::ZERO).build();
        let out = par_map_with(&inputs, |&x| x + 1, &opts);
        assert_eq!(out, (1..17).collect::<Vec<u32>>());
    }

    #[test]
    fn cache_hits_avoid_recompute() {
        let cache: Cache<u32, u32> = Cache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_insert_with(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.stats().hits(), 4);
        assert_eq!(cache.stats().misses(), 1);
    }

    #[test]
    fn cache_is_usable_from_par_map_workers() {
        let cache: Cache<u64, u64> = Cache::new();
        let inputs: Vec<u64> = (0..256).map(|i| i % 8).collect();
        let out = par_map(&inputs, |&x| cache.get_or_insert_with(x, || x * 100));
        assert_eq!(cache.len(), 8);
        for (i, &v) in inputs.iter().zip(&out) {
            assert_eq!(v, i * 100);
        }
    }

    #[test]
    fn sweep_with_stats_measures_throughput_and_caches() {
        memo_cache!(static STATS_PROBE: u64 => u64, "core.test_stats_probe");
        let inputs: Vec<u64> = (0..128).map(|i| i % 4).collect();
        let (out, stats) = sweep_with_stats(
            &inputs,
            |&x| STATS_PROBE.get_or_insert_with(x, || x + 1),
            &SweepOptions::default(),
        );
        assert_eq!(out.len(), 128);
        assert_eq!(stats.points, 128);
        assert!(stats.points_per_sec() > 0.0);
        let probe = stats
            .caches
            .iter()
            .find(|c| c.name == "core.test_stats_probe")
            .expect("probe cache registered");
        assert_eq!(probe.hits + probe.misses, 128);
        assert_eq!(probe.misses, 4);
        assert!(stats.cache_hit_rate() > 0.0);
    }

    /// Span collection is process-global; tests that enable it are
    /// serialized so parallel test threads cannot observe each other's
    /// windows (assertions stay tolerant of spans leaking *in*).
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn sweep_stats_layer_breakdown_from_spans() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let inputs: Vec<u64> = (0..64).collect();

        // Spans disabled: no breakdown, no slow points.
        let (_, stats) = sweep_with_stats(
            &inputs,
            |&x| {
                let _s = xlda_obs::span!("core.test_layer");
                std::hint::black_box(x * 3)
            },
            &SweepOptions::default(),
        );
        assert!(stats.layers.iter().all(|l| l.name != "core.test_layer"));
        assert!(stats.slowest.is_empty());

        xlda_obs::span::set_enabled(true);
        let (_, stats) = sweep_with_stats_labeled(
            &inputs,
            |&x| {
                let _s = xlda_obs::span!("core.test_layer");
                std::hint::black_box(x * 3)
            },
            |i| format!("point-{i}"),
            &SweepOptions::default(),
        );
        xlda_obs::span::set_enabled(false);

        let layer = stats
            .layers
            .iter()
            .find(|l| l.name == "core.test_layer")
            .expect("instrumented layer appears in the breakdown");
        assert!(layer.calls >= 64);
        let root = stats
            .layers
            .iter()
            .find(|l| l.name == "sweep.point")
            .expect("engine root span appears in the breakdown");
        assert!(root.calls >= 64);
        // The root span's total covers its children.
        assert!(root.total_nanos >= layer.total_nanos);

        assert!(!stats.slowest.is_empty());
        assert!(stats.slowest.len() <= SLOW_POINTS_CAPTURED);
        // Slowest-first ordering and labels wired through.
        for w in stats.slowest.windows(2) {
            assert!(w[0].elapsed >= w[1].elapsed);
        }
        for p in &stats.slowest {
            assert_eq!(p.label, format!("point-{}", p.index));
            // No trace capture was started, so no span trees.
            assert!(p.spans.is_empty());
        }
    }

    #[test]
    fn slow_points_carry_span_trees_when_tracing() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let inputs: Vec<u64> = (0..16).collect();
        xlda_obs::trace::start();
        xlda_obs::span::set_enabled(true);
        let (_, stats) = sweep_with_stats(
            &inputs,
            |&x| {
                let _s = xlda_obs::span!("core.test_traced_layer");
                std::hint::black_box(x + 1)
            },
            &SweepOptions::default(),
        );
        xlda_obs::span::set_enabled(false);
        xlda_obs::trace::stop();

        assert!(!stats.slowest.is_empty());
        for p in &stats.slowest {
            assert!(
                p.spans.iter().any(|e| e.name == "sweep.point"),
                "point {} captured {:?}",
                p.index,
                p.spans
            );
            assert!(p.spans.iter().any(|e| e.name == "core.test_traced_layer"));
        }
    }

    #[test]
    fn par_batch_map_preserves_chunk_order_and_coverage() {
        let inputs: Vec<u64> = (0..1000).collect();
        for opts in [
            SweepOptions::builder()
                .threads(4)
                .columnar(Columnar::Exact)
                .build(),
            SweepOptions::builder()
                .threads(3)
                .chunk(7)
                .columnar(Columnar::Exact)
                .build(),
            SweepOptions::builder()
                .schedule(Schedule::StaticChunks)
                .threads(4)
                .build(),
        ] {
            let chunks = par_batch_map(&inputs, &opts, |base, slice| {
                (base, slice.iter().map(|&x| x * 2).collect::<Vec<_>>())
            });
            // Chunks arrive in input order and tile the input exactly.
            let mut expect_base = 0usize;
            for (base, vals) in &chunks {
                assert_eq!(*base, expect_base);
                for (i, v) in vals.iter().enumerate() {
                    assert_eq!(*v, inputs[base + i] * 2);
                }
                expect_base += vals.len();
            }
            assert_eq!(expect_base, inputs.len());
        }
        // Empty input yields no chunks.
        assert!(
            par_batch_map(&[] as &[u64], &SweepOptions::default(), |b, s| (b, s.len())).is_empty()
        );
    }

    #[test]
    fn columnar_chunks_are_larger_than_scalar() {
        let opts = SweepOptions::default();
        let scalar = opts.resolve_chunk(10_000, 4);
        let columnar = opts.resolve_columnar_chunk(10_000, 4);
        assert!(columnar > scalar, "{columnar} <= {scalar}");
        // Explicit chunk wins in both modes.
        let fixed = SweepOptions::builder().chunk(13).build();
        assert_eq!(fixed.resolve_columnar_chunk(10_000, 4), 13);
        // Tiny sweeps clamp to the columnar minimum.
        assert_eq!(opts.resolve_columnar_chunk(3, 4), MIN_COLUMNAR_CHUNK);
    }

    #[test]
    fn diff_caches_includes_mid_sweep_registrations() {
        // A cache that did not exist at sweep start must appear in the
        // diff with its whole history.
        let before = vec![CacheSnapshot {
            name: "core.test_diff_old",
            hits: 10,
            misses: 5,
            entries: 5,
        }];
        let after = vec![
            CacheSnapshot {
                name: "core.test_diff_old",
                hits: 14,
                misses: 6,
                entries: 6,
            },
            CacheSnapshot {
                name: "core.test_diff_new",
                hits: 3,
                misses: 2,
                entries: 2,
            },
        ];
        let diff = diff_caches(&before, after);
        let old = diff
            .iter()
            .find(|c| c.name == "core.test_diff_old")
            .unwrap();
        assert_eq!((old.hits, old.misses), (4, 1));
        let new = diff
            .iter()
            .find(|c| c.name == "core.test_diff_new")
            .unwrap();
        assert_eq!((new.hits, new.misses), (3, 2));
    }

    #[test]
    fn diff_caches_survives_mid_sweep_clears() {
        // Counters that went *backwards* (cache cleared mid-sweep, e.g. by
        // a concurrent transparency test) must saturate, not underflow.
        let before = vec![CacheSnapshot {
            name: "core.test_diff_cleared",
            hits: 100,
            misses: 50,
            entries: 50,
        }];
        let after = vec![CacheSnapshot {
            name: "core.test_diff_cleared",
            hits: 7,
            misses: 3,
            entries: 3,
        }];
        let diff = diff_caches(&before, after);
        assert_eq!((diff[0].hits, diff[0].misses), (0, 0));
    }
}
