//! Renderers: shared f64 JSON emit, NDJSON lines, Prometheus text format.
//!
//! The f64 formatter here is the single source of truth for JSON number
//! emission across the workspace: Rust's `{}` formatting produces the
//! shortest string that round-trips bit-exactly through `f64::from_str`,
//! and non-finite values (which have no JSON spelling) degrade to `null`.
//! `xlda-serve`'s JSON layer delegates to it.

use crate::metrics::{bucket_bounds, HistogramSnapshot};
use crate::span::SpanAgg;
use crate::trace::SpanEvent;
use std::fmt::Write as _;

/// Write `x` as a JSON number: shortest bit-exact round-trip spelling, or
/// `null` for NaN/infinities. The workspace-wide f64 emitter (also behind
/// `xlda-serve`'s JSON layer).
pub fn write_f64<W: std::fmt::Write>(out: &mut W, x: f64) -> std::fmt::Result {
    if x.is_finite() {
        write!(out, "{x}")
    } else {
        out.write_str("null")
    }
}

/// [`write_f64`] appending to a `String`.
pub fn push_f64(out: &mut String, x: f64) {
    let _ = write_f64(out, x);
}

/// [`push_f64`] as a `String` (convenience for tests and formatting args).
pub fn fmt_f64(x: f64) -> String {
    let mut s = String::new();
    push_f64(&mut s, x);
    s
}

/// Append `s` as a JSON string literal with the mandatory escapes.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// NDJSON
// ---------------------------------------------------------------------------

/// One `{"type":"span",...}` trace line.
pub fn ndjson_span_event(out: &mut String, e: &SpanEvent) {
    out.push_str("{\"type\":\"span\",\"name\":");
    push_json_str(out, e.name);
    let _ = writeln!(
        out,
        ",\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"depth\":{}}}",
        e.thread, e.start_ns, e.dur_ns, e.depth
    );
}

/// One `{"type":"span_agg",...}` aggregate line.
pub fn ndjson_span_agg(out: &mut String, a: &SpanAgg) {
    out.push_str("{\"type\":\"span_agg\",\"name\":");
    push_json_str(out, a.name);
    let _ = writeln!(
        out,
        ",\"total_nanos\":{},\"self_nanos\":{},\"calls\":{}}}",
        a.total_nanos, a.self_nanos, a.calls
    );
}

/// One `{"type":"counter",...}` metric line.
pub fn ndjson_counter(out: &mut String, name: &str, value: u64) {
    out.push_str("{\"type\":\"counter\",\"name\":");
    push_json_str(out, name);
    let _ = writeln!(out, ",\"value\":{value}}}");
}

/// One `{"type":"histogram",...}` metric line: count, sum, quantile
/// midpoints, and the populated `[lo, count]` buckets.
pub fn ndjson_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    out.push_str("{\"type\":\"histogram\",\"name\":");
    push_json_str(out, name);
    let _ = write!(out, ",\"count\":{},\"sum\":", snap.count);
    push_f64(out, snap.sum);
    for (label, p) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
        let _ = write!(out, ",\"{label}\":");
        push_f64(out, snap.quantile(p));
    }
    out.push_str(",\"buckets\":[");
    for (i, &(idx, n)) in snap.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_f64(out, bucket_bounds(idx).0);
        let _ = write!(out, ",{n}]");
    }
    out.push_str("]}\n");
}

/// Render a full trace dump: one line per span event, then the aggregate
/// lines (sorted by name) and a trailing `{"type":"trace_meta",...}` line.
pub fn trace_ndjson(events: &[SpanEvent], aggregates: &[SpanAgg], dropped: u64) -> String {
    let mut out = String::new();
    for e in events {
        ndjson_span_event(&mut out, e);
    }
    for a in aggregates {
        ndjson_span_agg(&mut out, a);
    }
    let _ = writeln!(
        &mut out,
        "{{\"type\":\"trace_meta\",\"events\":{},\"dropped\":{dropped}}}",
        events.len()
    );
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition format
// ---------------------------------------------------------------------------

/// Replace characters outside `[a-zA-Z0-9_:]` with `_` so dotted span/metric
/// names become valid Prometheus metric names.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// `# TYPE` header plus one sample for a counter.
pub fn prometheus_counter(out: &mut String, name: &str, value: u64) {
    let n = prometheus_name(name);
    let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
}

/// Cumulative-bucket rendering of a histogram snapshot: populated `le`
/// buckets, `+Inf`, `_sum`, `_count`.
pub fn prometheus_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let n = prometheus_name(name);
    let _ = writeln!(out, "# TYPE {n} histogram");
    let mut cumulative = 0u64;
    for &(idx, count) in &snap.buckets {
        cumulative += count;
        let (_, hi) = bucket_bounds(idx);
        let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", fmt_f64(hi));
    }
    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(
        out,
        "{n}_sum {}\n{n}_count {}",
        fmt_f64(snap.sum),
        snap.count
    );
}

/// Cumulative-bucket rendering of a histogram carrying one constant label,
/// e.g. `lat_bucket{kind="hdc",le="0.001"}`. The caller owns the single
/// `# TYPE` header shared by all label values of the family.
pub fn prometheus_histogram_labeled(
    out: &mut String,
    name: &str,
    label_key: &str,
    label_value: &str,
    snap: &HistogramSnapshot,
) {
    let n = prometheus_name(name);
    let mut lbl = format!("{label_key}=");
    push_json_str(&mut lbl, label_value);
    let mut cumulative = 0u64;
    for &(idx, count) in &snap.buckets {
        cumulative += count;
        let (_, hi) = bucket_bounds(idx);
        let _ = writeln!(
            out,
            "{n}_bucket{{{lbl},le=\"{}\"}} {cumulative}",
            fmt_f64(hi)
        );
    }
    let _ = writeln!(out, "{n}_bucket{{{lbl},le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(
        out,
        "{n}_sum{{{lbl}}} {}\n{n}_count{{{lbl}}} {}",
        fmt_f64(snap.sum),
        snap.count
    );
}

/// Attach OpenMetrics-style exemplars (`# {request_id="..."} value`) to the
/// `_bucket` lines of `metric` in an already-rendered exposition. Exemplars
/// are `(bucket index, label, value)` from [`crate::metrics::Exemplars`];
/// a bucket line matches when its `le` equals the bucket's upper bound.
/// Lines of other metrics pass through untouched.
pub fn attach_exemplars(text: &str, metric: &str, exemplars: &[(usize, String, f64)]) -> String {
    if exemplars.is_empty() {
        return text.to_string();
    }
    let prefix = format!("{}_bucket{{le=\"", prometheus_name(metric));
    let by_le: Vec<(String, &str, f64)> = exemplars
        .iter()
        .map(|(idx, label, v)| (fmt_f64(bucket_bounds(*idx).1), label.as_str(), *v))
        .collect();
    let mut out = String::with_capacity(text.len() + 64 * exemplars.len());
    for line in text.lines() {
        out.push_str(line);
        if let Some(rest) = line.strip_prefix(&prefix) {
            if let Some(le) = rest.split('"').next() {
                if let Some((_, label, v)) = by_le.iter().find(|(l, _, _)| l == le) {
                    out.push_str(" # {request_id=");
                    push_json_str(&mut out, label);
                    out.push_str("} ");
                    push_f64(&mut out, *v);
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Span aggregates as three counter families labelled by span name:
/// `xlda_span_seconds_total`, `xlda_span_self_seconds_total`,
/// `xlda_span_calls_total`.
pub fn prometheus_spans(out: &mut String, aggregates: &[SpanAgg]) {
    type Family = (&'static str, fn(&SpanAgg) -> f64);
    if aggregates.is_empty() {
        return;
    }
    let families: [Family; 3] = [
        ("xlda_span_seconds_total", |a| a.total_nanos as f64 * 1e-9),
        ("xlda_span_self_seconds_total", |a| {
            a.self_nanos as f64 * 1e-9
        }),
        ("xlda_span_calls_total", |a| a.calls as f64),
    ];
    for (metric, value) in families {
        let _ = writeln!(out, "# TYPE {metric} counter");
        for a in aggregates {
            let _ = write!(out, "{metric}{{span=");
            push_json_str(out, a.name);
            let _ = writeln!(out, "}} {}", fmt_f64(value(a)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn f64_emit_round_trips_and_nulls_non_finite() {
        for &x in &[0.0, -0.0, 1.5, 0.1, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let s = fmt_f64(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} emitted as {s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_str_escapes() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("evacam.report"), "evacam_report");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let h = Histogram::new();
        h.record(0.001);
        h.record(0.001);
        h.record(1.0);
        let mut out = String::new();
        prometheus_histogram(&mut out, "lat.seconds", &h.snapshot());
        assert!(out.contains("# TYPE lat_seconds histogram"));
        assert!(out.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("lat_seconds_count 3"));
        // Two buckets populated; the second cumulative count is 3.
        let cum: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(cum, vec![2, 3]);
    }

    #[test]
    fn labeled_histogram_rendering_carries_the_label() {
        let h = Histogram::new();
        h.record(0.002);
        h.record(0.002);
        let mut out = String::new();
        prometheus_histogram_labeled(&mut out, "serve.kind_latency", "kind", "hdc", &h.snapshot());
        assert!(out.contains("serve_kind_latency_bucket{kind=\"hdc\",le=\""));
        assert!(out.contains("serve_kind_latency_bucket{kind=\"hdc\",le=\"+Inf\"} 2"));
        assert!(out.contains("serve_kind_latency_count{kind=\"hdc\"} 2"));
    }

    #[test]
    fn exemplars_attach_to_matching_bucket_lines_only() {
        use crate::metrics::{bucket_index, Exemplars};
        let h = Histogram::new();
        h.record(0.001);
        h.record(1.0);
        let ex = Exemplars::new();
        ex.observe(1.0, "req-slow");
        let mut text = String::new();
        prometheus_histogram(&mut text, "lat.seconds", &h.snapshot());
        prometheus_counter(&mut text, "completed", 2);
        let annotated = attach_exemplars(&text, "lat.seconds", &ex.snapshot());
        let hi = fmt_f64(bucket_bounds(bucket_index(1.0).unwrap()).1);
        let want = format!("le=\"{hi}\"}} 2 # {{request_id=\"req-slow\"}} 1");
        assert!(
            annotated.contains(&want),
            "missing exemplar in:\n{annotated}"
        );
        // The 0.001 bucket line and the counter line are untouched.
        let plain: Vec<&str> = annotated
            .lines()
            .filter(|l| l.contains("# {request_id="))
            .collect();
        assert_eq!(plain.len(), 1);
        assert!(annotated.contains("completed 2"));
        // Line count is preserved.
        assert_eq!(annotated.lines().count(), text.lines().count());
    }

    #[test]
    fn ndjson_lines_are_parseable_shape() {
        let mut out = String::new();
        ndjson_counter(&mut out, "completed", 7);
        assert_eq!(
            out,
            "{\"type\":\"counter\",\"name\":\"completed\",\"value\":7}\n"
        );
        let e = SpanEvent {
            name: "sweep.point",
            thread: 1,
            start_ns: 10,
            dur_ns: 20,
            depth: 0,
        };
        let mut line = String::new();
        ndjson_span_event(&mut line, &e);
        assert!(line.starts_with("{\"type\":\"span\",\"name\":\"sweep.point\""));
        assert!(line.ends_with("}\n"));
    }
}
