//! Opt-in span event capture for NDJSON traces and slow-query dumps.
//!
//! When tracing is started (on top of span collection being enabled), every
//! finished span appends a [`SpanEvent`] to a per-thread buffer; buffers are
//! registered in a process-global list so [`stop`] can drain them all. Each
//! buffer is capped so a runaway trace degrades to dropped events (counted)
//! rather than unbounded memory.
//!
//! The sweep engine additionally uses [`thread_watermark`] /
//! [`thread_events_since`] to snip out just the events belonging to one sweep
//! point on the current thread, for top-K slow-point capture.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock;

/// One finished span occurrence, timestamped relative to the process trace
/// epoch (the first instant the trace subsystem was touched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Small sequential id of the recording thread.
    pub thread: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at the time the span was entered (0 = root).
    pub depth: u32,
}

/// Per-thread cap on buffered events; beyond it events are dropped and
/// counted in [`dropped`].
const PER_THREAD_CAP: usize = 1 << 20;

struct ThreadBuf {
    id: u32,
    events: Mutex<Vec<SpanEvent>>,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH_TICKS: OnceLock<u64> = OnceLock::new();

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        buffers()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&buf));
        buf
    };
}

fn epoch_ticks() -> u64 {
    *EPOCH_TICKS.get_or_init(clock::now)
}

/// Whether trace capture is currently on.
#[inline]
pub fn active() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Begin capturing span events: clears all buffers and the drop counter.
pub fn start() {
    clock::warmup();
    let _ = epoch_ticks();
    {
        let bufs = buffers().lock().unwrap_or_else(|e| e.into_inner());
        for b in bufs.iter() {
            b.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
    DROPPED.store(0, Ordering::Relaxed);
    TRACING.store(true, Ordering::SeqCst);
}

/// Stop capturing and drain every thread's events, sorted by
/// `(thread, start_ns, depth)`. Buffers owned by exited threads are pruned.
pub fn stop() -> Vec<SpanEvent> {
    TRACING.store(false, Ordering::SeqCst);
    let mut bufs = buffers().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for b in bufs.iter() {
        out.append(&mut b.events.lock().unwrap_or_else(|e| e.into_inner()));
    }
    // A strong count of 1 means the owning thread's TLS is gone.
    bufs.retain(|b| Arc::strong_count(b) > 1);
    out.sort_by_key(|e| (e.thread, e.start_ns, e.depth));
    out
}

/// Events dropped since the last [`start`] because a thread buffer hit its cap.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Called by the span layer for every finished span while tracing is active.
pub(crate) fn record(name: &'static str, start_ticks: u64, dur_ns: u64, depth: u32) {
    let start_ns = clock::to_nanos(start_ticks.saturating_sub(epoch_ticks()));
    LOCAL.with(|buf| {
        let mut events = buf.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() >= PER_THREAD_CAP {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(SpanEvent {
            name,
            thread: buf.id,
            start_ns,
            dur_ns,
            depth,
        });
    });
}

/// Current length of this thread's event buffer — a cursor for
/// [`thread_events_since`].
pub fn thread_watermark() -> usize {
    LOCAL.with(|buf| buf.events.lock().unwrap_or_else(|e| e.into_inner()).len())
}

/// Clone this thread's events recorded at or after `mark` (a value previously
/// returned by [`thread_watermark`] on the same thread).
pub fn thread_events_since(mark: usize) -> Vec<SpanEvent> {
    LOCAL.with(|buf| {
        let events = buf.events.lock().unwrap_or_else(|e| e.into_inner());
        events.get(mark..).map_or_else(Vec::new, <[_]>::to_vec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{self, set_enabled};
    use std::sync::Mutex as StdMutex;

    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn start_stop_captures_events_across_threads() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        start();
        set_enabled(true);
        {
            let _s = crate::span!("trace.main");
        }
        let handle = std::thread::spawn(|| {
            let _s = crate::span!("trace.worker");
        });
        handle.join().unwrap();
        set_enabled(false);
        let events = stop();
        assert!(events.iter().any(|e| e.name == "trace.main"));
        assert!(events.iter().any(|e| e.name == "trace.worker"));
        let main_thread = events
            .iter()
            .find(|e| e.name == "trace.main")
            .unwrap()
            .thread;
        let worker = events
            .iter()
            .find(|e| e.name == "trace.worker")
            .unwrap()
            .thread;
        assert_ne!(main_thread, worker);
        // Sorted by (thread, start_ns, depth).
        let keys: Vec<_> = events
            .iter()
            .map(|e| (e.thread, e.start_ns, e.depth))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn watermark_scopes_per_point_capture() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        start();
        set_enabled(true);
        {
            let _s = crate::span!("trace.before_mark");
        }
        let mark = thread_watermark();
        {
            let _outer = crate::span!("trace.point");
            let _inner = crate::span!("trace.point_child");
        }
        let slice = thread_events_since(mark);
        set_enabled(false);
        stop();
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|e| e.name.starts_with("trace.point")));
        assert!(slice.iter().any(|e| e.depth == 0));
        assert!(slice.iter().any(|e| e.depth == 1));
        // span::aggregate_snapshot still sees the pre-mark span.
        assert!(span::aggregate_snapshot()
            .iter()
            .any(|a| a.name == "trace.before_mark" && a.calls > 0));
    }

    #[test]
    fn inactive_trace_records_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Not started: spans aggregate but do not produce events.
        set_enabled(true);
        let mark = thread_watermark();
        {
            let _s = crate::span!("trace.untraced");
        }
        set_enabled(false);
        assert!(thread_events_since(mark).is_empty());
    }
}
