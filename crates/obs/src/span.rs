//! Hierarchical spans with ~ns-overhead disabled path.
//!
//! Usage from instrumented code:
//!
//! ```
//! xlda_obs::span::set_enabled(true);
//! {
//!     let _s = xlda_obs::span!("evacam.report");
//!     // ... work measured until `_s` drops ...
//! }
//! assert!(xlda_obs::aggregate_snapshot().iter().any(|a| a.name == "evacam.report"));
//! xlda_obs::span::set_enabled(false);
//! ```
//!
//! Each `span!` site holds a `OnceLock` pointing at a process-global,
//! name-deduplicated [`SpanStat`] (leaked, so `&'static` — the set of span
//! names is small and fixed by the instrumentation). When the global switch is
//! off, entering a span is one relaxed atomic load and returns an inert guard.
//! When on, the guard pushes a frame on a thread-local stack; on drop it
//! accumulates elapsed time into the stat, subtracts time attributed to child
//! spans to produce *self* time, and credits its elapsed time to the parent
//! frame. Self times therefore partition wall time per thread: summing
//! `self_nanos` over all spans equals the total time spent inside any span.
//!
//! The guard only pops what it pushed: toggling the switch while spans are
//! open cannot unbalance the stack (spans entered while disabled are inert
//! for their whole lifetime).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{clock, trace};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span collection on or off process-wide. Off by default.
pub fn set_enabled(on: bool) {
    if on {
        // Calibrate the tick clock outside any measured span.
        clock::warmup();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether span collection is currently enabled (the hot-path gate).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-name aggregate accumulator. One per distinct span name, process-wide.
pub struct SpanStat {
    name: &'static str,
    total_nanos: AtomicU64,
    self_nanos: AtomicU64,
    calls: AtomicU64,
}

/// Read-only copy of one span's aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    pub name: &'static str,
    /// Wall time spent inside this span, including child spans.
    pub total_nanos: u64,
    /// Wall time spent inside this span, excluding child spans.
    pub self_nanos: u64,
    pub calls: u64,
}

static SITES: Mutex<Vec<&'static SpanStat>> = Mutex::new(Vec::new());

/// Intern a span name, returning its process-global accumulator.
///
/// Stats are leaked intentionally: span names come from `span!` call sites,
/// so the set is bounded by the instrumentation, not by input.
pub fn register_site(name: &'static str) -> &'static SpanStat {
    let mut sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = sites.iter().find(|s| s.name == name) {
        return s;
    }
    let stat: &'static SpanStat = Box::leak(Box::new(SpanStat {
        name,
        total_nanos: AtomicU64::new(0),
        self_nanos: AtomicU64::new(0),
        calls: AtomicU64::new(0),
    }));
    sites.push(stat);
    stat
}

/// Snapshot all span aggregates, sorted by name.
pub fn aggregate_snapshot() -> Vec<SpanAgg> {
    let sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<SpanAgg> = sites
        .iter()
        .map(|s| SpanAgg {
            name: s.name,
            total_nanos: s.total_nanos.load(Ordering::Relaxed),
            self_nanos: s.self_nanos.load(Ordering::Relaxed),
            calls: s.calls.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// Zero every span aggregate (names stay registered).
pub fn reset_aggregates() {
    let sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
    for s in sites.iter() {
        s.total_nanos.store(0, Ordering::Relaxed);
        s.self_nanos.store(0, Ordering::Relaxed);
        s.calls.store(0, Ordering::Relaxed);
    }
}

/// Diff two sorted aggregate snapshots (`after - before`, saturating), keeping
/// only spans with activity in the window.
pub fn diff_aggregates(before: &[SpanAgg], after: &[SpanAgg]) -> Vec<SpanAgg> {
    after
        .iter()
        .filter_map(|a| {
            let b = before.iter().find(|b| b.name == a.name);
            let (bt, bs, bc) = b.map_or((0, 0, 0), |b| (b.total_nanos, b.self_nanos, b.calls));
            let d = SpanAgg {
                name: a.name,
                total_nanos: a.total_nanos.saturating_sub(bt),
                self_nanos: a.self_nanos.saturating_sub(bs),
                calls: a.calls.saturating_sub(bc),
            };
            (d.calls > 0 || d.total_nanos > 0).then_some(d)
        })
        .collect()
}

/// Deepest nesting level with child-time accounting; spans below it are
/// still timed, but their parents' self time absorbs them. Far deeper
/// than any real instrumentation nests.
const MAX_DEPTH: usize = 64;

/// Per-thread span stack as a fixed `Cell` array: `child[d]` holds the
/// nanoseconds already attributed to finished children of the open span
/// at depth `d`. Cells keep the hot path free of `RefCell` borrow
/// bookkeeping and heap growth.
struct LocalStack {
    depth: Cell<usize>,
    child: [Cell<u64>; MAX_DEPTH],
}

thread_local! {
    static STACK: LocalStack = const {
        LocalStack {
            depth: Cell::new(0),
            child: [const { Cell::new(0) }; MAX_DEPTH],
        }
    };
}

struct Active {
    stat: &'static SpanStat,
    start_ticks: u64,
    depth: u32,
}

/// RAII guard for one span occurrence. Inert (a `None`) when the subsystem is
/// disabled at entry time.
pub struct SpanGuard {
    inner: Option<Active>,
}

impl SpanGuard {
    /// Entry point used by the `span!` macro: lazily interns `name` once per
    /// call site, then enters.
    #[inline]
    pub fn enter_site(site: &OnceLock<&'static SpanStat>, name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { inner: None };
        }
        Self::enter_stat(site.get_or_init(|| register_site(name)))
    }

    /// Enter a span by name, paying a registry lookup per call. Exists for
    /// the deprecated `layer_timed` shim; new code should use `span!`.
    #[inline]
    pub fn enter_named(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { inner: None };
        }
        Self::enter_stat(register_site(name))
    }

    fn enter_stat(stat: &'static SpanStat) -> SpanGuard {
        let depth = STACK.with(|s| {
            let d = s.depth.get();
            if d < MAX_DEPTH {
                s.child[d].set(0);
            }
            s.depth.set(d + 1);
            d as u32
        });
        SpanGuard {
            inner: Some(Active {
                stat,
                start_ticks: clock::now(),
                depth,
            }),
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let elapsed = clock::to_nanos(clock::now().saturating_sub(active.start_ticks));
        let depth = active.depth as usize;
        let child_nanos = STACK.with(|s| {
            // Only pop what we pushed: restore our own depth rather than
            // decrementing, so an unbalanced inner guard cannot skew us.
            s.depth.set(depth);
            let child = if depth < MAX_DEPTH {
                s.child[depth].get()
            } else {
                0
            };
            if let Some(parent) = depth.checked_sub(1).and_then(|p| s.child.get(p)) {
                parent.set(parent.get().saturating_add(elapsed));
            }
            child
        });
        let self_nanos = elapsed.saturating_sub(child_nanos);
        active
            .stat
            .total_nanos
            .fetch_add(elapsed, Ordering::Relaxed);
        active
            .stat
            .self_nanos
            .fetch_add(self_nanos, Ordering::Relaxed);
        active.stat.calls.fetch_add(1, Ordering::Relaxed);
        if trace::active() {
            trace::record(active.stat.name, active.start_ticks, elapsed, active.depth);
        }
    }
}

/// Open a named span until the returned guard drops.
///
/// `$name` must be a string literal (or other `&'static str` constant
/// expression); the site's stat pointer is interned on first use.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::span::SpanStat> =
            ::std::sync::OnceLock::new();
        $crate::span::SpanGuard::enter_site(&SITE, $name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    // Span enablement is process-global and tests run in parallel; serialize
    // everything that toggles it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn window<F: FnOnce()>(f: F) -> Vec<SpanAgg> {
        let before = aggregate_snapshot();
        set_enabled(true);
        f();
        set_enabled(false);
        diff_aggregates(&before, &aggregate_snapshot())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let before = aggregate_snapshot();
        {
            let s = span!("test.disabled");
            assert!(!s.is_active());
        }
        let diff = diff_aggregates(&before, &aggregate_snapshot());
        assert!(diff.iter().all(|a| a.name != "test.disabled"));
    }

    #[test]
    fn nesting_attributes_self_time_to_the_right_span() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let diff = window(|| {
            let _outer = span!("test.outer");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = span!("test.inner");
                std::thread::sleep(Duration::from_millis(8));
            }
        });
        let outer = diff.iter().find(|a| a.name == "test.outer").unwrap();
        let inner = diff.iter().find(|a| a.name == "test.inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Outer total covers both sleeps; outer self excludes the inner one.
        assert!(outer.total_nanos >= inner.total_nanos);
        assert!(outer.total_nanos >= 12_000_000);
        assert!(inner.self_nanos >= 8_000_000);
        assert!(outer.self_nanos < outer.total_nanos);
        // Self times partition the outer total (up to measurement jitter
        // *increasing* the parts, never losing time).
        assert!(outer.self_nanos + inner.total_nanos >= outer.total_nanos);
    }

    #[test]
    fn toggling_mid_span_keeps_the_stack_balanced() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let inert = span!("test.toggle_outer");
        set_enabled(true);
        {
            let active = span!("test.toggle_inner");
            assert!(active.is_active());
        }
        set_enabled(false);
        drop(inert);
        STACK.with(|s| assert_eq!(s.depth.get(), 0));
    }

    #[test]
    fn reset_zeroes_aggregates() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        window(|| {
            let _s = span!("test.reset");
        });
        reset_aggregates();
        let snap = aggregate_snapshot();
        let agg = snap.iter().find(|a| a.name == "test.reset").unwrap();
        assert_eq!((agg.calls, agg.total_nanos, agg.self_nanos), (0, 0, 0));
    }
}
