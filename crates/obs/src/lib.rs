//! Structured observability for the xlda stack.
//!
//! Three cooperating pieces, all zero-dependency and allocation-light:
//!
//! * [`span`] — hierarchical spans with monotonic timing. A global
//!   [`span::set_enabled`] switch (mirroring `xlda_num::memo`) gates the whole
//!   subsystem: the disabled path is a single relaxed atomic load, so
//!   instrumented hot paths cost ~a nanosecond when profiling is off.
//!   Per-span aggregates (total time, *self* time excluding children, call
//!   count) accumulate in leaked `&'static` atomics and can be snapshotted or
//!   diffed at any point.
//! * [`metrics`] — lock-free [`metrics::Counter`]s and log-bucketed
//!   [`metrics::Histogram`]s (8 sub-buckets per power of two, so reported
//!   quantiles are exact within a 12.5% bucket width). Recording is a couple
//!   of atomic adds and therefore mergeable across threads by construction:
//!   the same multiset of samples yields bit-identical snapshots regardless of
//!   which thread recorded which sample. A [`metrics::Registry`] groups named
//!   instruments per subsystem (e.g. one per server instance).
//! * [`trace`] — an opt-in event recorder that captures every finished span
//!   as a `(name, thread, start_ns, dur_ns, depth)` tuple in per-thread
//!   buffers, for NDJSON dumps and per-point slow-query capture.
//! * [`flight`] — a per-request flight recorder: stage-timestamped
//!   [`flight::RequestTrace`] handles whose completed records land in a
//!   tail-sampling [`flight::FlightRecorder`] ring (errors, deadline misses,
//!   and EWMA-slow requests are retained; the boring majority is dropped
//!   and counted).
//!
//! [`export`] renders all of the above as NDJSON lines or Prometheus text,
//! and owns the shortest-round-trip f64 formatter shared with
//! `xlda-serve`'s JSON layer.

pub mod clock;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod span;
pub mod trace;

pub use flight::{CompletedTrace, FlightRecorder, FlightStats, RequestTrace, Stage};
pub use metrics::{Counter, Exemplars, Histogram, HistogramSnapshot, Registry};
pub use span::{aggregate_snapshot, enabled, reset_aggregates, set_enabled, SpanAgg, SpanGuard};
pub use trace::SpanEvent;
