//! Lock-free counters and log-bucketed histograms.
//!
//! A [`Histogram`] buckets positive samples by their binary exponent plus the
//! top [`SUB_BITS`] mantissa bits: 8 sub-buckets per power of two, so each
//! bucket spans a ≤12.5% relative range and reported quantiles are exact
//! within that resolution. The exponent is clamped to `[MIN_EXP, MAX_EXP)`
//! (≈5.4e-20 .. 4.3e9 — generous for both seconds and point counts);
//! out-of-range and non-positive samples land in the edge buckets, and
//! non-finite samples are ignored.
//!
//! All state is atomic adds, so recording commutes: any partition of the same
//! sample multiset across threads produces a bit-identical
//! [`HistogramSnapshot`] (property-tested in `tests/histogram_props.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Mantissa bits used for sub-bucketing: 2^3 = 8 sub-buckets per binade.
pub const SUB_BITS: u32 = 3;
/// Sub-buckets per power of two.
pub const SUBS: usize = 1 << SUB_BITS;
/// Smallest unbiased exponent with its own buckets; below goes to bucket 0.
pub const MIN_EXP: i32 = -64;
/// One past the largest represented exponent; above goes to the last bucket.
pub const MAX_EXP: i32 = 32;
/// Total bucket count: 96 binades x 8 sub-buckets.
pub const NBUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBS;

/// Map a sample to its bucket, or `None` for NaN/infinities. Public so
/// sidecar per-bucket state (e.g. [`Exemplars`]) can share the layout.
pub fn bucket_index(v: f64) -> Option<usize> {
    if !v.is_finite() {
        return None;
    }
    if v <= 0.0 {
        return Some(0);
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        // Includes subnormals (biased exponent 0).
        return Some(0);
    }
    if exp >= MAX_EXP {
        return Some(NBUCKETS - 1);
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    Some((exp - MIN_EXP) as usize * SUBS + sub)
}

/// Nominal `[lo, hi)` range of a bucket. Edge buckets additionally absorb
/// clamped samples outside the nominal range.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    let binade = (index / SUBS) as i32 + MIN_EXP;
    let sub = (index % SUBS) as f64;
    let base = (binade as f64).exp2();
    let lo = base * (1.0 + sub / SUBS as f64);
    let hi = base * (1.0 + (sub + 1.0) / SUBS as f64);
    (lo, hi)
}

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-bucketed histogram; see the module docs for the bucket layout.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits, updated by CAS so the sum is exact in f64 arithmetic order
    /// up to add commutation (adds of finite positives are order-insensitive
    /// enough for reporting; the count and buckets are exact).
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one sample. NaN and infinities are ignored.
    pub fn record(&self, v: f64) {
        let Some(idx) = bucket_index(v) else { return };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// Point-in-time copy of a histogram: `(bucket index, count)` pairs for the
/// populated buckets only.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank position of the `p`-quantile: the holding bucket, the
    /// cumulative count *before* it, and its own count. `None` when empty.
    fn quantile_position(&self, p: f64) -> Option<(usize, u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            if seen + n >= rank {
                return Some((idx, seen, n));
            }
            seen += n;
        }
        self.buckets.last().map(|&(idx, n)| (idx, seen - n, n))
    }

    /// Bucket holding the nearest-rank `p`-quantile (`p` in `[0, 1]`), or
    /// `None` if the histogram is empty.
    fn quantile_bucket(&self, p: f64) -> Option<usize> {
        self.quantile_position(p).map(|(idx, _, _)| idx)
    }

    /// Nearest-rank quantile with within-bucket linear interpolation: the
    /// bucket's samples are treated as evenly spread over its `[lo, hi)`
    /// range, and the quantile rank picks the midpoint of its slot. Exact
    /// within the bucket's ≤12.5% relative width, and strictly monotone in
    /// rank — nearby quantiles (p50 vs p95) no longer collapse to one bare
    /// bucket midpoint when their samples share a bucket. NaN when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        self.quantile_position(p)
            .map_or(f64::NAN, |(idx, seen, n)| {
                let (lo, hi) = bucket_bounds(idx);
                let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
                // 1-based rank within this bucket, mapped to the middle of its
                // 1/n slot: rank 1 of 1 is the midpoint, recovering the old
                // behaviour for single-sample buckets.
                let slot = (rank - seen).min(n) as f64 - 0.5;
                lo + (hi - lo) * (slot / n as f64)
            })
    }

    /// Nominal `[lo, hi)` bounds of the bucket holding the `p`-quantile.
    /// `(NaN, NaN)` when empty.
    pub fn quantile_bounds(&self, p: f64) -> (f64, f64) {
        self.quantile_bucket(p)
            .map_or((f64::NAN, f64::NAN), bucket_bounds)
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Per-bucket exemplar store for a histogram: remembers the label (e.g. a
/// request id) of the largest observation per bucket since the last reset,
/// OpenMetrics-style. The common path is one atomic load per observation —
/// the per-bucket label mutex is taken only when a new within-bucket maximum
/// is being installed (at most once per bucket per scrape window for a
/// stationary workload). Under a race the stored label can belong to a
/// near-maximal observation instead of the true maximum; exemplars are
/// debugging breadcrumbs, not accounting, so that is acceptable.
pub struct Exemplars {
    slots: Vec<ExemplarSlot>,
}

struct ExemplarSlot {
    /// Bits of the largest observation seen this window; 0 (= 0.0) = empty.
    /// Finite positive f64 bit patterns order the same as their values.
    max_bits: AtomicU64,
    label: Mutex<String>,
}

impl Default for Exemplars {
    fn default() -> Self {
        Self::new()
    }
}

impl Exemplars {
    pub fn new() -> Self {
        Exemplars {
            slots: (0..NBUCKETS)
                .map(|_| ExemplarSlot {
                    max_bits: AtomicU64::new(0),
                    label: Mutex::new(String::new()),
                })
                .collect(),
        }
    }

    /// Observe a sample with its label. Non-positive and non-finite samples
    /// are ignored (they carry no useful exemplar).
    pub fn observe(&self, v: f64, label: &str) {
        if !v.is_finite() || v <= 0.0 {
            return;
        }
        let Some(idx) = bucket_index(v) else { return };
        let slot = &self.slots[idx];
        let bits = v.to_bits();
        let mut cur = slot.max_bits.load(Ordering::Relaxed);
        loop {
            if bits <= cur {
                return;
            }
            match slot.max_bits.compare_exchange_weak(
                cur,
                bits,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut l = slot.label.lock().unwrap_or_else(|e| e.into_inner());
        l.clear();
        l.push_str(label);
    }

    /// Populated exemplars as `(bucket index, label, value)`, bucket-ordered.
    pub fn snapshot(&self) -> Vec<(usize, String, f64)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let bits = slot.max_bits.load(Ordering::Relaxed);
                if bits == 0 {
                    return None;
                }
                let label = slot.label.lock().unwrap_or_else(|e| e.into_inner()).clone();
                Some((idx, label, f64::from_bits(bits)))
            })
            .collect()
    }

    /// Clear all exemplars, starting a new observation window.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.max_bits.store(0, Ordering::Relaxed);
            slot.label.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// A named group of instruments, e.g. one per server instance. Get-or-create
/// by name; handles are `Arc`s so callers cache them outside the lock.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut list = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, c)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        list.push((name.to_string(), Arc::clone(&c)));
        c
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut list = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        list.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let list = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, u64)> = list.iter().map(|(n, c)| (n.clone(), c.get())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// All histograms as `(name, snapshot)`, sorted by name.
    pub fn histogram_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        let list = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, HistogramSnapshot)> = list
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Render every instrument in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            crate::export::prometheus_counter(&mut out, &name, value);
        }
        for (name, snap) in self.histogram_snapshot() {
            crate::export::prometheus_histogram(&mut out, &name, &snap);
        }
        out
    }

    /// Render every instrument as NDJSON metric lines.
    pub fn ndjson(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            crate::export::ndjson_counter(&mut out, &name, value);
        }
        for (name, snap) in self.histogram_snapshot() {
            crate::export::ndjson_histogram(&mut out, &name, &snap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_width_is_within_one_eighth() {
        for idx in 0..NBUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo > 0.0 && hi > lo, "bucket {idx}: [{lo}, {hi})");
            assert!(hi / lo <= 1.0 + 1.0 / 7.0 + 1e-12, "bucket {idx} too wide");
        }
    }

    #[test]
    fn samples_land_in_their_nominal_bucket() {
        for &v in &[1e-12, 3.7e-3, 0.99, 1.0, 1.5, 2.0, 123.456, 8.1e8] {
            let idx = bucket_index(v).unwrap();
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi}) (bucket {idx})");
        }
    }

    #[test]
    fn edge_cases_clamp_or_skip() {
        assert_eq!(bucket_index(0.0), Some(0));
        assert_eq!(bucket_index(-1.0), Some(0));
        assert_eq!(bucket_index(1e-300), Some(0));
        assert_eq!(bucket_index(1e300), Some(NBUCKETS - 1));
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(bucket_index(f64::INFINITY), None);
    }

    #[test]
    fn quantiles_track_recorded_samples() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 0.001 ..= 1.000
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert!((snap.sum - 500.5).abs() < 1e-6);
        for (p, exact) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let (lo, hi) = snap.quantile_bounds(p);
            assert!(
                lo <= exact && exact < hi,
                "p{p}: {exact} not in [{lo}, {hi})"
            );
            let q = snap.quantile(p);
            assert!((q / exact - 1.0).abs() < 0.15, "p{p}: {q} vs {exact}");
        }
    }

    #[test]
    fn nearby_samples_do_not_collapse_quantiles() {
        // Regression for the BENCH_serve.json pathology: queue-wait samples
        // clustered around 2.3 ms reported p50 == p95 == 2.3193359375 ms
        // exactly, because quantile() returned a bare bucket midpoint.
        let h = Histogram::new();
        for i in 0..200 {
            h.record(2.2e-3 + i as f64 * 1e-6); // 2.200 .. 2.399 ms
        }
        let snap = h.snapshot();
        let (p50, p95) = (snap.quantile(0.5), snap.quantile(0.95));
        assert!(
            p50 < p95,
            "p50 {p50} must be strictly below p95 {p95} on spread samples"
        );
        // Interpolated quantiles stay inside their bucket bounds.
        for (p, q) in [(0.5, p50), (0.95, p95)] {
            let (lo, hi) = snap.quantile_bounds(p);
            assert!(lo <= q && q < hi, "p{p}: {q} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn single_sample_bucket_reports_its_midpoint() {
        let h = Histogram::new();
        h.record(1.3);
        let snap = h.snapshot();
        let (lo, hi) = snap.quantile_bounds(0.5);
        assert_eq!(snap.quantile(0.5), (lo + hi) / 2.0);
    }

    #[test]
    fn empty_histogram_reports_nan() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert!(snap.quantile(0.5).is_nan());
    }

    #[test]
    fn exemplars_keep_the_largest_label_per_bucket() {
        let ex = Exemplars::new();
        // 1.00 and 1.05 share a bucket (12.5% wide); 2.0 does not.
        ex.observe(1.00, "small");
        ex.observe(1.05, "large");
        ex.observe(1.01, "mid"); // not a new max: label stays "large"
        ex.observe(2.0, "other-bucket");
        let snap = ex.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].1, "large");
        assert_eq!(snap[0].2, 1.05);
        assert_eq!(snap[1].1, "other-bucket");
        // Bucket indices agree with the histogram layout.
        assert_eq!(snap[0].0, bucket_index(1.05).unwrap());
        ex.reset();
        assert!(ex.snapshot().is_empty());
    }

    #[test]
    fn exemplars_ignore_unusable_samples() {
        let ex = Exemplars::new();
        ex.observe(0.0, "zero");
        ex.observe(-1.0, "neg");
        ex.observe(f64::NAN, "nan");
        ex.observe(f64::INFINITY, "inf");
        assert!(ex.snapshot().is_empty());
    }

    #[test]
    fn registry_is_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("requests").get(), 3);
        assert_eq!(reg.counter_snapshot(), vec![("requests".to_string(), 3)]);
        let h = reg.histogram("latency");
        h.record(0.25);
        assert_eq!(reg.histogram("latency").snapshot().count, 1);
    }
}
