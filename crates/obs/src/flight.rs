//! Per-request flight recorder: stage-timestamped request traces with a
//! tail-sampling retention policy.
//!
//! Aggregate instruments ([`crate::metrics`], [`crate::span`]) answer
//! "what is p95"; this module answers "which request *was* the p95, and
//! where did its time go" — interactively, without replaying load under
//! a profiler.
//!
//! Three pieces:
//!
//! * [`RequestTrace`] — one handle per in-flight request, threaded
//!   through the serving pipeline. Each pipeline stage boundary is one
//!   relaxed atomic store of a cumulative nanosecond offset (clocked by
//!   [`crate::clock`], so ~5 ns per mark on x86-64); the handle is
//!   shareable across the event loop and worker threads behind an `Arc`.
//! * [`CompletedTrace`] — the finished record: stage durations that
//!   **telescope exactly** to the recorded total (durations are diffs of
//!   the cumulative marks, so their sum *is* the final mark), plus point
//!   counts and memo/store cache-hit attribution.
//! * [`FlightRecorder`] — a fixed-capacity ring of retained traces with
//!   tail-sampling: errors and deadline misses are always kept, a
//!   request slower than an EWMA-derived threshold is kept, and the
//!   boring majority is dropped (counted, never silently). A dedicated
//!   slowest-slot guarantees the worst request observed so far is always
//!   retrievable even when the ring has wrapped past it.
//!
//! The retention threshold is `SLOW_MULT ×` the larger of the recorder's
//! own total-latency EWMA and an external rate hint (the serve tier
//! passes its drain-rate EWMA, the same signal behind its backpressure
//! hints), so "slow" adapts to the workload instead of being a fixed
//! knob. Until the first sample establishes a baseline every trace is
//! retained — a cold recorder has no basis for calling anything boring.

use crate::clock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pipeline stage names, in lifecycle order. Indices match [`Stage`].
pub const STAGES: [&str; 5] = ["decode", "queue", "batch", "eval", "write"];

/// Retention threshold multiplier over the latency EWMA baseline.
pub const SLOW_MULT: u64 = 8;

/// One pipeline stage boundary of a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Frame received → request parsed.
    Decode = 0,
    /// Parsed → drained from the admission queue by a worker.
    Queue = 1,
    /// Drained → this job's evaluation starts (batch serialization).
    Batch = 2,
    /// Evaluation + response serialization done.
    Eval = 3,
    /// Response handed to the socket/sink.
    Write = 4,
}

impl Stage {
    /// The stage's export name.
    pub fn name(self) -> &'static str {
        STAGES[self as usize]
    }
}

/// A live per-request trace handle. Marks are cumulative nanoseconds
/// since the request was accepted, one atomic store each; unset stages
/// read as zero-length when the trace completes.
pub struct RequestTrace {
    id: String,
    kind: &'static str,
    t0_ticks: u64,
    /// Cumulative ns-since-accept per stage boundary; 0 = not reached.
    marks: [AtomicU64; STAGES.len()],
    points: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    store_hits: AtomicU64,
}

impl RequestTrace {
    /// Starts a trace for a parsed request. `t0_ticks` is the clock
    /// reading taken when the frame arrived (before parsing), so the
    /// decode stage — marked here — covers request parsing.
    pub fn begin(id: String, kind: &'static str, t0_ticks: u64) -> Self {
        let t = Self {
            id,
            kind,
            t0_ticks,
            marks: [(); STAGES.len()].map(|_| AtomicU64::new(0)),
            points: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
        };
        t.mark(Stage::Decode);
        t
    }

    /// Nanoseconds since accept, floored at 1 so a recorded mark is
    /// never confused with the 0 = unset sentinel.
    fn elapsed_ns(&self) -> u64 {
        clock::to_nanos(clock::now().saturating_sub(self.t0_ticks)).max(1)
    }

    /// Records a stage boundary: one relaxed atomic store.
    #[inline]
    pub fn mark(&self, stage: Stage) {
        self.marks[stage as usize].store(self.elapsed_ns(), Ordering::Relaxed);
    }

    /// Records a stage boundary only if it has not been marked yet
    /// (e.g. `Queue` is marked at batch drain by the worker, and again
    /// defensively at evaluation start for inline fast-path requests).
    #[inline]
    pub fn mark_once(&self, stage: Stage) {
        let _ = self.marks[stage as usize].compare_exchange(
            0,
            self.elapsed_ns(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Records how many result points the response carried.
    pub fn set_points(&self, n: u64) {
        self.points.store(n, Ordering::Relaxed);
    }

    /// Records cache attribution for this request's evaluation (memo
    /// hit/miss and store hit deltas observed around it).
    pub fn set_cache(&self, memo_hits: u64, memo_misses: u64, store_hits: u64) {
        self.memo_hits.store(memo_hits, Ordering::Relaxed);
        self.memo_misses.store(memo_misses, Ordering::Relaxed);
        self.store_hits.store(store_hits, Ordering::Relaxed);
    }

    /// The request id this trace follows.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The request kind this trace follows.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Freezes the trace into its completed record. Stage durations are
    /// diffs of consecutive (monotonically clamped) cumulative marks, so
    /// `stage_ns.iter().sum() == total_ns` holds exactly.
    pub fn complete(&self, outcome: &'static str) -> CompletedTrace {
        let mut stage_ns = [0u64; STAGES.len()];
        let mut prev = 0u64;
        for (i, m) in self.marks.iter().enumerate() {
            let m = m.load(Ordering::Relaxed);
            if m > prev {
                stage_ns[i] = m - prev;
                prev = m;
            }
        }
        CompletedTrace {
            id: self.id.clone(),
            kind: self.kind,
            outcome,
            total_ns: prev,
            stage_ns,
            points: self.points.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
        }
    }
}

/// A finished request trace: identity, outcome, the telescoping stage
/// breakdown, and cache attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    /// Client-chosen request id.
    pub id: String,
    /// Request kind (scenario kind, or `"refine"`).
    pub kind: &'static str,
    /// `"ok"` or the response error code (`"deadline"`, `"invalid"`,
    /// `"infeasible"`, `"panic"`, ...).
    pub outcome: &'static str,
    /// Accept-to-write latency in nanoseconds (the last stage mark).
    pub total_ns: u64,
    /// Per-stage durations in [`STAGES`] order; sums to `total_ns`.
    pub stage_ns: [u64; STAGES.len()],
    /// Result points the response carried.
    pub points: u64,
    /// Memo-cache hits attributed to this request's evaluation.
    pub memo_hits: u64,
    /// Memo-cache misses attributed to this request's evaluation.
    pub memo_misses: u64,
    /// Result-store hits attributed to this request's evaluation.
    pub store_hits: u64,
}

impl CompletedTrace {
    /// Whether the request completed successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome == "ok"
    }
}

/// Point-in-time recorder counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightStats {
    /// Traces observed since construction.
    pub completed: u64,
    /// Traces retained (ring inserts; the ring holds the latest `cap`).
    pub retained: u64,
    /// Boring traces sampled out (counted, never silently lost).
    pub dropped: u64,
    /// Current retention threshold in ns (0 = retain everything).
    pub threshold_ns: u64,
}

/// Fixed-capacity tail-sampling trace store. Writers contend only on
/// per-slot mutexes after a lock-free cursor `fetch_add`; the common
/// path (a boring trace) is two atomic ops and never takes a lock.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<CompletedTrace>>>,
    cursor: AtomicUsize,
    completed: AtomicU64,
    retained: AtomicU64,
    dropped: AtomicU64,
    /// EWMA (α = 1/8) of observed total latencies, ns; 0 until seeded.
    ewma_total_ns: AtomicU64,
    /// Largest total latency observed so far, ns.
    slowest_ns: AtomicU64,
    /// The slowest trace, pinned outside the ring so it survives wraps.
    slowest: Mutex<Option<CompletedTrace>>,
}

impl FlightRecorder {
    /// Creates a recorder retaining up to `cap` traces (min 1).
    pub fn new(cap: usize) -> Self {
        Self {
            slots: (0..cap.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ewma_total_ns: AtomicU64::new(0),
            slowest_ns: AtomicU64::new(0),
            slowest: Mutex::new(None),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The current retention threshold given an external per-request
    /// rate hint in ns (pass 0 for none). Zero means "retain all":
    /// no baseline has been established yet.
    pub fn threshold_ns(&self, rate_hint_ns: u64) -> u64 {
        self.ewma_total_ns
            .load(Ordering::Relaxed)
            .max(rate_hint_ns)
            .saturating_mul(SLOW_MULT)
    }

    /// Observes one completed trace, retaining or sampling it out.
    /// `rate_hint_ns` lets the caller fold in its own drain-rate EWMA
    /// (the serve tier's backpressure signal) as a threshold floor.
    pub fn observe(&self, trace: CompletedTrace, rate_hint_ns: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let total = trace.total_ns;
        let threshold = self.threshold_ns(rate_hint_ns);
        // Fold into the EWMA after thresholding, so a slow outlier does
        // not raise the bar it is judged against.
        let cur = self.ewma_total_ns.load(Ordering::Relaxed);
        let next = if cur == 0 {
            total.max(1)
        } else {
            cur - cur / 8 + total / 8
        };
        self.ewma_total_ns.store(next.max(1), Ordering::Relaxed);
        // Pin the slowest trace seen so far (lock only on a new max).
        let mut max = self.slowest_ns.load(Ordering::Relaxed);
        while total > max {
            match self.slowest_ns.compare_exchange_weak(
                max,
                total,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    *self.slowest.lock().unwrap_or_else(|e| e.into_inner()) = Some(trace.clone());
                    break;
                }
                Err(actual) => max = actual,
            }
        }
        let retain = !trace.is_ok() || threshold == 0 || total >= threshold;
        if !retain {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.retained.fetch_add(1, Ordering::Relaxed);
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(trace);
    }

    /// Boring traces sampled out so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Current counters.
    pub fn stats(&self, rate_hint_ns: u64) -> FlightStats {
        FlightStats {
            completed: self.completed.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            threshold_ns: self.threshold_ns(rate_hint_ns),
        }
    }

    /// The retained traces (ring contents plus the pinned slowest,
    /// deduplicated), slowest first.
    pub fn snapshot(&self) -> Vec<CompletedTrace> {
        let mut out: Vec<CompletedTrace> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        if let Some(slow) = self
            .slowest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
        {
            if !out
                .iter()
                .any(|t| t.id == slow.id && t.total_ns == slow.total_ns)
            {
                out.push(slow);
            }
        }
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.id.cmp(&b.id)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, outcome: &'static str, total_ns: u64) -> CompletedTrace {
        // Spread the total over three stages so telescoping is nontrivial.
        let a = total_ns / 2;
        let b = total_ns / 4;
        let c = total_ns - a - b;
        CompletedTrace {
            id: id.to_string(),
            kind: "hdc",
            outcome,
            total_ns,
            stage_ns: [a, b, c, 0, 0],
            points: 5,
            memo_hits: 2,
            memo_misses: 1,
            store_hits: 0,
        }
    }

    #[test]
    fn live_trace_marks_telescope_to_total() {
        let t = RequestTrace::begin("r1".into(), "hdc", clock::now());
        t.mark(Stage::Queue);
        t.mark(Stage::Batch);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.mark(Stage::Eval);
        t.mark(Stage::Write);
        t.set_points(7);
        t.set_cache(3, 1, 0);
        let done = t.complete("ok");
        assert_eq!(done.id, "r1");
        assert_eq!(done.kind, "hdc");
        assert!(done.is_ok());
        assert_eq!(done.points, 7);
        assert_eq!((done.memo_hits, done.memo_misses), (3, 1));
        let sum: u64 = done.stage_ns.iter().sum();
        assert_eq!(sum, done.total_ns, "stage durations must telescope");
        assert!(done.total_ns >= 2_000_000, "slept 2 ms: {}", done.total_ns);
        // The eval stage absorbed the sleep.
        assert!(done.stage_ns[Stage::Eval as usize] >= 1_000_000);
    }

    #[test]
    fn unreached_stages_read_as_zero_length() {
        let t = RequestTrace::begin("r2".into(), "mann", clock::now());
        t.mark(Stage::Queue);
        // Batch/Eval never marked; Write closes the trace.
        t.mark(Stage::Write);
        let done = t.complete("deadline");
        assert_eq!(done.stage_ns[Stage::Batch as usize], 0);
        assert_eq!(done.stage_ns[Stage::Eval as usize], 0);
        assert_eq!(done.stage_ns.iter().sum::<u64>(), done.total_ns);
        assert!(!done.is_ok());
    }

    #[test]
    fn mark_once_does_not_overwrite() {
        let t = RequestTrace::begin("r3".into(), "hdc", clock::now());
        t.mark_once(Stage::Queue);
        let first = t.marks[Stage::Queue as usize].load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.mark_once(Stage::Queue);
        assert_eq!(
            t.marks[Stage::Queue as usize].load(Ordering::Relaxed),
            first
        );
    }

    #[test]
    fn cold_recorder_retains_until_baseline_then_samples_out_boring() {
        let rec = FlightRecorder::new(8);
        // First observation: no baseline, retained unconditionally.
        rec.observe(trace("a", "ok", 10_000), 0);
        let s = rec.stats(0);
        assert_eq!((s.completed, s.retained, s.dropped), (1, 1, 0));
        assert!(s.threshold_ns > 0, "EWMA seeded after first trace");
        // A stream of near-baseline traces is boring.
        for i in 0..50 {
            rec.observe(trace(&format!("b{i}"), "ok", 10_000), 0);
        }
        let s = rec.stats(0);
        assert_eq!(s.completed, 51);
        assert!(s.dropped >= 49, "boring traces sampled out: {s:?}");
        // An 8x-over-threshold outlier is retained.
        rec.observe(trace("slow", "ok", 10_000 * SLOW_MULT * 2), 0);
        assert!(rec.snapshot().iter().any(|t| t.id == "slow"));
    }

    #[test]
    fn errors_always_retained_regardless_of_speed() {
        let rec = FlightRecorder::new(8);
        for i in 0..20 {
            rec.observe(trace(&format!("w{i}"), "ok", 10_000), 0);
        }
        rec.observe(trace("boom", "panic", 1), 0);
        rec.observe(trace("late", "deadline", 1), 0);
        let snap = rec.snapshot();
        assert!(snap.iter().any(|t| t.id == "boom"));
        assert!(snap.iter().any(|t| t.id == "late"));
    }

    #[test]
    fn slowest_trace_survives_ring_wrap() {
        let rec = FlightRecorder::new(2);
        rec.observe(trace("slowest", "ok", 1_000_000), 0);
        // Errors force ring inserts that wrap past the slowest entry.
        for i in 0..10 {
            rec.observe(trace(&format!("e{i}"), "invalid", 500), 0);
        }
        let snap = rec.snapshot();
        assert_eq!(snap[0].id, "slowest", "pinned slowest leads: {snap:?}");
        // Ring holds cap entries + the pinned slowest.
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn external_rate_hint_raises_the_threshold() {
        let rec = FlightRecorder::new(4);
        rec.observe(trace("seed", "ok", 1_000), 0);
        // Own EWMA ~1 µs; a 1 ms drain hint dominates.
        assert_eq!(rec.threshold_ns(1_000_000), 1_000_000 * SLOW_MULT);
        // 2 ms would be slow against the own-EWMA threshold (~8 µs) but is
        // under the hinted one: sampled out of the ring. It still shows up
        // in the snapshot because the slowest-slot pins it — only the drop
        // counter records the sampling decision.
        let dropped_before = rec.dropped();
        rec.observe(trace("mid", "ok", 2_000_000), 1_000_000);
        assert_eq!(rec.dropped(), dropped_before + 1);
    }
}
