//! Monotonic timestamps for span timing.
//!
//! `std::time::Instant` is a `clock_gettime` call costing ~20–50 ns per
//! read (vDSO performance varies a lot inside containers), and every
//! span needs two reads. On x86-64 the timestamp counter is constant-
//! rate and ~5 ns to read, so spans record raw ticks and convert to
//! nanoseconds once, at exit, through a factor calibrated against the
//! OS clock. Other architectures fall back to `Instant`, where ticks
//! simply are nanoseconds.
//!
//! The TSC is not guaranteed monotonic across sockets; callers diff
//! ticks with `saturating_sub`, so a backwards step costs one zero-
//! length measurement, never an underflow.

use std::sync::OnceLock;
use std::time::Instant;

/// Current timestamp in clock ticks (nanoseconds on non-x86-64).
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn now() -> u64 {
    // SAFETY: RDTSC has no preconditions.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Current timestamp in clock ticks (nanoseconds on non-x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn now() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(target_arch = "x86_64")]
fn calibrate() -> f64 {
    // Busy-wait ~1 ms against the OS clock; the boundary-read error is
    // tens of nanoseconds, well under 0.1% of the window.
    let t0 = Instant::now();
    let c0 = now();
    let mut dt = t0.elapsed();
    while dt < std::time::Duration::from_millis(1) {
        std::hint::spin_loop();
        dt = t0.elapsed();
    }
    let dc = now().saturating_sub(c0);
    if dc == 0 {
        return 1.0;
    }
    dt.as_nanos() as f64 / dc as f64
}

#[cfg(not(target_arch = "x86_64"))]
fn calibrate() -> f64 {
    1.0
}

fn nanos_per_tick() -> f64 {
    static F: OnceLock<f64> = OnceLock::new();
    *F.get_or_init(calibrate)
}

/// Convert a tick interval to nanoseconds.
#[inline]
pub fn to_nanos(dticks: u64) -> u64 {
    (dticks as f64 * nanos_per_tick()) as u64
}

/// Force calibration now, so the first measured span doesn't absorb the
/// ~1 ms calibration spin. Called from `span::set_enabled`.
pub fn warmup() {
    nanos_per_tick();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tick_intervals_convert_to_plausible_nanos() {
        warmup();
        let c0 = now();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(20));
        let wall = t0.elapsed().as_nanos() as u64;
        let measured = to_nanos(now().saturating_sub(c0));
        // Within 20% of the OS clock: calibration only needs profiling
        // accuracy, not timekeeping accuracy.
        assert!(
            measured as f64 > wall as f64 * 0.8 && (measured as f64) < wall as f64 * 1.2,
            "tsc measured {measured} ns vs wall {wall} ns"
        );
    }

    #[test]
    fn now_is_monotonic_on_one_thread() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }
}
