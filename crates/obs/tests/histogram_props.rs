//! Histogram correctness properties (ISSUE 5 satellite):
//!
//! 1. For any recorded sample set, the *exact* nearest-rank p50/p95 of the
//!    samples lies inside the bucket the histogram reports for that quantile
//!    — i.e. the reported quantile is within one bucket's relative error
//!    (≤12.5%) of the true one.
//! 2. Recording is commutative: any partition of the same multiset across
//!    threads produces a bit-identical snapshot (merge determinism).

use proptest::prelude::*;
use std::sync::Arc;
use xlda_obs::metrics::Histogram;

/// Samples well inside the histogram's nominal exponent range so edge-bucket
/// clamping never kicks in: (2^-60, 2^30).
fn arb_sample() -> impl Strategy<Value = f64> {
    (-60.0f64..30.0).prop_map(|e| e.exp2())
}

/// Exact nearest-rank quantile of a sample set.
fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reported_quantiles_bracket_the_exact_ones(
        samples in prop::collection::vec(arb_sample(), 1..400),
        p in prop::sample::select(vec![0.5f64, 0.95]),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, p);

        // The exact sample quantile must fall in the reported bucket, and
        // the reported midpoint is then within one bucket width of it.
        let (lo, hi) = snap.quantile_bounds(p);
        prop_assert!(
            lo <= exact && exact < hi,
            "p{}: exact {} outside reported bucket [{}, {})",
            p, exact, lo, hi
        );
        let reported = snap.quantile(p);
        prop_assert!(
            (reported / exact - 1.0).abs() <= 0.125 + 1e-9,
            "p{}: reported {} not within bucket resolution of exact {}",
            p, reported, exact
        );
    }

    /// Within-bucket interpolation keeps distinct quantile ranks strictly
    /// ordered: for any 2+ samples, reported p50 < p95 — even when every
    /// sample lands in one bucket (the ISSUE 6 quantile-collapse bugfix).
    #[test]
    fn spread_samples_keep_p50_strictly_below_p95(
        samples in prop::collection::vec(arb_sample(), 2..400),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let (p50, p95) = (snap.quantile(0.5), snap.quantile(0.95));
        prop_assert!(
            p50 < p95,
            "p50 {} not strictly below p95 {} over {} samples",
            p50, p95, samples.len()
        );
    }

    /// Within-bucket interpolation is monotone in rank across the full
    /// quantile ladder (ISSUE 10 satellite, pinning the serve `stats` p99
    /// addition): for any sample set, p50 ≤ p95 ≤ p99 — including the
    /// degenerate single-sample and everything-in-one-bucket cases where
    /// the ranks coincide.
    #[test]
    fn quantile_ladder_is_monotone(
        samples in prop::collection::vec(arb_sample(), 1..400),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let (p50, p95, p99) = (snap.quantile(0.5), snap.quantile(0.95), snap.quantile(0.99));
        prop_assert!(
            p50 <= p95 && p95 <= p99,
            "quantile ladder not monotone over {} samples: p50 {} p95 {} p99 {}",
            samples.len(), p50, p95, p99
        );
    }

    #[test]
    fn cross_thread_merge_is_deterministic(
        samples in prop::collection::vec(arb_sample(), 1..256),
        threads in 2usize..5,
    ) {
        // Reference: record everything sequentially on one thread.
        let reference = Histogram::new();
        for &v in &samples {
            reference.record(v);
        }

        // Same multiset, striped across worker threads in round-robin.
        let shared = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&shared);
                let chunk: Vec<f64> = samples
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                std::thread::spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                })
            })
            .collect();
        for hnd in handles {
            hnd.join().unwrap();
        }

        let a = reference.snapshot();
        let b = shared.snapshot();
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(&a.buckets, &b.buckets);
        // Bucket counts and total count are exactly deterministic; the f64
        // sum can differ only by addition reassociation.
        let scale = a.sum.abs().max(1.0);
        prop_assert!(((a.sum - b.sum) / scale).abs() < 1e-9);
        prop_assert_eq!(a.quantile(0.5).to_bits(), b.quantile(0.5).to_bits());
        prop_assert_eq!(a.quantile(0.95).to_bits(), b.quantile(0.95).to_bits());
    }
}
