//! Property-based tests for the device models.

use proptest::prelude::*;
use xlda_device::fefet::Fefet;
use xlda_device::mlc::{MultiLevelCell, StateVariable};
use xlda_device::rram::Rram;
use xlda_num::rng::Rng64;

fn arb_cell() -> impl Strategy<Value = MultiLevelCell> {
    (1u8..=4, 0.1f64..2.0, 0.0f64..0.3).prop_map(|(bits, window, sigma)| {
        MultiLevelCell::uniform(
            StateVariable::ThresholdVoltage,
            bits,
            0.2,
            0.2 + window,
            sigma,
        )
    })
}

proptest! {
    #[test]
    fn zero_sigma_roundtrips_all_levels(bits in 1u8..=4, window in 0.1f64..2.0, seed in any::<u64>()) {
        let cell = MultiLevelCell::uniform(StateVariable::Conductance, bits, 1.0, 1.0 + window, 0.0);
        let mut rng = Rng64::new(seed);
        for level in 0..cell.level_count() {
            prop_assert_eq!(cell.program_read(level, &mut rng), level);
        }
    }

    #[test]
    fn readback_always_a_valid_level(cell in arb_cell(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        for _ in 0..50 {
            let level = rng.index(cell.level_count());
            let read = cell.program_read(level, &mut rng);
            prop_assert!(read < cell.level_count());
        }
    }

    #[test]
    fn error_rate_is_probability_and_monotone_in_sigma(
        bits in 1u8..=4,
        sigma in 0.0f64..0.3,
    ) {
        let lo = MultiLevelCell::uniform(StateVariable::ThresholdVoltage, bits, 0.4, 1.6, sigma);
        let hi = lo.with_sigma(sigma + 0.1);
        for level in 0..lo.level_count() {
            let e_lo = lo.level_error_rate(level);
            let e_hi = hi.level_error_rate(level);
            prop_assert!((0.0..=1.0).contains(&e_lo));
            prop_assert!(e_hi >= e_lo - 1e-12);
        }
    }

    #[test]
    fn program_verified_tightens_distribution(
        cell in arb_cell(),
        seed in any::<u64>(),
    ) {
        prop_assume!(cell.sigma() > 0.01);
        let mut rng = Rng64::new(seed);
        let tol = cell.sigma() / 2.0;
        let level = rng.index(cell.level_count());
        let target = cell.level_target(level);
        // With 16 attempts, nearly every write lands within tolerance.
        let mut within = 0;
        for _ in 0..50 {
            let v = cell.program_verified(level, tol, 16, &mut rng);
            if (v - target).abs() <= tol {
                within += 1;
            }
        }
        prop_assert!(within >= 45, "only {within}/50 within tolerance");
    }

    #[test]
    fn fefet_cam_conductance_bounded_and_symmetric(dv in -3.0f64..3.0) {
        let dev = Fefet::silicon();
        let g = dev.cam_cell_conductance(dv);
        prop_assert!(g >= dev.g_off && g <= dev.g_on);
        prop_assert!((g - dev.cam_cell_conductance(-dv)).abs() < 1e-18);
    }

    #[test]
    fn fefet_cam_conductance_monotone_in_deviation(dv in 0.0f64..1.0) {
        let dev = Fefet::silicon();
        prop_assert!(dev.cam_cell_conductance(dv + 0.05) >= dev.cam_cell_conductance(dv));
    }

    #[test]
    fn rram_program_stays_in_window(seed in any::<u64>(), t in 0.0f64..1.0) {
        let dev = Rram::taox();
        let target = dev.g_min + t * (dev.g_max - dev.g_min);
        let mut rng = Rng64::new(seed);
        for _ in 0..50 {
            let g = dev.program(target, &mut rng);
            prop_assert!((dev.g_min..=dev.g_max).contains(&g));
        }
    }

    #[test]
    fn rram_relax_stays_in_window(seed in any::<u64>(), t in 0.0f64..1.0, decades in 0.0f64..10.0) {
        let dev = Rram::taox();
        let g0 = dev.g_min + t * (dev.g_max - dev.g_min);
        let mut rng = Rng64::new(seed);
        let g = dev.relax(g0, decades, &mut rng);
        prop_assert!((dev.g_min..=dev.g_max).contains(&g));
    }

    #[test]
    fn rram_sigma_positive_everywhere(t in 0.0f64..1.0) {
        let dev = Rram::taox();
        let g = dev.g_min + t * (dev.g_max - dev.g_min);
        prop_assert!(dev.programming_sigma(g) > 0.0);
    }

    #[test]
    fn stochastic_hrs_in_window(seed in any::<u64>()) {
        let dev = Rram::taox();
        let mut rng = Rng64::new(seed);
        for _ in 0..100 {
            let g = dev.sample_stochastic_hrs(&mut rng);
            prop_assert!((dev.g_min..=dev.g_max).contains(&g));
        }
    }
}
