//! Multi-level cell programming and readout.
//!
//! Storing `b` bits in one device means placing its state variable (FeFET
//! threshold voltage, RRAM conductance, ...) onto one of `2^b` target
//! levels. Real programming lands near the target with some spread; when
//! spreads of adjacent levels overlap, read errors appear (paper
//! Fig. 3G-i). This module provides the shared machinery: level grids,
//! Gaussian programming, nearest-level readout, and analytical
//! error-rate computation.

use xlda_num::rng::Rng64;
use xlda_num::stats::{gaussian_overlap_error, Histogram};

/// What physical quantity the levels represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateVariable {
    /// Threshold voltage (V) — three-terminal devices (FeFET, flash).
    ThresholdVoltage,
    /// Conductance (S) — two-terminal resistive devices.
    Conductance,
}

/// A multi-level cell: `2^bits` target levels with Gaussian programming
/// spread.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLevelCell {
    variable: StateVariable,
    levels: Vec<f64>,
    sigma: f64,
}

impl MultiLevelCell {
    /// Creates a cell with levels spaced uniformly across
    /// `[window_lo, window_hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `bits > 4`, the window is empty, or `sigma`
    /// is negative.
    pub fn uniform(
        variable: StateVariable,
        bits: u8,
        window_lo: f64,
        window_hi: f64,
        sigma: f64,
    ) -> Self {
        assert!((1..=4).contains(&bits), "1..=4 bits per cell supported");
        assert!(window_lo < window_hi, "window must be non-empty");
        assert!(sigma >= 0.0, "negative sigma");
        let n = 1usize << bits;
        let levels = (0..n)
            .map(|i| window_lo + (window_hi - window_lo) * i as f64 / (n - 1) as f64)
            .collect();
        Self {
            variable,
            levels,
            sigma,
        }
    }

    /// Creates a cell from explicit level targets (ascending).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 levels, levels are not strictly ascending,
    /// or `sigma` is negative.
    pub fn from_levels(variable: StateVariable, levels: Vec<f64>, sigma: f64) -> Self {
        assert!(levels.len() >= 2, "need at least two levels");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly ascending"
        );
        assert!(sigma >= 0.0, "negative sigma");
        Self {
            variable,
            levels,
            sigma,
        }
    }

    /// The physical quantity being programmed.
    pub fn variable(&self) -> StateVariable {
        self.variable
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Bits stored per cell (`floor(log2(levels))`).
    pub fn bits(&self) -> u8 {
        (usize::BITS - 1 - self.levels.len().leading_zeros()) as u8
    }

    /// Target value of level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level_target(&self, i: usize) -> f64 {
        self.levels[i]
    }

    /// All level targets.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Programming spread (one standard deviation).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns a copy with a different programming spread.
    ///
    /// Used for the Fig. 3G sigma sweep.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_sigma(&self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative sigma");
        Self {
            sigma,
            ..self.clone()
        }
    }

    /// Spacing between adjacent levels (the "window" per state).
    pub fn min_level_spacing(&self) -> f64 {
        self.levels
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min)
    }

    /// Programs level `i`, returning the analog value actually written
    /// (target plus Gaussian programming error).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn program(&self, i: usize, rng: &mut Rng64) -> f64 {
        assert!(i < self.levels.len(), "level out of range");
        rng.normal(self.levels[i], self.sigma)
    }

    /// Reads back the nearest level index for an analog value.
    pub fn read_level(&self, analog: f64) -> usize {
        // Levels are ascending; nearest-target decision = midpoint slicing.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &l) in self.levels.iter().enumerate() {
            let d = (analog - l).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Programs then reads, returning the (possibly wrong) readout level.
    pub fn program_read(&self, i: usize, rng: &mut Rng64) -> usize {
        self.read_level(self.program(i, rng))
    }

    /// Program-and-verify: re-programs until the written value lands
    /// within `tolerance` of the target, up to `max_iters` attempts
    /// (returning the last attempt if none succeeds). This is the
    /// standard closed-loop MLC write scheme; it truncates the
    /// programming distribution at the verify tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, `tolerance` is negative, or
    /// `max_iters == 0`.
    pub fn program_verified(
        &self,
        i: usize,
        tolerance: f64,
        max_iters: usize,
        rng: &mut Rng64,
    ) -> f64 {
        assert!(tolerance >= 0.0, "negative tolerance");
        assert!(max_iters > 0, "need at least one attempt");
        let target = self.level_target(i);
        let mut value = self.program(i, rng);
        for _ in 1..max_iters {
            if (value - target).abs() <= tolerance {
                break;
            }
            value = self.program(i, rng);
        }
        value
    }

    /// Analytical probability that programming level `i` reads back as a
    /// different level (single-sided Gaussian tail across each adjacent
    /// midpoint).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level_error_rate(&self, i: usize) -> f64 {
        assert!(i < self.levels.len(), "level out of range");
        let mut p = 0.0;
        if i > 0 {
            p += gaussian_overlap_error(self.levels[i - 1], self.levels[i], self.sigma);
        }
        if i + 1 < self.levels.len() {
            p += gaussian_overlap_error(self.levels[i], self.levels[i + 1], self.sigma);
        }
        p.min(1.0)
    }

    /// Worst-case level error rate across all levels.
    pub fn max_error_rate(&self) -> f64 {
        (0..self.levels.len())
            .map(|i| self.level_error_rate(i))
            .fold(0.0, f64::max)
    }

    /// Monte-Carlo histogram of programmed analog values for level `i`
    /// (the Fig. 3G-i state-distribution plot).
    pub fn state_histogram(
        &self,
        i: usize,
        samples: usize,
        bins: usize,
        rng: &mut Rng64,
    ) -> Histogram {
        let _obs = xlda_obs::span!("device.state_histogram");
        let span = self.levels[self.levels.len() - 1] - self.levels[0];
        let lo = self.levels[0] - 0.25 * span - 4.0 * self.sigma;
        let hi = self.levels[self.levels.len() - 1] + 0.25 * span + 4.0 * self.sigma;
        let mut h = Histogram::new(lo, hi, bins);
        for _ in 0..samples {
            h.add(self.program(i, rng));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(bits: u8, sigma: f64) -> MultiLevelCell {
        // FeFET-like: 1.2 V memory window starting at 0.4 V.
        MultiLevelCell::uniform(StateVariable::ThresholdVoltage, bits, 0.4, 1.6, sigma)
    }

    #[test]
    fn uniform_level_grid() {
        let c = cell(2, 0.0);
        assert_eq!(c.level_count(), 4);
        assert_eq!(c.bits(), 2);
        assert!((c.level_target(0) - 0.4).abs() < 1e-12);
        assert!((c.level_target(3) - 1.6).abs() < 1e-12);
        assert!((c.min_level_spacing() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_sigma_reads_back_exactly() {
        let c = cell(3, 0.0);
        let mut rng = Rng64::new(1);
        for i in 0..8 {
            assert_eq!(c.program_read(i, &mut rng), i);
        }
    }

    #[test]
    fn small_sigma_rarely_errors() {
        let c = cell(3, 0.010); // 10 mV against ~171 mV spacing
        let mut rng = Rng64::new(2);
        let mut errors = 0;
        for _ in 0..2000 {
            let lvl = rng.index(8);
            if c.program_read(lvl, &mut rng) != lvl {
                errors += 1;
            }
        }
        assert!(errors < 5, "{errors} errors");
    }

    #[test]
    fn paper_sigma_94mv_overlaps_for_3bit() {
        // The paper's measured sigma (94 mV) visibly overlaps adjacent
        // 3-bit states (spacing ~171 mV) — Fig. 3G-i.
        let c = cell(3, 0.094);
        assert!(c.max_error_rate() > 0.1);
        // ...while 1-bit cells (spacing 1.2 V) remain clean.
        let c1 = cell(1, 0.094);
        assert!(c1.max_error_rate() < 1e-9);
    }

    #[test]
    fn error_rate_monotone_in_sigma() {
        let lo = cell(2, 0.02).max_error_rate();
        let hi = cell(2, 0.15).max_error_rate();
        assert!(hi > lo);
    }

    #[test]
    fn interior_levels_err_more_than_edges() {
        let c = cell(2, 0.1);
        assert!(c.level_error_rate(1) > c.level_error_rate(0));
        assert!(c.level_error_rate(2) > c.level_error_rate(3));
    }

    #[test]
    fn monte_carlo_matches_analytical() {
        let c = cell(2, 0.08);
        let mut rng = Rng64::new(7);
        let lvl = 1;
        let trials = 40_000;
        let mut errs = 0;
        for _ in 0..trials {
            if c.program_read(lvl, &mut rng) != lvl {
                errs += 1;
            }
        }
        let mc = errs as f64 / trials as f64;
        let analytical = c.level_error_rate(lvl);
        assert!(
            (mc - analytical).abs() < 0.01,
            "mc {mc} vs analytical {analytical}"
        );
    }

    #[test]
    fn histogram_centers_on_target() {
        let c = cell(1, 0.05);
        let mut rng = Rng64::new(9);
        let h = c.state_histogram(1, 5000, 64, &mut rng);
        // Find the modal bin; it should sit near the level-1 target (1.6).
        let (mode, _) = h
            .counts()
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("non-empty");
        assert!((h.bin_center(mode) - 1.6).abs() < 0.1);
    }

    #[test]
    fn with_sigma_replaces_spread() {
        let c = cell(2, 0.05).with_sigma(0.2);
        assert_eq!(c.sigma(), 0.2);
        assert_eq!(c.level_count(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_levels_panic() {
        MultiLevelCell::from_levels(StateVariable::Conductance, vec![1.0, 0.5], 0.0);
    }
}
