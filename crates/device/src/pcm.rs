//! Phase-change memory device model.
//!
//! PCM stores state in the crystalline/amorphous phase of a chalcogenide
//! (typically GST). It behaves much like RRAM at the array level (paper
//! Sec. II-B) with two distinguishing non-idealities: slow crystallizing
//! SET pulses and resistance *drift* — the amorphous resistance grows as a
//! power law in time, which erodes multi-level windows.

use crate::mlc::{MultiLevelCell, StateVariable};
use crate::{DeviceKind, MemoryDevice};

/// Analytical PCM model.
#[derive(Debug, Clone, PartialEq)]
pub struct Pcm {
    flavor: &'static str,
    /// Crystalline (SET) conductance (S).
    pub g_set: f64,
    /// Amorphous (RESET) conductance (S).
    pub g_reset: f64,
    /// Programming spread as a fraction of target conductance.
    pub sigma_rel: f64,
    /// Drift exponent ν in `R(t) = R0 (t/t0)^ν` for amorphous states.
    pub drift_nu: f64,
    write_voltage: f64,
    write_latency: f64,
    write_energy: f64,
    read_voltage: f64,
    endurance: f64,
    retention: f64,
    cell_area_f2: f64,
}

impl Pcm {
    /// Ge₂Sb₂Te₅ preset (90 nm class, matching the Fig. 5 reference chip).
    pub fn gst() -> Self {
        Self {
            flavor: "GST-PCM",
            g_set: 100e-6,
            g_reset: 0.5e-6,
            sigma_rel: 0.06,
            drift_nu: 0.05,
            write_voltage: 3.0,
            // SET (crystallization) dominates: ~150 ns.
            write_latency: 150e-9,
            write_energy: 5e-12,
            read_voltage: 0.2,
            endurance: 1e9,
            retention: 10.0 * 365.25 * 86400.0,
            cell_area_f2: 4.0,
        }
    }

    /// Conductance of an amorphous-phase state after `t_s` seconds,
    /// relative to its value at `t0_s` (resistance drift).
    ///
    /// # Panics
    ///
    /// Panics unless both times are positive.
    pub fn drifted_conductance(&self, g0: f64, t0_s: f64, t_s: f64) -> f64 {
        assert!(t0_s > 0.0 && t_s > 0.0, "times must be positive");
        // R grows as (t/t0)^nu, so G shrinks correspondingly.
        g0 * (t_s / t0_s).powf(-self.drift_nu)
    }

    /// Multi-level cell over the conductance window.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4`.
    pub fn mlc(&self, bits: u8) -> MultiLevelCell {
        let cell = MultiLevelCell::uniform(
            StateVariable::Conductance,
            bits,
            self.g_reset,
            self.g_set,
            0.0,
        );
        let sigma = cell
            .levels()
            .iter()
            .map(|&g| self.sigma_rel * g)
            .fold(0.0, f64::max);
        cell.with_sigma(sigma)
    }
}

impl MemoryDevice for Pcm {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Pcm
    }

    fn terminals(&self) -> u8 {
        2
    }

    fn g_on(&self) -> f64 {
        self.g_set
    }

    fn g_off(&self) -> f64 {
        self.g_reset
    }

    fn write_voltage(&self) -> f64 {
        self.write_voltage
    }

    fn write_latency(&self) -> f64 {
        self.write_latency
    }

    fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn read_voltage(&self) -> f64 {
        self.read_voltage
    }

    fn endurance(&self) -> f64 {
        self.endurance
    }

    fn retention(&self) -> f64 {
        self.retention
    }

    fn cell_area_f2(&self) -> f64 {
        self.cell_area_f2
    }

    fn max_bits_per_cell(&self) -> u8 {
        2
    }

    fn name(&self) -> &str {
        self.flavor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_reduces_conductance_over_time() {
        let d = Pcm::gst();
        let g0 = 10e-6;
        let g1 = d.drifted_conductance(g0, 1.0, 10.0);
        let g2 = d.drifted_conductance(g0, 1.0, 1000.0);
        assert!(g1 < g0);
        assert!(g2 < g1);
        // One decade at nu = 0.05 is ~11% resistance growth.
        assert!((g0 / g1 - 10f64.powf(0.05)).abs() < 1e-9);
    }

    #[test]
    fn drift_identity_at_reference_time() {
        let d = Pcm::gst();
        assert_eq!(d.drifted_conductance(5e-6, 2.0, 2.0), 5e-6);
    }

    #[test]
    fn high_on_off_ratio() {
        let d = Pcm::gst();
        assert!(d.on_off_ratio() > 100.0);
    }

    #[test]
    fn slow_set_pulse() {
        // PCM SET latency exceeds RRAM's (crystallization time).
        let pcm = Pcm::gst();
        let rram = crate::rram::Rram::taox();
        assert!(pcm.write_latency() > rram.write_latency());
    }

    #[test]
    fn mlc_spans_window() {
        let d = Pcm::gst();
        let c = d.mlc(2);
        assert_eq!(c.level_count(), 4);
        assert!((c.level_target(0) - d.g_reset).abs() < 1e-12);
        assert!((c.level_target(3) - d.g_set).abs() < 1e-12);
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use crate::mlc::{MultiLevelCell, StateVariable};

    #[test]
    fn drift_erodes_mlc_windows_over_time() {
        // Resistance drift shrinks all conductances multiplicatively, so
        // absolute level spacing collapses while programming spread does
        // not — multi-level PCM read errors grow with retention time.
        let d = Pcm::gst();
        let fresh = d.mlc(2);
        let error_after = |decades: f64| {
            let t = 10f64.powf(decades);
            let drifted: Vec<f64> = fresh
                .levels()
                .iter()
                .map(|&g| d.drifted_conductance(g, 1.0, t))
                .collect();
            MultiLevelCell::from_levels(StateVariable::Conductance, drifted, fresh.sigma())
                .max_error_rate()
        };
        let day_one = error_after(0.0);
        let year_later = error_after(7.5); // ~1 year in seconds
        assert!(year_later > day_one, "day {day_one} year {year_later}");
        // But 2-level (SLC) PCM barely notices: its window is huge.
        let slc = d.mlc(1);
        let slc_drifted: Vec<f64> = slc
            .levels()
            .iter()
            .map(|&g| d.drifted_conductance(g, 1.0, 10f64.powf(7.5)))
            .collect();
        let slc_err =
            MultiLevelCell::from_levels(StateVariable::Conductance, slc_drifted, slc.sigma())
                .max_error_rate();
        assert!(slc_err < 1e-3, "slc error {slc_err}");
    }
}
