//! Static RAM cell model.
//!
//! SRAM is the volatile CMOS baseline of the design space: the fastest
//! and most endurant "device", but large (6T storage cell, 16T
//! conventional CAM cell — the size/power pain point the paper cites in
//! Sec. II-B1) and limited to one bit per cell. The 1-bit SRAM CAM in
//! Fig. 3H is built from this model.

use crate::{DeviceKind, MemoryDevice};

/// Analytical SRAM cell model.
#[derive(Debug, Clone, PartialEq)]
pub struct Sram {
    flavor: &'static str,
    g_on: f64,
    g_off: f64,
    write_latency: f64,
    write_energy: f64,
    vdd: f64,
    cell_area_f2: f64,
    /// Static leakage power per cell (W).
    pub leakage_per_cell: f64,
}

impl Sram {
    /// Standard 6T storage cell.
    pub fn cell_6t() -> Self {
        Self {
            flavor: "6T-SRAM",
            g_on: 1e-4,
            g_off: 1e-9,
            write_latency: 0.5e-9,
            write_energy: 1e-15,
            vdd: 1.0,
            cell_area_f2: 146.0,
            leakage_per_cell: 1e-9,
        }
    }

    /// Conventional 16T CMOS CAM cell (storage + compare logic).
    ///
    /// This is the bulky, power-hungry cell that motivates NVM CAMs.
    pub fn cam_cell_16t() -> Self {
        Self {
            flavor: "16T-SRAM-CAM",
            g_on: 1e-4,
            g_off: 1e-9,
            write_latency: 0.5e-9,
            write_energy: 2e-15,
            vdd: 1.0,
            cell_area_f2: 389.0,
            leakage_per_cell: 2.5e-9,
        }
    }
}

impl MemoryDevice for Sram {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Sram
    }

    fn terminals(&self) -> u8 {
        3
    }

    fn is_volatile(&self) -> bool {
        true
    }

    fn g_on(&self) -> f64 {
        self.g_on
    }

    fn g_off(&self) -> f64 {
        self.g_off
    }

    fn write_voltage(&self) -> f64 {
        self.vdd
    }

    fn write_latency(&self) -> f64 {
        self.write_latency
    }

    fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn read_voltage(&self) -> f64 {
        self.vdd
    }

    fn endurance(&self) -> f64 {
        1e16
    }

    fn retention(&self) -> f64 {
        0.0
    }

    fn cell_area_f2(&self) -> f64 {
        self.cell_area_f2
    }

    fn max_bits_per_cell(&self) -> u8 {
        1
    }

    fn name(&self) -> &str {
        self.flavor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fefet::Fefet;

    #[test]
    fn sram_is_volatile_and_fast() {
        let s = Sram::cell_6t();
        assert!(s.is_volatile());
        assert_eq!(s.retention(), 0.0);
        assert!(s.write_latency() < Fefet::beol().write_latency());
    }

    #[test]
    fn cam_cell_much_larger_than_fefet_cam() {
        // 16T SRAM CAM vs 2-FeFET CAM (2 devices x ~12 F²).
        let sram_cam = Sram::cam_cell_16t();
        let fefet_cam_area = 2.0 * Fefet::silicon().cell_area_f2();
        assert!(sram_cam.cell_area_f2() > 10.0 * fefet_cam_area);
    }

    #[test]
    fn single_bit_only() {
        assert_eq!(Sram::cell_6t().max_bits_per_cell(), 1);
    }

    #[test]
    fn leaks_statically() {
        assert!(Sram::cell_6t().leakage_per_cell > 0.0);
    }
}
