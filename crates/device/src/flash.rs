//! Floating-gate flash device model.
//!
//! Flash is the *mature* non-volatile contender in the design space
//! (paper Secs. I, II-B): extremely dense and multi-level capable, but
//! with high program voltages, very slow writes, and low endurance — the
//! combination the paper cites when ruling flash out as CPU/GPU main
//! memory while keeping it in play for AM designs.

use crate::mlc::{MultiLevelCell, StateVariable};
use crate::{DeviceKind, MemoryDevice};

/// Analytical floating-gate flash model.
#[derive(Debug, Clone, PartialEq)]
pub struct Flash {
    flavor: &'static str,
    /// Low end of the programmable V_th window (V).
    pub vth_lo: f64,
    /// High end of the programmable V_th window (V).
    pub vth_hi: f64,
    /// One-sigma V_th programming spread after verify (V).
    pub sigma_vth: f64,
    /// On conductance (S).
    pub g_on: f64,
    /// Off conductance (S).
    pub g_off: f64,
    write_voltage: f64,
    write_latency: f64,
    write_energy: f64,
    read_voltage: f64,
    endurance: f64,
    retention: f64,
    cell_area_f2: f64,
    max_bits: u8,
}

impl Flash {
    /// NOR flash preset (random-access capable, AM-friendly).
    pub fn nor() -> Self {
        Self {
            flavor: "NOR-Flash",
            vth_lo: 1.0,
            vth_hi: 7.0,
            sigma_vth: 0.15,
            g_on: 5e-5,
            g_off: 5e-10,
            write_voltage: 10.0,
            write_latency: 10e-6,
            write_energy: 50e-12,
            read_voltage: 4.5,
            endurance: 1e5,
            retention: 10.0 * 365.25 * 86400.0,
            cell_area_f2: 10.0,
            max_bits: 2,
        }
    }

    /// 3D NAND flash preset (densest, slowest; basis of the 3D NAND
    /// EX-TCAM designs the paper cites).
    pub fn nand3d() -> Self {
        Self {
            flavor: "3D-NAND-Flash",
            vth_lo: 0.5,
            vth_hi: 6.5,
            sigma_vth: 0.20,
            g_on: 2e-5,
            g_off: 2e-10,
            write_voltage: 18.0,
            write_latency: 100e-6,
            write_energy: 200e-12,
            read_voltage: 5.0,
            endurance: 3e3,
            retention: 10.0 * 365.25 * 86400.0,
            // Effective footprint after stacking amortization.
            cell_area_f2: 1.5,
            max_bits: 4,
        }
    }

    /// Multi-level cell over the V_th window.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4`.
    pub fn mlc(&self, bits: u8) -> MultiLevelCell {
        MultiLevelCell::uniform(
            StateVariable::ThresholdVoltage,
            bits,
            self.vth_lo,
            self.vth_hi,
            self.sigma_vth,
        )
    }
}

impl MemoryDevice for Flash {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Flash
    }

    fn terminals(&self) -> u8 {
        3
    }

    fn g_on(&self) -> f64 {
        self.g_on
    }

    fn g_off(&self) -> f64 {
        self.g_off
    }

    fn write_voltage(&self) -> f64 {
        self.write_voltage
    }

    fn write_latency(&self) -> f64 {
        self.write_latency
    }

    fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn read_voltage(&self) -> f64 {
        self.read_voltage
    }

    fn endurance(&self) -> f64 {
        self.endurance
    }

    fn retention(&self) -> f64 {
        self.retention
    }

    fn cell_area_f2(&self) -> f64 {
        self.cell_area_f2
    }

    fn max_bits_per_cell(&self) -> u8 {
        self.max_bits
    }

    fn name(&self) -> &str {
        self.flavor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fefet::Fefet;

    #[test]
    fn flash_writes_are_slow_and_high_voltage() {
        let f = Flash::nor();
        let fe = Fefet::silicon();
        assert!(f.write_voltage() > fe.write_voltage());
        assert!(f.write_latency() > 10.0 * fe.write_latency());
        assert!(f.endurance() <= fe.endurance());
    }

    #[test]
    fn nand_denser_but_worse_endurance_than_nor() {
        let nor = Flash::nor();
        let nand = Flash::nand3d();
        assert!(nand.cell_area_f2() < nor.cell_area_f2());
        assert!(nand.endurance() < nor.endurance());
        assert!(nand.max_bits_per_cell() > nor.max_bits_per_cell());
    }

    #[test]
    fn wide_window_supports_mlc_despite_spread() {
        let f = Flash::nand3d();
        let c = f.mlc(3);
        // 6 V window / 7 gaps ~ 0.86 V spacing vs 0.2 V sigma: workable.
        assert!(c.max_error_rate() < 0.05);
    }

    #[test]
    fn huge_on_off_ratio() {
        assert!(Flash::nor().on_off_ratio() > 1e4);
    }
}
