//! Resistive RAM device model.
//!
//! Models the Ta/TaO_x/Pt valence-change devices of the paper's few-shot
//! learning case study (Sec. IV), including the three non-idealities that
//! study turns into design levers:
//!
//! 1. **State-dependent programming variation** — there is a conductance
//!    region where variation is substantially larger; TCAM mappings avoid
//!    it ([`Rram::mlc_avoiding_variation`]).
//! 2. **Broad, stochastic HRS distributions** — device-to-device spread is
//!    larger in the high-resistance state, which is *exploited* to realize
//!    the random projection matrices of in-memory LSH
//!    ([`Rram::sample_stochastic_hrs`]).
//! 3. **Conductance relaxation** — programmed conductances fluctuate over
//!    time, flipping hash bits near decision boundaries
//!    ([`Rram::relax`]); the ternary LSH scheme of Fig. 4C suppresses the
//!    resulting errors.

use crate::mlc::{MultiLevelCell, StateVariable};
use crate::{DeviceKind, MemoryDevice};
use xlda_num::rng::Rng64;

/// Error from the fallible RRAM state-evolution entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RramError {
    /// Relaxation was asked to run over a negative or non-finite number
    /// of time decades. `decades.sqrt()` would silently turn a negative
    /// elapsed time into NaN conductance, so the input is rejected here.
    InvalidRelaxTime {
        /// The offending elapsed-time exponent.
        decades: f64,
    },
}

impl std::fmt::Display for RramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidRelaxTime { decades } => {
                write!(f, "invalid relaxation time: {decades} decades")
            }
        }
    }
}

impl std::error::Error for RramError {}

/// Analytical RRAM model.
#[derive(Debug, Clone, PartialEq)]
pub struct Rram {
    flavor: &'static str,
    /// Minimum programmable conductance (deep HRS, S).
    pub g_min: f64,
    /// Maximum programmable conductance (strong LRS, S).
    pub g_max: f64,
    /// Baseline programming spread as a fraction of the target.
    pub sigma_rel_base: f64,
    /// Extra absolute spread (S) at the center of the high-variation
    /// conductance region.
    pub sigma_hump: f64,
    /// Center of the high-variation region (S).
    pub hump_center: f64,
    /// Width of the high-variation region (S).
    pub hump_width: f64,
    /// One-sigma conductance relaxation amplitude per decade of time,
    /// as a fraction of the programmed value.
    pub relax_rel: f64,
    write_voltage: f64,
    write_latency: f64,
    write_energy: f64,
    read_voltage: f64,
    endurance: f64,
    retention: f64,
    cell_area_f2: f64,
}

impl Rram {
    /// Ta/TaO_x/Pt preset matching the prototype scale of the paper's
    /// MANN demonstration (Sec. IV).
    pub fn taox() -> Self {
        Self {
            flavor: "TaOx-RRAM",
            g_min: 2e-6,
            g_max: 200e-6,
            sigma_rel_base: 0.04,
            sigma_hump: 6e-6,
            hump_center: 60e-6,
            hump_width: 25e-6,
            relax_rel: 0.05,
            write_voltage: 2.0,
            write_latency: 50e-9,
            write_energy: 1e-12,
            read_voltage: 0.2,
            endurance: 1e8,
            retention: 3.0 * 365.25 * 86400.0,
            cell_area_f2: 4.0,
        }
    }

    /// HfO_x preset (denser window, slightly different variation profile).
    pub fn hfox() -> Self {
        Self {
            flavor: "HfOx-RRAM",
            g_min: 1e-6,
            g_max: 150e-6,
            sigma_rel_base: 0.05,
            sigma_hump: 5e-6,
            hump_center: 45e-6,
            hump_width: 20e-6,
            relax_rel: 0.06,
            write_voltage: 1.8,
            write_latency: 30e-9,
            write_energy: 0.8e-12,
            read_voltage: 0.2,
            endurance: 1e7,
            retention: 3.0 * 365.25 * 86400.0,
            cell_area_f2: 4.0,
        }
    }

    /// One-sigma programming spread (S) when targeting conductance `g`.
    ///
    /// The spread has a baseline proportional to the target plus a bump in
    /// the high-variation region — the statistical array-model behaviour
    /// described in Sec. IV.
    pub fn programming_sigma(&self, g: f64) -> f64 {
        let rel = self.sigma_rel_base * g;
        let z = (g - self.hump_center) / self.hump_width;
        rel + self.sigma_hump * (-z * z).exp()
    }

    /// Programs a target conductance, returning the value actually
    /// written (clipped to the physical window).
    ///
    /// # Panics
    ///
    /// Panics if `g_target` lies outside the programmable window.
    pub fn program(&self, g_target: f64, rng: &mut Rng64) -> f64 {
        assert!(
            (self.g_min..=self.g_max).contains(&g_target),
            "target outside programmable window"
        );
        let sigma = self.programming_sigma(g_target);
        rng.normal(g_target, sigma).clamp(self.g_min, self.g_max)
    }

    /// Applies conductance relaxation over `decades` decades of elapsed
    /// time (e.g. 1.0 for 10× the programming time), returning the drifted
    /// conductance.
    ///
    /// # Panics
    ///
    /// Panics if `decades` is negative or non-finite; use
    /// [`try_relax`](Rram::try_relax) for the fallible form.
    pub fn relax(&self, g: f64, decades: f64, rng: &mut Rng64) -> f64 {
        self.try_relax(g, decades, rng)
            .expect("negative or non-finite relaxation time")
    }

    /// Fallible [`relax`](Rram::relax): rejects negative or non-finite
    /// `decades` instead of letting `decades.sqrt()` poison the
    /// conductance with NaN.
    pub fn try_relax(&self, g: f64, decades: f64, rng: &mut Rng64) -> Result<f64, RramError> {
        if !decades.is_finite() || decades < 0.0 {
            return Err(RramError::InvalidRelaxTime { decades });
        }
        let sigma = self.relax_rel * g * decades.sqrt();
        Ok(rng.normal(g, sigma).clamp(self.g_min, self.g_max))
    }

    /// Samples a device-to-device stochastic HRS conductance.
    ///
    /// HRS distributions are broad and right-skewed (log-normal); the
    /// in-memory LSH scheme uses an array of such as-fabricated devices as
    /// a zero-mean-adjustable random projection matrix.
    pub fn sample_stochastic_hrs(&self, rng: &mut Rng64) -> f64 {
        let mu = (4.0 * self.g_min).ln();
        let g = rng.log_normal(mu, 0.6);
        g.clamp(self.g_min, self.g_max)
    }

    /// Multi-level cell over the full conductance window (naive uniform
    /// mapping).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4`.
    pub fn mlc(&self, bits: u8) -> MultiLevelCell {
        let _span = xlda_obs::span!("device.mlc");
        let cell = MultiLevelCell::uniform(
            StateVariable::Conductance,
            bits,
            self.g_min,
            self.g_max,
            0.0,
        );
        // Use the worst-case sigma across the chosen levels.
        let sigma = cell
            .levels()
            .iter()
            .map(|&g| self.programming_sigma(g))
            .fold(0.0, f64::max);
        cell.with_sigma(sigma)
    }

    /// Multi-level cell whose levels are mapped *away* from the
    /// high-variation conductance region while also keeping conductances
    /// low to limit IR drop — the co-optimization of Sec. IV.
    ///
    /// Levels are placed uniformly below the hump region (capped at
    /// `hump_center - hump_width`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4`.
    pub fn mlc_avoiding_variation(&self, bits: u8) -> MultiLevelCell {
        let _span = xlda_obs::span!("device.mlc");
        let hi = (self.hump_center - self.hump_width).max(2.0 * self.g_min);
        let cell = MultiLevelCell::uniform(StateVariable::Conductance, bits, self.g_min, hi, 0.0);
        let sigma = cell
            .levels()
            .iter()
            .map(|&g| self.programming_sigma(g))
            .fold(0.0, f64::max);
        cell.with_sigma(sigma)
    }

    /// A stable 64-bit digest of every model parameter, used as the
    /// device component of cross-sweep memo-cache keys (see
    /// `xlda_num::memo`). Devices differing in any parameter get
    /// distinct keys; presets hash identically across the process.
    pub fn memo_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.flavor.hash(&mut h);
        for v in [
            self.g_min,
            self.g_max,
            self.sigma_rel_base,
            self.sigma_hump,
            self.hump_center,
            self.hump_width,
            self.relax_rel,
            self.write_voltage,
            self.write_latency,
            self.write_energy,
            self.read_voltage,
            self.endurance,
            self.retention,
            self.cell_area_f2,
        ] {
            h.write_u64(v.to_bits());
        }
        h.finish()
    }
}

impl MemoryDevice for Rram {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Rram
    }

    fn terminals(&self) -> u8 {
        2
    }

    fn g_on(&self) -> f64 {
        self.g_max
    }

    fn g_off(&self) -> f64 {
        self.g_min
    }

    fn write_voltage(&self) -> f64 {
        self.write_voltage
    }

    fn write_latency(&self) -> f64 {
        self.write_latency
    }

    fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn read_voltage(&self) -> f64 {
        self.read_voltage
    }

    fn endurance(&self) -> f64 {
        self.endurance
    }

    fn retention(&self) -> f64 {
        self.retention
    }

    fn cell_area_f2(&self) -> f64 {
        self.cell_area_f2
    }

    fn max_bits_per_cell(&self) -> u8 {
        3
    }

    fn name(&self) -> &str {
        self.flavor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_num::stats::{mean, std_dev};

    #[test]
    fn sigma_peaks_in_hump_region() {
        let d = Rram::taox();
        let at_hump = d.programming_sigma(d.hump_center);
        let low = d.programming_sigma(d.g_min * 2.0);
        let high = d.programming_sigma(d.g_max);
        assert!(at_hump > low, "hump {at_hump} low {low}");
        // Relative variation at the hump exceeds relative variation in LRS.
        assert!(at_hump / d.hump_center > high / d.g_max);
    }

    #[test]
    fn program_is_clipped_and_unbiased() {
        let d = Rram::taox();
        let mut rng = Rng64::new(1);
        let target = 30e-6;
        let samples: Vec<f64> = (0..20_000).map(|_| d.program(target, &mut rng)).collect();
        assert!(samples.iter().all(|&g| (d.g_min..=d.g_max).contains(&g)));
        assert!((mean(&samples) - target).abs() < 0.02 * target);
        let sd = std_dev(&samples);
        let expect = d.programming_sigma(target);
        assert!(
            (sd - expect).abs() < 0.1 * expect,
            "sd {sd} expect {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "outside programmable window")]
    fn program_out_of_window_panics() {
        let d = Rram::taox();
        d.program(1.0, &mut Rng64::new(0));
    }

    #[test]
    fn relaxation_spreads_with_time() {
        let d = Rram::taox();
        let g = 50e-6;
        let mut rng = Rng64::new(2);
        let short: Vec<f64> = (0..5000).map(|_| d.relax(g, 0.5, &mut rng)).collect();
        let long: Vec<f64> = (0..5000).map(|_| d.relax(g, 4.0, &mut rng)).collect();
        assert!(std_dev(&long) > std_dev(&short));
        // Zero elapsed time leaves the state untouched.
        assert_eq!(d.relax(g, 0.0, &mut rng), g);
    }

    #[test]
    fn negative_or_non_finite_decades_is_a_typed_error() {
        let d = Rram::taox();
        let mut rng = Rng64::new(4);
        // Pre-fix, a negative time reached `decades.sqrt()` and produced
        // NaN sigma with no error; now it is rejected up front.
        assert_eq!(
            d.try_relax(50e-6, -1.0, &mut rng),
            Err(RramError::InvalidRelaxTime { decades: -1.0 })
        );
        assert!(d.try_relax(50e-6, f64::NAN, &mut rng).is_err());
        assert!(d.try_relax(50e-6, f64::INFINITY, &mut rng).is_err());
        let ok = d.try_relax(50e-6, 1.0, &mut rng).unwrap();
        assert!((d.g_min..=d.g_max).contains(&ok));
    }

    #[test]
    fn stochastic_hrs_is_broad_and_low() {
        let d = Rram::taox();
        let mut rng = Rng64::new(3);
        let gs: Vec<f64> = (0..10_000)
            .map(|_| d.sample_stochastic_hrs(&mut rng))
            .collect();
        let m = mean(&gs);
        // Sits in the high-resistance half of the window...
        assert!(m < 0.2 * d.g_max, "mean {m}");
        // ...with large relative spread (that's the point).
        assert!(std_dev(&gs) / m > 0.3);
    }

    #[test]
    fn variation_aware_mapping_has_lower_error() {
        let d = Rram::taox();
        let naive = d.mlc(2);
        let tuned = d.mlc_avoiding_variation(2);
        // The tuned mapping trades window for spread; its worst-case sigma
        // must be smaller.
        assert!(tuned.sigma() < naive.sigma());
        // And it avoids the hump region entirely.
        assert!(tuned
            .levels()
            .iter()
            .all(|&g| g <= d.hump_center - d.hump_width + 1e-12));
    }

    #[test]
    fn interface_foms() {
        let d = Rram::taox();
        assert_eq!(d.kind(), DeviceKind::Rram);
        assert_eq!(d.terminals(), 2);
        assert!(d.on_off_ratio() >= 50.0);
        assert_eq!(d.name(), "TaOx-RRAM");
    }
}
