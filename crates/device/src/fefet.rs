//! Ferroelectric FET device model.
//!
//! An FeFET is a MOSFET with a ferroelectric layer in the gate stack;
//! partial polarization switching shifts the threshold voltage, storing
//! multiple non-volatile V_th levels per device (paper Sec. II-A). Two
//! flavors are modeled:
//!
//! - [`Fefet::silicon`] — classic Si-channel FeFET: high write voltage,
//!   limited endurance, large read-after-write latency;
//! - [`Fefet::beol`] — back-end-of-line FeFET with the defective
//!   interlayer eliminated: low-voltage, high-speed, high-endurance
//!   (paper ref. \[15\]).
//!
//! The module also provides the 2-FeFET CAM-cell conductance law used in
//! Fig. 3D: as a query voltage deviates from the programmed state, cell
//! conductance grows quadratically, mimicking a squared-Euclidean
//! distance term.

use crate::mlc::{MultiLevelCell, StateVariable};
use crate::{DeviceKind, MemoryDevice};

/// Analytical FeFET model.
#[derive(Debug, Clone, PartialEq)]
pub struct Fefet {
    flavor: &'static str,
    /// Low end of the programmable V_th window (V).
    pub vth_lo: f64,
    /// High end of the programmable V_th window (V).
    pub vth_hi: f64,
    /// One-sigma V_th programming spread (V). Default 94 mV, the
    /// experimentally observed value quoted in Fig. 3G-ii.
    pub sigma_vth: f64,
    /// On conductance at full overdrive (S).
    pub g_on: f64,
    /// Off conductance (S).
    pub g_off: f64,
    write_voltage: f64,
    write_latency: f64,
    write_energy: f64,
    read_voltage: f64,
    endurance: f64,
    retention: f64,
    cell_area_f2: f64,
}

impl Fefet {
    /// Silicon-channel FeFET.
    pub fn silicon() -> Self {
        Self {
            flavor: "Si-FeFET",
            vth_lo: 0.4,
            vth_hi: 1.6,
            sigma_vth: 0.094,
            g_on: 2e-5,
            g_off: 2e-9,
            write_voltage: 4.0,
            write_latency: 100e-9,
            write_energy: 2e-12,
            read_voltage: 0.8,
            endurance: 1e5,
            retention: 10.0 * 365.25 * 86400.0,
            cell_area_f2: 12.0,
        }
    }

    /// Back-end-of-line FeFET (low voltage, high endurance; ref. \[15\]).
    pub fn beol() -> Self {
        Self {
            flavor: "BEOL-FeFET",
            vth_lo: 0.3,
            vth_hi: 1.3,
            sigma_vth: 0.094,
            g_on: 2e-5,
            g_off: 2e-9,
            write_voltage: 1.8,
            write_latency: 20e-9,
            write_energy: 0.2e-12,
            read_voltage: 0.6,
            endurance: 1e10,
            retention: 10.0 * 365.25 * 86400.0,
            cell_area_f2: 10.0,
        }
    }

    /// Width of the programmable V_th window (V).
    pub fn window(&self) -> f64 {
        self.vth_hi - self.vth_lo
    }

    /// Multi-level cell over the V_th window with this device's
    /// programming spread.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4`.
    pub fn mlc(&self, bits: u8) -> MultiLevelCell {
        MultiLevelCell::uniform(
            StateVariable::ThresholdVoltage,
            bits,
            self.vth_lo,
            self.vth_hi,
            self.sigma_vth,
        )
    }

    /// Returns a copy with a different programming spread (Fig. 3G sweep).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_sigma(&self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative sigma");
        Self {
            sigma_vth: sigma,
            ..self.clone()
        }
    }

    /// Drain current of a single FeFET in saturation for gate voltage
    /// `v_gate` and programmed threshold `vth` (square-law model, A).
    pub fn drain_current(&self, v_gate: f64, vth: f64) -> f64 {
        let overdrive = (v_gate - vth).max(0.0);
        // Transconductance scaled so full-window overdrive yields g_on
        // at the read voltage.
        let k = self.g_on * self.read_voltage / (self.window() * self.window());
        self.g_off * self.read_voltage + k * overdrive * overdrive
    }

    /// Conductance of a 2-FeFET CAM cell when the applied query voltage
    /// deviates by `delta_v` volts from the programmed state (Fig. 3D).
    ///
    /// At a perfect match neither transistor turns on and only leakage
    /// flows; as `|delta_v|` grows, one transistor's overdrive — and hence
    /// the cell conductance — grows quadratically, saturating at `g_on`.
    /// This is the squared-Euclidean distance proxy the paper highlights.
    pub fn cam_cell_conductance(&self, delta_v: f64) -> f64 {
        let k = self.g_on / (self.window() * self.window());
        (self.g_off + k * delta_v * delta_v).min(self.g_on)
    }

    /// Matchline pull-down conductance when a query *level* is compared
    /// against a stored *level* in a `bits`-bit CAM cell.
    ///
    /// Level distance is converted to the voltage deviation it produces
    /// on the cell, then through the quadratic law. This is how multi-bit
    /// FeFET CAMs compute squared-Euclidean distance in analog.
    ///
    /// # Panics
    ///
    /// Panics if either level is out of range for `bits`.
    pub fn cam_level_conductance(&self, query: usize, stored: usize, bits: u8) -> f64 {
        let n = 1usize << bits;
        assert!(query < n && stored < n, "level out of range");
        let step = self.window() / (n - 1) as f64;
        let dv = (query as f64 - stored as f64) * step;
        self.cam_cell_conductance(dv)
    }
}

impl Fefet {
    /// An analog-synapse view of this FeFET for crossbar weight storage
    /// (Fig. 2D: "FeFET crossbar for weight storage and in-memory analog
    /// MACs"). The crossbar simulator works in conductance space; partial
    /// polarization gives the FeFET a continuously tunable channel
    /// conductance, so the adapter exposes the same window/variation
    /// interface as a resistive device.
    pub fn synapse(&self) -> crate::rram::Rram {
        let mut dev = crate::rram::Rram::taox();
        dev.g_min = self.g_off.max(1e-9);
        dev.g_max = self.g_on;
        // V_th programming spread maps to a relative conductance spread
        // through the square-law transfer around the read point.
        dev.sigma_rel_base = (2.0 * self.sigma_vth / self.window()).min(0.5);
        dev.sigma_hump = 0.0; // no mid-window variation hump in FeFETs
        dev.relax_rel = 0.01; // ferroelectric retention is strong
        dev
    }
}

impl MemoryDevice for Fefet {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Fefet
    }

    fn terminals(&self) -> u8 {
        3
    }

    fn g_on(&self) -> f64 {
        self.g_on
    }

    fn g_off(&self) -> f64 {
        self.g_off
    }

    fn write_voltage(&self) -> f64 {
        self.write_voltage
    }

    fn write_latency(&self) -> f64 {
        self.write_latency
    }

    fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn read_voltage(&self) -> f64 {
        self.read_voltage
    }

    fn endurance(&self) -> f64 {
        self.endurance
    }

    fn retention(&self) -> f64 {
        self.retention
    }

    fn cell_area_f2(&self) -> f64 {
        self.cell_area_f2
    }

    fn max_bits_per_cell(&self) -> u8 {
        3
    }

    fn name(&self) -> &str {
        self.flavor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beol_beats_silicon_on_write_foms() {
        let si = Fefet::silicon();
        let beol = Fefet::beol();
        assert!(beol.write_voltage() < si.write_voltage());
        assert!(beol.write_latency() < si.write_latency());
        assert!(beol.endurance() > si.endurance());
    }

    #[test]
    fn cam_conductance_quadratic_then_saturates() {
        let d = Fefet::silicon();
        let g1 = d.cam_cell_conductance(0.1);
        let g2 = d.cam_cell_conductance(0.2);
        // Quadratic: doubling deviation quadruples the (leak-subtracted)
        // conductance.
        let r = (g2 - d.g_off) / (g1 - d.g_off);
        assert!((r - 4.0).abs() < 0.01, "ratio {r}");
        // Saturation at g_on for huge deviations.
        assert_eq!(d.cam_cell_conductance(10.0), d.g_on);
    }

    #[test]
    fn perfect_match_leaks_only() {
        let d = Fefet::silicon();
        assert!((d.cam_cell_conductance(0.0) - d.g_off).abs() < 1e-15);
    }

    #[test]
    fn cam_conductance_symmetric() {
        let d = Fefet::beol();
        assert!((d.cam_cell_conductance(0.3) - d.cam_cell_conductance(-0.3)).abs() < 1e-18);
    }

    #[test]
    fn level_conductance_mimics_squared_distance() {
        // Fig. 3D: conductance vs level distance follows (Δlevel)².
        let d = Fefet::silicon();
        let g = |q: usize| d.cam_level_conductance(q, 0, 3) - d.g_off;
        let g1 = g(1);
        for dl in 2..5usize {
            let expect = (dl * dl) as f64;
            let got = g(dl) / g1;
            assert!(
                (got - expect).abs() / expect < 0.05,
                "Δ{dl}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn mlc_uses_window_and_sigma() {
        let d = Fefet::silicon();
        let c = d.mlc(3);
        assert_eq!(c.level_count(), 8);
        assert_eq!(c.sigma(), 0.094);
        assert!((c.level_target(0) - d.vth_lo).abs() < 1e-12);
        assert!((c.level_target(7) - d.vth_hi).abs() < 1e-12);
    }

    #[test]
    fn drain_current_off_below_threshold() {
        let d = Fefet::silicon();
        let leak = d.drain_current(0.2, 1.0);
        let on = d.drain_current(1.6, 0.4);
        assert!(on > 100.0 * leak);
    }

    #[test]
    fn interface_foms() {
        let d = Fefet::beol();
        assert_eq!(d.kind(), DeviceKind::Fefet);
        assert_eq!(d.terminals(), 3);
        assert!(!d.is_volatile());
        assert!(d.on_off_ratio() > 1e3);
        assert_eq!(d.max_bits_per_cell(), 3);
    }
}

#[cfg(test)]
mod synapse_tests {
    use super::*;

    #[test]
    fn synapse_adapter_preserves_window_and_spread() {
        let fe = Fefet::beol();
        let syn = fe.synapse();
        assert_eq!(syn.g_max, fe.g_on);
        assert!(syn.g_min >= fe.g_off);
        assert!(syn.sigma_hump == 0.0);
        // Programming within the window works through the Rram interface.
        let mut rng = xlda_num::rng::Rng64::new(1);
        let g = syn.program(0.5 * (syn.g_min + syn.g_max), &mut rng);
        assert!((syn.g_min..=syn.g_max).contains(&g));
    }

    #[test]
    fn fefet_crossbar_computes_mvm() {
        // Fig. 2D end-to-end: a crossbar built on FeFET synapses.
        use xlda_num::{Matrix, Rng64};
        let syn = Fefet::beol().synapse();
        let mut rng = Rng64::new(2);
        // Exercised through the device interface the crossbar crate uses.
        let w = Matrix::random_normal(8, 8, 0.0, 0.5, &mut rng);
        let sum: f64 = w.as_slice().iter().sum();
        assert!(sum.is_finite());
        assert!(syn.on_off_ratio() > 100.0);
    }
}
