//! Spin-transfer-torque MRAM device model.
//!
//! STT-MRAM offers near-SRAM speed and effectively unlimited endurance,
//! but its tunneling magnetoresistance ratio (TMR) gives an on/off ratio
//! of only ~2-3×. That tiny ratio is what limits MRAM CAM matchline
//! sense margins (paper Sec. VI discusses exactly this as the driver of
//! the *mismatch limit*), and it restricts the device to a single bit.

use crate::{DeviceKind, MemoryDevice};

/// Analytical STT-MRAM model.
#[derive(Debug, Clone, PartialEq)]
pub struct Mram {
    flavor: &'static str,
    /// Parallel-state (low resistance) conductance (S).
    pub g_p: f64,
    /// Anti-parallel-state conductance (S).
    pub g_ap: f64,
    write_voltage: f64,
    write_latency: f64,
    write_energy: f64,
    read_voltage: f64,
    endurance: f64,
    retention: f64,
    cell_area_f2: f64,
}

impl Mram {
    /// Perpendicular STT-MRAM preset (90 nm class, matching the 4T2R
    /// Fig. 5 reference chip).
    pub fn stt() -> Self {
        Self {
            flavor: "STT-MRAM",
            g_p: 400e-6,  // ~2.5 kΩ
            g_ap: 160e-6, // ~6.25 kΩ: TMR ~ 150 %
            write_voltage: 0.6,
            write_latency: 5e-9,
            write_energy: 0.3e-12,
            read_voltage: 0.1,
            endurance: 1e15,
            retention: 10.0 * 365.25 * 86400.0,
            cell_area_f2: 30.0,
        }
    }

    /// Tunneling magnetoresistance ratio: `(R_ap - R_p) / R_p`.
    pub fn tmr(&self) -> f64 {
        self.g_p / self.g_ap - 1.0
    }
}

impl MemoryDevice for Mram {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Mram
    }

    fn terminals(&self) -> u8 {
        2
    }

    fn g_on(&self) -> f64 {
        self.g_p
    }

    fn g_off(&self) -> f64 {
        self.g_ap
    }

    fn write_voltage(&self) -> f64 {
        self.write_voltage
    }

    fn write_latency(&self) -> f64 {
        self.write_latency
    }

    fn write_energy(&self) -> f64 {
        self.write_energy
    }

    fn read_voltage(&self) -> f64 {
        self.read_voltage
    }

    fn endurance(&self) -> f64 {
        self.endurance
    }

    fn retention(&self) -> f64 {
        self.retention
    }

    fn cell_area_f2(&self) -> f64 {
        self.cell_area_f2
    }

    fn max_bits_per_cell(&self) -> u8 {
        1
    }

    fn name(&self) -> &str {
        self.flavor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_on_off_ratio() {
        let d = Mram::stt();
        assert!(d.on_off_ratio() < 5.0, "MRAM ratio should be small");
        assert!(d.on_off_ratio() > 1.5);
    }

    #[test]
    fn tmr_plausible() {
        let d = Mram::stt();
        assert!((d.tmr() - 1.5).abs() < 0.01);
    }

    #[test]
    fn fast_write_extreme_endurance() {
        let d = Mram::stt();
        assert!(d.write_latency() <= 10e-9);
        assert!(d.endurance() >= 1e15);
        assert_eq!(d.max_bits_per_cell(), 1);
    }
}
