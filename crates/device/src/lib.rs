//! Calibrated analytical device models (paper Sec. II-A and Fig. 1E).
//!
//! One well-calibrated device model "crosscuts" studies at the circuit and
//! architecture level: the same FeFET model drives the CAM-cell curves of
//! Fig. 3D, the state-overlap analysis of Fig. 3G, and the Eva-CAM array
//! FOMs of Fig. 5. This crate provides that layer:
//!
//! - [`MemoryDevice`] — the common figure-of-merit interface every
//!   technology implements;
//! - [`fefet::Fefet`] — multi-level ferroelectric FET (Si and BEOL
//!   flavors), including the quadratic CAM-cell conductance law;
//! - [`rram::Rram`] — valence-change RRAM with state-dependent
//!   programming variation, conductance relaxation, and the stochastic
//!   HRS programming exploited for in-memory hashing (Sec. IV);
//! - [`pcm::Pcm`], [`mram::Mram`], [`flash::Flash`], [`sram::Sram`] —
//!   the remaining technologies of the paper's design space;
//! - [`mlc::MultiLevelCell`] — the shared multi-level programming/readout
//!   machinery with Gaussian state distributions and overlap analysis.
//!
//! # Examples
//!
//! ```
//! use xlda_device::fefet::Fefet;
//! use xlda_device::MemoryDevice;
//!
//! let dev = Fefet::beol();
//! assert_eq!(dev.terminals(), 3);
//! assert!(dev.on_off_ratio() > 1e3);
//! ```

pub mod fefet;
pub mod flash;
pub mod mlc;
pub mod mram;
pub mod pcm;
pub mod rram;
pub mod sram;

/// Technology family of a memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DeviceKind {
    /// Ferroelectric field-effect transistor.
    Fefet,
    /// Resistive RAM (valence-change metal oxide).
    Rram,
    /// Phase-change memory.
    Pcm,
    /// Spin-transfer-torque magnetic RAM.
    Mram,
    /// Floating-gate / charge-trap flash.
    Flash,
    /// Static RAM (volatile CMOS).
    Sram,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceKind::Fefet => "FeFET",
            DeviceKind::Rram => "RRAM",
            DeviceKind::Pcm => "PCM",
            DeviceKind::Mram => "MRAM",
            DeviceKind::Flash => "Flash",
            DeviceKind::Sram => "SRAM",
        };
        f.write_str(s)
    }
}

/// Figure-of-merit interface shared by all memory technologies.
///
/// Implementations return *typical* values; distributions and
/// non-idealities live on the concrete types (e.g.
/// [`rram::Rram::programming_sigma`]).
pub trait MemoryDevice {
    /// Technology family.
    fn kind(&self) -> DeviceKind;

    /// Number of device terminals (2 for resistive crosspoints, 3 for
    /// transistor-like devices). Eva-CAM treats these differently
    /// (paper Sec. VI).
    fn terminals(&self) -> u8;

    /// Whether stored state is lost on power-down.
    fn is_volatile(&self) -> bool {
        false
    }

    /// On-state (low-resistance / conducting) conductance (S).
    fn g_on(&self) -> f64;

    /// Off-state conductance (S).
    fn g_off(&self) -> f64;

    /// On/off conductance ratio.
    fn on_off_ratio(&self) -> f64 {
        self.g_on() / self.g_off()
    }

    /// Write (program) voltage magnitude (V).
    fn write_voltage(&self) -> f64;

    /// Write pulse duration (s).
    fn write_latency(&self) -> f64;

    /// Energy to program one cell once (J).
    fn write_energy(&self) -> f64;

    /// Read voltage (V).
    fn read_voltage(&self) -> f64;

    /// Write endurance in cycles.
    fn endurance(&self) -> f64;

    /// Retention time at operating temperature (s).
    fn retention(&self) -> f64;

    /// Storage-cell footprint in F² (technology-normalized area).
    fn cell_area_f2(&self) -> f64;

    /// Maximum practical bits per cell for this technology.
    fn max_bits_per_cell(&self) -> u8;

    /// Human-readable name of the concrete flavor.
    fn name(&self) -> &str;
}

/// Convenience: all default-flavor devices in the design space.
///
/// Used by the DSE layer to enumerate the technology axis of Fig. 1A.
pub fn all_default_devices() -> Vec<Box<dyn MemoryDevice + Send + Sync>> {
    vec![
        Box::new(fefet::Fefet::beol()),
        Box::new(fefet::Fefet::silicon()),
        Box::new(rram::Rram::taox()),
        Box::new(pcm::Pcm::gst()),
        Box::new(mram::Mram::stt()),
        Box::new(flash::Flash::nor()),
        Box::new(sram::Sram::cell_6t()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_roster_is_complete() {
        let devices = all_default_devices();
        assert_eq!(devices.len(), 7);
        let kinds: Vec<DeviceKind> = devices.iter().map(|d| d.kind()).collect();
        assert!(kinds.contains(&DeviceKind::Fefet));
        assert!(kinds.contains(&DeviceKind::Rram));
        assert!(kinds.contains(&DeviceKind::Sram));
    }

    #[test]
    fn nonvolatile_devices_hold_state() {
        for d in all_default_devices() {
            if d.kind() == DeviceKind::Sram {
                assert!(d.is_volatile());
            } else {
                assert!(!d.is_volatile(), "{} should be non-volatile", d.name());
            }
        }
    }

    #[test]
    fn all_devices_have_sane_foms() {
        for d in all_default_devices() {
            assert!(d.g_on() > d.g_off(), "{}", d.name());
            assert!(d.write_voltage() > 0.0);
            assert!(d.write_latency() > 0.0);
            assert!(d.endurance() >= 1e3);
            assert!(d.cell_area_f2() > 0.0);
            assert!(d.max_bits_per_cell() >= 1);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceKind::Fefet.to_string(), "FeFET");
        assert_eq!(DeviceKind::Rram.to_string(), "RRAM");
    }
}
