//! Property-based tests for the ACAM and variation-aware sizing models.

use proptest::prelude::*;
use xlda_circuit::matchline::MatchlineConfig;
use xlda_evacam::acam::{AcamArray, AcamCell, AcamConfig, TreeNode};
use xlda_evacam::variation::{analytic_error_probability, max_cells_with_variation, CellVariation};
use xlda_num::rng::Rng64;

fn arb_tree(depth: u32, features: usize) -> impl Strategy<Value = TreeNode> {
    let leaf = (0usize..16).prop_map(|class| TreeNode::Leaf { class });
    leaf.prop_recursive(depth, 64, 2, move |inner| {
        (0..features, 0.05f64..0.95, inner.clone(), inner).prop_map(|(feature, threshold, l, r)| {
            TreeNode::Split {
                feature,
                threshold,
                left: Box::new(l),
                right: Box::new(r),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ideal_acam_always_agrees_with_tree(
        tree in arb_tree(4, 4),
        seed in any::<u64>(),
    ) {
        let (rows, labels) = tree.to_acam_rows(4);
        prop_assume!(!rows.is_empty());
        let mut rng = Rng64::new(seed);
        let acam = AcamArray::program(
            &rows,
            &labels,
            AcamConfig { bound_sigma: 0.0, input_noise: 0.0 },
            &mut rng,
        );
        for _ in 0..30 {
            let q: Vec<f64> = (0..4).map(|_| rng.uniform()).collect();
            // Interior points (away from split thresholds) must agree;
            // points exactly on a threshold are boundary-ambiguous
            // (strict `<` in the tree vs closed intervals in the rows),
            // which uniform sampling hits with probability zero.
            prop_assert_eq!(acam.classify(&q, &mut rng), Some(tree.evaluate(&q)));
        }
    }

    #[test]
    fn reachable_leaf_regions_partition_the_space(
        tree in arb_tree(4, 3),
        seed in any::<u64>(),
    ) {
        let (rows, labels) = tree.to_acam_rows(3);
        prop_assume!(!rows.is_empty());
        let mut rng = Rng64::new(seed);
        let acam = AcamArray::program(
            &rows,
            &labels,
            AcamConfig { bound_sigma: 0.0, input_noise: 0.0 },
            &mut rng,
        );
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.uniform()).collect();
            // Exactly one word matches any interior point.
            prop_assert_eq!(acam.search(&q, &mut rng).len(), 1);
        }
    }

    #[test]
    fn acam_cell_matching_is_interval_membership(lo in -1.0f64..1.0, w in 0.0f64..1.0, x in -2.0f64..2.0) {
        let cell = AcamCell::interval(lo, lo + w);
        prop_assert_eq!(cell.matches(x), x >= lo && x <= lo + w);
    }

    #[test]
    fn analytic_error_is_a_probability(
        g_on_us in 5.0f64..200.0,
        ratio in 1.5f64..1000.0,
        s_on in 0.0f64..0.5,
        s_off in 0.0f64..0.5,
        cells in 2usize..512,
        m_frac in 0.0f64..1.0,
    ) {
        let cfg = MatchlineConfig {
            g_on: g_on_us * 1e-6,
            g_off: g_on_us * 1e-6 / ratio,
            ..MatchlineConfig::default()
        };
        let var = CellVariation { sigma_g_on_rel: s_on, sigma_g_off_rel: s_off };
        let m = ((cells - 1) as f64 * m_frac) as usize;
        let p = analytic_error_probability(&cfg, &var, cells, m);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&p), "p = {p}");
    }

    #[test]
    fn variation_limit_is_consistent_with_the_formula(
        ratio in 2.0f64..100.0,
        target_exp in 1.0f64..6.0,
    ) {
        let cfg = MatchlineConfig {
            g_on: 50e-6,
            g_off: 50e-6 / ratio,
            ..MatchlineConfig::default()
        };
        let var = CellVariation::default();
        let target = 10f64.powf(-target_exp);
        if let Some(n) = max_cells_with_variation(&cfg, &var, 2, target) {
            prop_assert!(analytic_error_probability(&cfg, &var, n, 2) <= target);
            if n < 1 << 21 {
                prop_assert!(analytic_error_probability(&cfg, &var, n + 1, 2) > target);
            }
        }
    }
}
