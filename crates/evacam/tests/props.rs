//! Property-based tests for the CAM array model.

use proptest::prelude::*;
use xlda_circuit::tech::TechNode;
use xlda_evacam::{CamArray, CamCellDesign, CamConfig, DataKind, MatchKind};

fn arb_design() -> impl Strategy<Value = CamCellDesign> {
    prop::sample::select(CamCellDesign::all().to_vec())
}

fn arb_tech() -> impl Strategy<Value = TechNode> {
    prop::sample::select(vec![TechNode::n90(), TechNode::n40(), TechNode::n22()])
}

fn arb_config() -> impl Strategy<Value = CamConfig> {
    (
        arb_design(),
        arb_tech(),
        1usize..=4096,
        8usize..=512,
        prop::sample::select(vec![1usize, 2, 4]),
    )
        .prop_map(|(design, tech, words, bits, banks)| CamConfig {
            words,
            bits_per_word: bits,
            design,
            data: DataKind::Ternary,
            match_kind: MatchKind::Exact,
            row_banks: banks,
            tech,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_valid_exact_config_models_with_positive_foms(config in arb_config()) {
        let cam = CamArray::new(config).expect("exact-match ternary configs always model");
        let r = cam.report();
        prop_assert!(r.area_um2 > 0.0 && r.area_um2.is_finite());
        prop_assert!(r.search_latency_s > 0.0 && r.search_latency_s < 1e-3);
        prop_assert!(r.search_energy_j > 0.0 && r.search_energy_j.is_finite());
        prop_assert!(r.write_latency_s > 0.0);
        prop_assert!(r.write_energy_j > 0.0);
        prop_assert!(r.leakage_w > 0.0);
        prop_assert!(r.segments >= 1);
        prop_assert!(r.cols_per_segment * r.segments >= config_cells(&cam));
    }

    #[test]
    fn area_monotone_in_words(config in arb_config()) {
        prop_assume!(config.words <= 2048);
        let small = CamArray::new(config.clone()).expect("models").report();
        let mut big_cfg = config;
        big_cfg.words *= 2;
        let big = CamArray::new(big_cfg).expect("models").report();
        prop_assert!(big.area_um2 > small.area_um2);
        prop_assert!(big.search_energy_j > small.search_energy_j);
        prop_assert_eq!(big.capacity_bits, 2 * small.capacity_bits);
    }

    #[test]
    fn wider_words_never_reduce_cost(config in arb_config()) {
        prop_assume!(config.bits_per_word <= 256);
        let narrow = CamArray::new(config.clone()).expect("models").report();
        let mut wide_cfg = config;
        wide_cfg.bits_per_word *= 2;
        let wide = CamArray::new(wide_cfg).expect("models").report();
        prop_assert!(wide.area_um2 > narrow.area_um2);
        prop_assert!(wide.search_energy_j >= narrow.search_energy_j);
    }

    #[test]
    fn segments_cover_cells_exactly_once(config in arb_config()) {
        let cam = CamArray::new(config.clone()).expect("models");
        let cells = config.cells_per_word();
        prop_assert!(cam.segments() * cam.cols_per_segment() >= cells);
        // Not over-split: one fewer segment would not fit.
        if cam.segments() > 1 {
            prop_assert!((cam.segments() - 1) * cam.cols_per_segment() < cells);
        }
    }

    #[test]
    fn scaling_node_down_shrinks_area(design in arb_design(), words in 64usize..1024) {
        let mk = |tech: TechNode| {
            CamArray::new(CamConfig {
                words,
                bits_per_word: 64,
                design,
                data: DataKind::Ternary,
                match_kind: MatchKind::Exact,
                row_banks: 1,
                tech,
            })
            .expect("models")
            .report()
        };
        let old = mk(TechNode::n90());
        let new = mk(TechNode::n22());
        prop_assert!(new.area_um2 < old.area_um2);
    }
}

fn config_cells(cam: &CamArray) -> usize {
    cam.config().cells_per_word()
}
