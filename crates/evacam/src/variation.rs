//! Variation-aware array-size prediction — the paper's proposed Eva-CAM
//! enhancement (Sec. VI, closing paragraphs).
//!
//! The deterministic mismatch limit in [`crate::CamArray`] assumes nominal
//! cells. Real devices vary: each pull-down path's conductance is a random
//! variable, so two words with adjacent mismatch counts have *overlapping*
//! discharge distributions, and the probability of mis-ordering them grows
//! with array width. This module integrates device-variation
//! distributions into the matchline model, exactly as the paper
//! prescribes ("the distributions of device variations will be integrated
//! into circuit models along with array size and mismatch limit
//! prediction formulae"):
//!
//! - [`sensing_error_probability`] — Monte-Carlo estimate of the
//!   probability that a word with `m+1` mismatches out-discharges a word
//!   with `m` mismatches;
//! - [`analytic_error_probability`] — closed-form Gaussian approximation
//!   of the same quantity (the "prediction formula");
//! - [`max_cells_with_variation`] — the variation-aware array-width
//!   limit: the largest matchline that keeps the sensing error below a
//!   target at the required distance resolution.

use xlda_circuit::matchline::MatchlineConfig;
use xlda_num::rng::Rng64;
use xlda_num::stats::q_function;

/// Device-variation description for a CAM cell's pull-down path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellVariation {
    /// Relative one-sigma spread of the on-conductance.
    pub sigma_g_on_rel: f64,
    /// Relative one-sigma spread of the off-conductance (leakage).
    pub sigma_g_off_rel: f64,
}

impl Default for CellVariation {
    /// Representative spreads: 10 % on-path, 30 % leakage.
    fn default() -> Self {
        Self {
            sigma_g_on_rel: 0.10,
            sigma_g_off_rel: 0.30,
        }
    }
}

/// Samples the total pull-down conductance of a word with `mismatches`
/// mismatching cells out of `cells`.
fn sample_conductance(
    config: &MatchlineConfig,
    variation: &CellVariation,
    cells: usize,
    mismatches: usize,
    rng: &mut Rng64,
) -> f64 {
    let mut g = 0.0;
    for _ in 0..mismatches {
        g += (config.g_on * (1.0 + rng.normal(0.0, variation.sigma_g_on_rel))).max(0.0);
    }
    for _ in 0..(cells - mismatches) {
        g += (config.g_off * (1.0 + rng.normal(0.0, variation.sigma_g_off_rel))).max(0.0);
    }
    g
}

/// Monte-Carlo probability that a word with `m + 1` mismatches discharges
/// *slower* than a word with `m` mismatches (a best-match mis-ordering).
///
/// Discharge rate is proportional to total pull-down conductance, so the
/// event reduces to `G(m+1) < G(m)` across the two words' variation
/// draws.
///
/// # Panics
///
/// Panics if `m + 1 > cells` or `trials == 0`.
pub fn sensing_error_probability(
    config: &MatchlineConfig,
    variation: &CellVariation,
    cells: usize,
    m: usize,
    trials: usize,
    rng: &mut Rng64,
) -> f64 {
    assert!(m < cells, "mismatch count exceeds cells");
    assert!(trials > 0, "need at least one trial");
    let mut errors = 0usize;
    for _ in 0..trials {
        let g_m = sample_conductance(config, variation, cells, m, rng);
        let g_m1 = sample_conductance(config, variation, cells, m + 1, rng);
        if g_m1 < g_m {
            errors += 1;
        }
    }
    errors as f64 / trials as f64
}

/// Closed-form Gaussian approximation of [`sensing_error_probability`]
/// — the array-size "prediction formula".
///
/// Both words' conductances are sums of independent cell draws, hence
/// approximately Gaussian with
/// `mean Δ = g_on − g_off` and
/// `var = (2m+1)·(σ_on·g_on)² + (2(n−m)−1)·(σ_off·g_off)²`;
/// the mis-ordering probability is `Q(Δ / σ)`.
pub fn analytic_error_probability(
    config: &MatchlineConfig,
    variation: &CellVariation,
    cells: usize,
    m: usize,
) -> f64 {
    assert!(m < cells, "mismatch count exceeds cells");
    let s_on = variation.sigma_g_on_rel * config.g_on;
    let s_off = variation.sigma_g_off_rel * config.g_off;
    let delta = config.g_on - config.g_off;
    let var = (2 * m + 1) as f64 * s_on * s_on + (2 * (cells - m) - 1) as f64 * s_off * s_off;
    if var <= 0.0 {
        return 0.0;
    }
    q_function(delta / var.sqrt())
}

/// Largest matchline length whose analytic sensing-error probability at
/// distance `m` stays below `target_error`.
///
/// Returns `None` when even a `(m+1)`-cell line exceeds the target —
/// the technology cannot support the requested resolution at all.
pub fn max_cells_with_variation(
    config: &MatchlineConfig,
    variation: &CellVariation,
    m: usize,
    target_error: f64,
) -> Option<usize> {
    let ok = |n: usize| analytic_error_probability(config, variation, n, m) <= target_error;
    let mut lo = m + 1;
    if !ok(lo) {
        return None;
    }
    let mut hi = lo;
    while hi < 1 << 22 && ok(hi * 2) {
        hi *= 2;
    }
    if hi >= 1 << 22 {
        return Some(hi);
    }
    let mut upper = hi * 2;
    while lo + 1 < upper {
        let mid = lo + (upper - lo) / 2;
        if ok(mid) {
            lo = mid;
        } else {
            upper = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fefet_like() -> MatchlineConfig {
        MatchlineConfig::default() // 20 µS / 2 nS
    }

    fn mram_like() -> MatchlineConfig {
        MatchlineConfig {
            g_on: 25e-6,
            g_off: 10e-6,
            ..MatchlineConfig::default()
        }
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let cfg = mram_like();
        let var = CellVariation::default();
        let mut rng = Rng64::new(1);
        for (cells, m) in [(64usize, 2usize), (128, 4), (256, 8)] {
            let mc = sensing_error_probability(&cfg, &var, cells, m, 20_000, &mut rng);
            let an = analytic_error_probability(&cfg, &var, cells, m);
            assert!(
                (mc - an).abs() < 0.02 + 0.2 * an,
                "cells {cells} m {m}: mc {mc} vs analytic {an}"
            );
        }
    }

    #[test]
    fn error_grows_with_array_width() {
        let cfg = mram_like();
        let var = CellVariation::default();
        let narrow = analytic_error_probability(&cfg, &var, 32, 2);
        let wide = analytic_error_probability(&cfg, &var, 512, 2);
        assert!(wide > narrow, "narrow {narrow} wide {wide}");
    }

    #[test]
    fn error_grows_with_required_distance() {
        // With a high on/off ratio, the on-path spread dominates, and
        // distinguishing m vs m+1 gets harder as m grows (more varying
        // on-paths on both lines) — the BE/TH-match limit of Sec. VI.
        let cfg = fefet_like();
        let var = CellVariation::default();
        let near = analytic_error_probability(&cfg, &var, 128, 1);
        let far = analytic_error_probability(&cfg, &var, 128, 16);
        assert!(far > near, "near {near} far {far}");
    }

    #[test]
    fn high_on_off_ratio_devices_support_wider_arrays() {
        let var = CellVariation::default();
        let fefet = max_cells_with_variation(&fefet_like(), &var, 4, 1e-3)
            .expect("FeFET supports distance 4");
        let mram = max_cells_with_variation(&mram_like(), &var, 4, 1e-3).unwrap_or(5);
        assert!(
            fefet > 4 * mram,
            "FeFET limit {fefet} should dwarf MRAM limit {mram}"
        );
    }

    #[test]
    fn tighter_error_targets_shrink_the_limit() {
        let cfg = mram_like();
        let var = CellVariation::default();
        let loose = max_cells_with_variation(&cfg, &var, 2, 1e-2).expect("loose target");
        let tight = max_cells_with_variation(&cfg, &var, 2, 1e-5).unwrap_or(3);
        assert!(tight <= loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn more_variation_more_errors() {
        let cfg = mram_like();
        let calm = CellVariation {
            sigma_g_on_rel: 0.02,
            sigma_g_off_rel: 0.05,
        };
        let noisy = CellVariation {
            sigma_g_on_rel: 0.25,
            sigma_g_off_rel: 0.50,
        };
        let e_calm = analytic_error_probability(&cfg, &calm, 128, 4);
        let e_noisy = analytic_error_probability(&cfg, &noisy, 128, 4);
        assert!(e_noisy > e_calm);
    }

    #[test]
    fn impossible_resolution_returns_none() {
        // Absurd variation: even tiny lines cannot resolve distances.
        let cfg = mram_like();
        let var = CellVariation {
            sigma_g_on_rel: 3.0,
            sigma_g_off_rel: 3.0,
        };
        assert_eq!(max_cells_with_variation(&cfg, &var, 4, 1e-6), None);
    }

    #[test]
    fn zero_variation_never_errors() {
        let cfg = fefet_like();
        let var = CellVariation {
            sigma_g_on_rel: 0.0,
            sigma_g_off_rel: 0.0,
        };
        assert_eq!(analytic_error_probability(&cfg, &var, 1024, 8), 0.0);
        let mut rng = Rng64::new(2);
        assert_eq!(
            sensing_error_probability(&cfg, &var, 128, 4, 1000, &mut rng),
            0.0
        );
    }
}
