//! Validation against published CAM silicon (paper Fig. 5).
//!
//! The paper validates Eva-CAM against three fabricated chips; this module
//! embeds the published measurements as reference constants, runs our
//! model on matching configurations, and reports per-FOM errors. The
//! acceptance band is the paper's own: projections within ~±20 % of
//! measured data.

use crate::array::CamArray;
use crate::design::{CamCellDesign, CamConfig, DataKind, MatchKind};
use xlda_circuit::tech::TechNode;

/// A published reference chip with its measured figures of merit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceChip {
    /// Display name matching the Fig. 5 row label.
    pub label: &'static str,
    /// Configuration the model is evaluated at.
    pub config: CamConfig,
    /// Measured area (µm²), if published.
    pub actual_area_um2: Option<f64>,
    /// Measured search latency (s), if published.
    pub actual_latency_s: Option<f64>,
    /// Measured search energy (J), if published.
    pub actual_energy_j: Option<f64>,
}

/// One row of the validation table: modeled vs. measured with errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Chip label.
    pub label: &'static str,
    /// Modeled area (µm²).
    pub model_area_um2: f64,
    /// Modeled search latency (s).
    pub model_latency_s: f64,
    /// Modeled search energy (J).
    pub model_energy_j: f64,
    /// Relative area error vs. measurement (`None` when unpublished).
    pub area_error: Option<f64>,
    /// Relative latency error vs. measurement.
    pub latency_error: Option<f64>,
    /// Relative energy error vs. measurement.
    pub energy_error: Option<f64>,
}

impl ValidationRow {
    /// Largest absolute relative error among the published FOMs.
    pub fn worst_error(&self) -> f64 {
        [self.area_error, self.latency_error, self.energy_error]
            .iter()
            .flatten()
            .map(|e| e.abs())
            .fold(0.0, f64::max)
    }
}

/// The three Fig. 5 reference chips.
///
/// Measured values are the ones printed in the paper's table:
/// - RRAM 2T2R @ 40 nm: area 98 000 µm², search latency ≥ 5 ns,
///   search energy 270 pJ;
/// - PCM 2T2R @ 90 nm (1 Mb, 0.41 µm²/cell): search latency 1.9 ns;
/// - MRAM 4T2R @ 90 nm: area 17 200 µm², search latency 2.5 ns
///   (printed as ps in the table; we keep the published magnitude and
///   compare relative error only).
pub fn reference_chips() -> Vec<ReferenceChip> {
    vec![
        ReferenceChip {
            label: "RRAM 2T2R 40nm",
            config: CamConfig {
                words: 8192,
                bits_per_word: 128,
                design: CamCellDesign::Rram2T2R,
                data: DataKind::Ternary,
                match_kind: MatchKind::Exact,
                row_banks: 1,
                tech: TechNode::n40(),
            },
            actual_area_um2: Some(98_000.0),
            // The paper prints latency ≥5 ns with no error entry (its own
            // model projected 2-4.4 ns); we follow and score area+energy.
            actual_latency_s: None,
            actual_energy_j: Some(270e-12),
        },
        ReferenceChip {
            label: "PCM 2T2R 90nm",
            config: CamConfig {
                words: 8192,
                bits_per_word: 128,
                design: CamCellDesign::Pcm2T2R,
                data: DataKind::Ternary,
                match_kind: MatchKind::Exact,
                // The 1 Mb chip organizes words into banks; two banks
                // reproduce its searchline depth.
                row_banks: 2,
                tech: TechNode::n90(),
            },
            actual_area_um2: None,
            actual_latency_s: Some(1.9e-9),
            actual_energy_j: None,
        },
        ReferenceChip {
            label: "MRAM 4T2R 90nm",
            config: CamConfig {
                words: 128,
                bits_per_word: 128,
                design: CamCellDesign::Mram4T2R,
                data: DataKind::Ternary,
                match_kind: MatchKind::Exact,
                row_banks: 1,
                tech: TechNode::n90(),
            },
            actual_area_um2: Some(17_200.0),
            actual_latency_s: Some(2.5e-9),
            actual_energy_j: None,
        },
    ]
}

/// Runs the model on a reference chip and computes relative errors.
///
/// # Errors
///
/// Propagates [`crate::CamError`] if the reference configuration cannot
/// be modeled (which would itself be a validation failure).
pub fn validate_chip(chip: &ReferenceChip) -> Result<ValidationRow, crate::CamError> {
    let cam = CamArray::new(chip.config.clone())?;
    let report = cam.report();
    let rel = |model: f64, actual: Option<f64>| actual.map(|a| (model - a) / a);
    Ok(ValidationRow {
        label: chip.label,
        model_area_um2: report.area_um2,
        model_latency_s: report.search_latency_s,
        model_energy_j: report.search_energy_j,
        area_error: rel(report.area_um2, chip.actual_area_um2),
        latency_error: rel(report.search_latency_s, chip.actual_latency_s),
        energy_error: rel(report.search_energy_j, chip.actual_energy_j),
    })
}

/// Validates all reference chips (the full Fig. 5 table).
///
/// # Errors
///
/// Propagates the first modeling error.
pub fn validate_all() -> Result<Vec<ValidationRow>, crate::CamError> {
    reference_chips().iter().map(validate_chip).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reference_configs_model() {
        let rows = validate_all().expect("reference chips must model");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn errors_within_paper_band() {
        // Fig. 5's own claim: projections within ~20 % of measured data.
        for row in validate_all().unwrap() {
            assert!(
                row.worst_error() <= 0.25,
                "{}: worst error {:.1}% (area {:?}, lat {:?}, energy {:?})",
                row.label,
                row.worst_error() * 100.0,
                row.area_error,
                row.latency_error,
                row.energy_error
            );
        }
    }

    #[test]
    fn rram_chip_magnitudes() {
        let rows = validate_all().unwrap();
        let rram = &rows[0];
        // Sanity: model should land in the right order of magnitude.
        assert!(rram.model_area_um2 > 2e4 && rram.model_area_um2 < 4e5);
        assert!(rram.model_energy_j > 5e-11 && rram.model_energy_j < 2e-9);
        assert!(rram.model_latency_s > 5e-10 && rram.model_latency_s < 2e-8);
    }
}
