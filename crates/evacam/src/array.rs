//! Array-level FOM computation (the heart of the Eva-CAM reproduction).

use crate::design::{CamConfig, CamError, DataKind, MatchKind};
use xlda_circuit::decoder::Decoder;
use xlda_circuit::error::ceil_log2;
use xlda_circuit::gate::{BufferChain, Gate, GateKind};
use xlda_circuit::hoist::ExactCache;
use xlda_circuit::matchline::{Matchline, MatchlineConfig};
use xlda_circuit::senseamp::SenseAmp;
use xlda_circuit::tech::TechNode;
use xlda_circuit::wire::Wire;

/// An analyzed CAM array: configuration plus derived circuit models.
#[derive(Debug, Clone)]
pub struct CamArray {
    config: CamConfig,
    segments: usize,
    cols_per_segment: usize,
    ml: Matchline,
    sa: SenseAmp,
    mismatch_limit: usize,
}

/// Complete figure-of-merit report for a CAM array.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CamReport {
    /// Total silicon area (µm²), cells plus peripherals.
    pub area_um2: f64,
    /// One full-array search latency (s).
    pub search_latency_s: f64,
    /// One full-array search energy (J).
    pub search_energy_j: f64,
    /// Latency to write one word (s), including program-verify for MLC.
    pub write_latency_s: f64,
    /// Energy to write one word (J).
    pub write_energy_j: f64,
    /// Static (leakage + standing) power of the array (W).
    pub leakage_w: f64,
    /// Number of word segments after the mismatch-limit split.
    pub segments: usize,
    /// Cells per matchline in each segment.
    pub cols_per_segment: usize,
    /// Largest mismatch count distinguishable on the chosen matchline.
    pub mismatch_limit: usize,
    /// Storage capacity in bits.
    pub capacity_bits: usize,
}

impl CamArray {
    /// Analyzes a CAM configuration.
    ///
    /// Determines the maximum matchline length compatible with the
    /// sense margin required by the match type, splits words into
    /// segments accordingly, and instantiates the circuit models.
    ///
    /// # Errors
    ///
    /// Returns a [`CamError`] for unsupported design/data/match
    /// combinations or when no matchline length meets the sense margin.
    pub fn new(config: CamConfig) -> Result<Self, CamError> {
        config.check()?;
        let cells = config.cells_per_word();
        let mlcfg = config.design.matchline_config();
        let sa = SenseAmp::voltage_latch(&config.tech);
        let req = config.match_kind.required_resolution();
        let max_cols = Matchline::max_cells_for(mlcfg, &config.tech, req, &sa).ok_or(
            CamError::SenseMarginUnachievable {
                required_resolution: req,
            },
        )?;
        let segments = cells.div_ceil(max_cols);
        let cols_per_segment = cells.div_ceil(segments);
        let ml = Matchline::new(mlcfg, &config.tech, cols_per_segment);
        let mismatch_limit = ml.mismatch_limit(&sa);
        Ok(Self {
            config,
            segments,
            cols_per_segment,
            ml,
            sa,
            mismatch_limit,
        })
    }

    /// The analyzed configuration.
    pub fn config(&self) -> &CamConfig {
        &self.config
    }

    /// Number of word segments (separate matchlines per word).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Cells per matchline.
    pub fn cols_per_segment(&self) -> usize {
        self.cols_per_segment
    }

    /// Largest distinguishable mismatch count on one matchline.
    pub fn mismatch_limit(&self) -> usize {
        self.mismatch_limit
    }

    fn cell_edge_m(&self) -> f64 {
        (self.config.design.cell_area_f2()).sqrt() * self.config.tech.feature_m()
    }

    fn total_cells(&self) -> usize {
        self.config.words * self.segments * self.cols_per_segment
    }

    /// Searchline model: one line per cell column spanning the words of
    /// one row bank.
    fn searchline(&self) -> (Wire, BufferChain) {
        let tech = &self.config.tech;
        let words = self.config.words.div_ceil(self.config.row_banks);
        let length = words as f64 * self.cell_edge_m();
        let wire = Wire::new(length, tech);
        // Each cell loads the searchline with roughly half its cell cap.
        let c_cells = words as f64 * 0.5 * 0.1e-15;
        let c_total = wire.capacitance() + c_cells;
        let c_in = tech.gate_cap(3.0 * tech.min_width_um);
        let chain = BufferChain::size_for(c_in, c_total.max(c_in), tech);
        (wire, chain)
    }

    /// Time at which matchline sensing fires for this match type.
    fn sense_time(&self) -> f64 {
        match self.config.match_kind {
            MatchKind::Exact => {
                // Wait until a single-mismatch line has crossed the
                // reference (with 10% guard band).
                1.1 * self.ml.discharge_time(1)
            }
            MatchKind::Best { .. } | MatchKind::Threshold { .. } => {
                let m = self
                    .config
                    .match_kind
                    .required_resolution()
                    .min(self.cols_per_segment.saturating_sub(1));
                self.ml.best_sense_time(m)
            }
        }
    }

    /// Sense-amp input differential available at the sense time.
    fn sense_margin(&self) -> f64 {
        match self.config.match_kind {
            MatchKind::Exact => {
                // Differential between a fully matching word (slow leak)
                // and a single-mismatch word at the sense instant.
                let t = self.sense_time();
                self.ml.voltage_margin(t, 0).max(self.sa.min_resolvable)
            }
            _ => {
                let m = self
                    .config
                    .match_kind
                    .required_resolution()
                    .min(self.cols_per_segment.saturating_sub(1));
                self.ml.best_margin(m).max(self.sa.min_resolvable)
            }
        }
    }

    /// Match-result processing latency after sensing: a priority encoder
    /// for exact match, a compare/aggregate tree for distance matches.
    fn encode_latency(&self) -> f64 {
        let tech = &self.config.tech;
        let nand = Gate::new(GateKind::Nand(2), 2.0, tech);
        let load = nand.input_cap();
        // Integer ceil-log2: exact at powers of two and well-defined for
        // degenerate 1-word arrays, where float log2(1) sits on the
        // domain edge of the old formula.
        let depth_words = (ceil_log2(self.config.words) as f64).max(1.0);
        let depth_segs = ceil_log2(self.segments + 1) as f64;
        let per_stage = nand.delay(load);
        match self.config.match_kind {
            MatchKind::Exact => depth_words * per_stage,
            // Distance matches tally per-segment counts then compare
            // across words: adder tree + comparator tree.
            _ => (2.0 * depth_segs + 2.0 * depth_words) * per_stage,
        }
    }

    fn encode_energy(&self) -> f64 {
        let tech = &self.config.tech;
        let nand = Gate::new(GateKind::Nand(2), 2.0, tech);
        let load = nand.input_cap();
        let gates = match self.config.match_kind {
            MatchKind::Exact => self.config.words as f64,
            _ => self.config.words as f64 * (2.0 + 2.0 * self.segments as f64),
        };
        gates * nand.switching_energy(load)
    }

    /// One full-array search latency (s).
    pub fn search_latency(&self) -> f64 {
        let (wire, chain) = self.searchline();
        let t_sl = chain.delay() + wire.elmore_delay();
        let phases = self.config.design.sense_phases() as f64;
        let t_ml = phases * self.sense_time();
        let t_sa = phases * self.sa.latency(self.sense_margin());
        t_sl + t_ml + t_sa + self.encode_latency()
    }

    /// One full-array search energy (J).
    pub fn search_energy(&self) -> f64 {
        let (wire, chain) = self.searchline();
        let cols_total = self.segments * self.cols_per_segment;
        // Half the searchlines toggle per new query on average; each row
        // bank drives its own searchline segment.
        let e_sl = 0.5
            * (cols_total * self.config.row_banks) as f64
            * (chain.energy() + wire.switch_energy(0.0));
        // Every matchline precharges and (mis)discharges; average word
        // mismatches on half its cells.
        let t_sense = self.sense_time();
        let avg_mismatch = self.cols_per_segment / 2;
        let e_ml = (self.config.words * self.segments) as f64
            * self.ml.search_energy(avg_mismatch, t_sense);
        let e_sa = (self.config.words * self.segments) as f64 * self.sa.energy();
        e_sl + e_ml + e_sa + self.encode_energy()
    }

    /// Latency to write one word (s).
    ///
    /// Multi-bit cells use program-and-verify: the iteration count grows
    /// with the number of levels.
    pub fn write_latency(&self) -> f64 {
        let dev = self.config.design.device();
        let decoder = self.write_decoder();
        let verify_iters = match self.config.data {
            DataKind::MultiBit(b) => (1u32 << (b - 1)) as f64,
            DataKind::Analog => 8.0,
            _ => 1.0,
        };
        decoder.delay() + verify_iters * dev.write_latency()
    }

    /// Energy to write one word (J).
    pub fn write_energy(&self) -> f64 {
        let dev = self.config.design.device();
        let decoder = self.write_decoder();
        let verify_iters = match self.config.data {
            DataKind::MultiBit(b) => (1u32 << (b - 1)) as f64,
            DataKind::Analog => 8.0,
            _ => 1.0,
        };
        let cells = self.segments * self.cols_per_segment;
        decoder.energy() + verify_iters * cells as f64 * 2.0 * dev.write_energy()
    }

    fn write_decoder(&self) -> Decoder {
        let tech = &self.config.tech;
        let cols_total = self.segments * self.cols_per_segment;
        let wl_len = cols_total as f64 * self.cell_edge_m();
        let wl_wire = Wire::new(wl_len, tech);
        let wl_cap = wl_wire.capacitance() + cols_total as f64 * 0.2e-15;
        Decoder::new(self.config.words, wl_cap, tech)
    }

    /// Static (leakage plus standing-current) power (W).
    pub fn leakage_power(&self) -> f64 {
        let tech = &self.config.tech;
        let cells = self.total_cells() as f64;
        let cell_leak = self.config.design.matchline_config().g_off
            * tech.vdd
            * 0.1 // only precharged fraction leaks between searches
            + self.config.design.static_power_per_cell();
        let sa_leak = (self.config.words * self.segments) as f64 * self.sa.leakage_power();
        cells * cell_leak + sa_leak + self.write_decoder().leakage_power()
    }

    /// Total silicon area (µm²).
    pub fn area_um2(&self) -> f64 {
        let tech = &self.config.tech;
        let f2 = tech.f2_area_m2();
        let cells = self.total_cells() as f64 * self.config.design.cell_area_f2() * f2;
        let (_, chain) = self.searchline();
        let cols_total = (self.segments * self.cols_per_segment) as f64;
        // Two (complementary) searchline drivers per cell column per bank.
        let drivers = 2.0 * cols_total * self.config.row_banks as f64 * chain.area();
        let sas = (self.config.words * self.segments) as f64 * self.sa.area();
        let encode_f2 = match self.config.match_kind {
            MatchKind::Exact => 80.0,
            _ => 250.0 * self.segments as f64,
        };
        let encode = self.config.words as f64 * encode_f2 * f2;
        let decoder = self.write_decoder().area();
        let total_m2 = (cells + drivers + sas + encode + decoder) * 1.15; // routing
        total_m2 * 1e12
    }

    /// Full FOM report.
    pub fn report(&self) -> CamReport {
        let _span = xlda_obs::span!("evacam.report");
        CamReport {
            area_um2: self.area_um2(),
            search_latency_s: self.search_latency(),
            search_energy_j: self.search_energy(),
            write_latency_s: self.write_latency(),
            write_energy_j: self.write_energy(),
            leakage_w: self.leakage_power(),
            segments: self.segments,
            cols_per_segment: self.cols_per_segment,
            mismatch_limit: self.mismatch_limit,
            capacity_bits: self.config.words * self.config.bits_per_word,
        }
    }
}

/// Batch-scoped CAM analysis with the sense-margin search hoisted.
///
/// [`CamArray::new`] spends its constructor budget on
/// [`Matchline::max_cells_for`] — a search over matchline lengths that
/// depends only on `(matchline config, required resolution, tech)`, not
/// on the swept word width or word count. Across a columnar sweep batch
/// those three inputs repeat for every point of a workload, so this
/// solver caches the `(sense amp, max columns)` pair in an
/// [`ExactCache`] (full-equality keys, no quantization) and rebuilds
/// only the per-point remainder (segmentation, matchline instance,
/// report). Results are bit-identical to `CamArray::new(..)?.report()`:
/// the cached pair comes from the same pure solves on identical inputs,
/// and everything downstream is `CamArray`'s own code.
///
/// Intended lifetime is one sweep chunk; create per batch (it is not
/// `Sync`).
#[derive(Debug, Clone, Default)]
pub struct CamSolver {
    margins: ExactCache<(MatchlineConfig, usize, TechNode), (SenseAmp, Option<usize>)>,
}

impl CamSolver {
    /// An empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes `config` exactly as [`CamArray::new`], with the
    /// matchline-length search served from the batch cache.
    ///
    /// # Errors
    ///
    /// Returns the same [`CamError`]s as [`CamArray::new`].
    pub fn array(&mut self, config: CamConfig) -> Result<CamArray, CamError> {
        config.check()?;
        let cells = config.cells_per_word();
        let mlcfg = config.design.matchline_config();
        let req = config.match_kind.required_resolution();
        let (sa, max_cols) = self
            .margins
            .get_or_clone((mlcfg, req, config.tech.clone()), |_| {
                let sa = SenseAmp::voltage_latch(&config.tech);
                let max_cols = Matchline::max_cells_for(mlcfg, &config.tech, req, &sa);
                (sa, max_cols)
            });
        let max_cols = max_cols.ok_or(CamError::SenseMarginUnachievable {
            required_resolution: req,
        })?;
        let segments = cells.div_ceil(max_cols);
        let cols_per_segment = cells.div_ceil(segments);
        let ml = Matchline::new(mlcfg, &config.tech, cols_per_segment);
        let mismatch_limit = ml.mismatch_limit(&sa);
        Ok(CamArray {
            config,
            segments,
            cols_per_segment,
            ml,
            sa,
            mismatch_limit,
        })
    }

    /// `CamArray::new(config)?.report()` through the batch cache.
    ///
    /// # Errors
    ///
    /// Returns the same [`CamError`]s as [`CamArray::new`].
    pub fn report(&mut self, config: CamConfig) -> Result<CamReport, CamError> {
        Ok(self.array(config)?.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::CamCellDesign;
    use xlda_circuit::tech::TechNode;

    fn base() -> CamConfig {
        CamConfig::default()
    }

    #[test]
    fn default_array_builds() {
        let cam = CamArray::new(base()).expect("default should model");
        let r = cam.report();
        assert!(r.area_um2 > 0.0);
        assert!(r.search_latency_s > 0.0 && r.search_latency_s < 1e-6);
        assert!(r.search_energy_j > 0.0);
        assert_eq!(r.capacity_bits, 1024 * 128);
    }

    #[test]
    fn bigger_array_costs_more() {
        let small = CamArray::new(base()).unwrap().report();
        let big = CamArray::new(CamConfig {
            words: 8192,
            ..base()
        })
        .unwrap()
        .report();
        assert!(big.area_um2 > 4.0 * small.area_um2);
        assert!(big.search_energy_j > 4.0 * small.search_energy_j);
        // Latency grows only mildly (longer searchlines, deeper encode).
        assert!(big.search_latency_s < 4.0 * small.search_latency_s);
    }

    #[test]
    fn best_match_segments_words_when_needed() {
        // Distance resolution on long RRAM words forces a split: the 2T2R
        // discharge path's low on/off ratio caps the matchline length.
        let cam = CamArray::new(CamConfig {
            bits_per_word: 1024,
            design: CamCellDesign::Rram2T2R,
            match_kind: MatchKind::Best { max_distance: 4 },
            ..base()
        })
        .unwrap();
        assert!(cam.segments() > 1, "expected segmentation");
        assert!(cam.cols_per_segment() * cam.segments() >= 1024);
        assert!(cam.mismatch_limit() >= 4);
    }

    #[test]
    fn unachievable_resolution_is_an_error() {
        // No matchline length lets a sense amp split 48-vs-49 mismatches.
        let err = CamArray::new(CamConfig {
            bits_per_word: 128,
            match_kind: MatchKind::Best { max_distance: 48 },
            ..base()
        })
        .unwrap_err();
        assert!(matches!(err, CamError::SenseMarginUnachievable { .. }));
    }

    #[test]
    fn exact_match_allows_longer_lines_than_best() {
        let exact = CamArray::new(CamConfig {
            bits_per_word: 512,
            design: CamCellDesign::Rram2T2R,
            match_kind: MatchKind::Exact,
            ..base()
        })
        .unwrap();
        let best = CamArray::new(CamConfig {
            bits_per_word: 512,
            design: CamCellDesign::Rram2T2R,
            match_kind: MatchKind::Best { max_distance: 4 },
            ..base()
        })
        .unwrap();
        assert!(exact.segments() <= best.segments());
        assert!(exact.cols_per_segment() >= best.cols_per_segment());
    }

    #[test]
    fn rram_segments_sooner_than_fefet() {
        // Low on/off ratio in the discharge path => earlier mismatch limit.
        let mk = MatchKind::Best { max_distance: 4 };
        let fefet = CamArray::new(CamConfig {
            bits_per_word: 512,
            match_kind: mk,
            ..base()
        })
        .unwrap();
        let rram = CamArray::new(CamConfig {
            bits_per_word: 512,
            design: CamCellDesign::Rram2T2R,
            match_kind: mk,
            ..base()
        })
        .unwrap();
        assert!(rram.segments() >= fefet.segments());
        assert!(rram.cols_per_segment() <= fefet.cols_per_segment());
    }

    #[test]
    fn multibit_shrinks_array() {
        let binary = CamArray::new(base()).unwrap().report();
        let mcam = CamArray::new(CamConfig {
            data: DataKind::MultiBit(3),
            ..base()
        })
        .unwrap()
        .report();
        // Same capacity in a third of the cells.
        assert!(mcam.area_um2 < 0.6 * binary.area_um2);
        assert_eq!(mcam.capacity_bits, binary.capacity_bits);
        // But writes take longer (program-verify).
        assert!(mcam.write_latency_s > binary.write_latency_s);
    }

    #[test]
    fn sram_cam_is_much_larger_but_fast() {
        let fefet = CamArray::new(base()).unwrap().report();
        let sram = CamArray::new(CamConfig {
            design: CamCellDesign::Sram16T,
            data: DataKind::Binary,
            ..base()
        })
        .unwrap()
        .report();
        assert!(sram.area_um2 > 3.0 * fefet.area_um2);
        assert!(sram.write_latency_s < fefet.write_latency_s);
    }

    #[test]
    fn scaling_node_shrinks_area() {
        let n40 = CamArray::new(base()).unwrap().report();
        let n22 = CamArray::new(CamConfig {
            tech: TechNode::n22(),
            ..base()
        })
        .unwrap()
        .report();
        assert!(n22.area_um2 < n40.area_um2);
    }

    #[test]
    fn one_word_array_models_finitely() {
        // A single stored word is a legal (if degenerate) CAM; every FOM
        // must stay finite and positive across match kinds despite the
        // log2 edge at words == 1.
        for match_kind in [MatchKind::Exact, MatchKind::Best { max_distance: 4 }] {
            let cam = CamArray::new(CamConfig {
                words: 1,
                match_kind,
                ..base()
            })
            .expect("1-word array should model");
            let r = cam.report();
            for v in [
                r.area_um2,
                r.search_latency_s,
                r.search_energy_j,
                r.write_latency_s,
                r.write_energy_j,
                r.leakage_w,
            ] {
                assert!(v.is_finite() && v > 0.0, "{match_kind:?}: {v}");
            }
            assert_eq!(r.capacity_bits, 128);
        }
    }

    #[test]
    fn one_word_search_is_cheaper_than_default() {
        let one = CamArray::new(CamConfig { words: 1, ..base() })
            .unwrap()
            .report();
        let full = CamArray::new(base()).unwrap().report();
        assert!(one.search_energy_j < full.search_energy_j);
        assert!(one.search_latency_s <= full.search_latency_s);
    }

    #[test]
    fn solver_matches_direct_construction_bit_for_bit() {
        let mut solver = CamSolver::new();
        let configs = [
            base(),
            CamConfig {
                words: 26,
                bits_per_word: 4096 * 3,
                design: CamCellDesign::Fefet2T,
                data: DataKind::MultiBit(3),
                match_kind: MatchKind::Best { max_distance: 8 },
                ..base()
            },
            CamConfig {
                words: 65_000,
                bits_per_word: 64,
                design: CamCellDesign::Rram2T2R,
                data: DataKind::Ternary,
                match_kind: MatchKind::Best { max_distance: 4 },
                ..base()
            },
            CamConfig {
                words: 1,
                match_kind: MatchKind::Exact,
                ..base()
            },
        ];
        for config in configs {
            let direct = CamArray::new(config.clone()).expect("models").report();
            let cached = solver.report(config).expect("models");
            assert_eq!(direct.area_um2.to_bits(), cached.area_um2.to_bits());
            assert_eq!(
                direct.search_latency_s.to_bits(),
                cached.search_latency_s.to_bits()
            );
            assert_eq!(
                direct.search_energy_j.to_bits(),
                cached.search_energy_j.to_bits()
            );
            assert_eq!(
                direct.write_latency_s.to_bits(),
                cached.write_latency_s.to_bits()
            );
            assert_eq!(
                direct.write_energy_j.to_bits(),
                cached.write_energy_j.to_bits()
            );
            assert_eq!(direct.leakage_w.to_bits(), cached.leakage_w.to_bits());
            assert_eq!(
                (
                    direct.segments,
                    direct.cols_per_segment,
                    direct.mismatch_limit
                ),
                (
                    cached.segments,
                    cached.cols_per_segment,
                    cached.mismatch_limit
                )
            );
        }
    }

    #[test]
    fn solver_reproduces_construction_errors() {
        let mut solver = CamSolver::new();
        let bad = CamConfig {
            bits_per_word: 128,
            match_kind: MatchKind::Best { max_distance: 48 },
            ..base()
        };
        let direct = CamArray::new(bad.clone()).unwrap_err();
        let cached = solver.report(bad.clone()).unwrap_err();
        assert_eq!(direct, cached);
        // The negative margin result is cached too: a second query hits.
        let before = solver.margins.len();
        let _ = solver.report(bad).unwrap_err();
        assert_eq!(solver.margins.len(), before);
    }

    #[test]
    fn leakage_positive_and_scales_with_cells() {
        let small = CamArray::new(base()).unwrap();
        let big = CamArray::new(CamConfig {
            words: 4096,
            ..base()
        })
        .unwrap();
        assert!(small.leakage_power() > 0.0);
        assert!(big.leakage_power() > small.leakage_power());
    }
}
