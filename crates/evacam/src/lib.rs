//! Eva-CAM-style circuit/architecture model for content addressable
//! memories (paper Sec. VI, Fig. 1F, Fig. 5).
//!
//! Given a CAM configuration — cell design, data representation, match
//! type, array geometry, process node — the model produces array-level
//! figures of merit (area, search latency, search energy, write cost) and
//! the *mismatch limit*: how many cells one matchline can carry before
//! best/threshold matches become unsensable. Like the tool it reproduces,
//! it supports:
//!
//! - exact (EX), best (BE), and threshold (TH) match types;
//! - binary/ternary (TCAM), multi-bit (MCAM), and analog (ACAM) data;
//! - two-terminal (RRAM/PCM/MRAM) and three-terminal (FeFET/flash/SRAM)
//!   devices.
//!
//! [`validate`] reproduces the Fig. 5 validation table against published
//! chips; [`variation`] implements the paper's proposed enhancement —
//! device-variation-aware array-size prediction; [`acam`] is a
//! functional analog-CAM model with the decision-tree mapping.
//!
//! # Examples
//!
//! ```
//! use xlda_evacam::{CamArray, CamConfig, CamCellDesign, DataKind, MatchKind};
//!
//! let config = CamConfig {
//!     words: 1024,
//!     bits_per_word: 128,
//!     design: CamCellDesign::Fefet2T,
//!     data: DataKind::MultiBit(3),
//!     match_kind: MatchKind::Best { max_distance: 8 },
//!     ..CamConfig::default()
//! };
//! let cam = CamArray::new(config)?;
//! let report = cam.report();
//! assert!(report.search_latency_s > 0.0);
//! # Ok::<(), xlda_evacam::CamError>(())
//! ```

pub mod acam;
mod array;
mod design;
pub mod validate;
pub mod variation;

pub use array::{CamArray, CamReport, CamSolver};
pub use design::{CamCellDesign, CamConfig, CamError, DataKind, MatchKind};
