//! Functional analog CAM (ACAM) model.
//!
//! An ACAM cell stores an *interval*: two programmable thresholds define
//! a lower and an upper bound, and an analog input voltage matches the
//! cell iff it falls inside (paper Sec. II-B1: "the threshold voltage
//! values in FeFETs define either upper or lower bounds, and an analog
//! input matches stored cell data if it is within the bounds"). A word
//! matches a query when *every* cell matches — which makes an ACAM row a
//! conjunction of interval predicates, i.e. exactly one branch of a
//! decision tree. That equivalence (memory row = tree root-to-leaf path)
//! is the flagship ACAM application and powers the `acam_tree` example.
//!
//! The model includes the ACAM's characteristic non-idealities: bound
//! programming variation and input noise blur the interval edges, so
//! values near a boundary mis-match — the reason ACAMs "may suffer more
//! from noise and variation effects" than MCAMs.

use xlda_num::rng::Rng64;

/// One analog interval cell: matches inputs in `[lo, hi]`.
///
/// Unbounded sides (the "don't care" direction) are modeled with
/// infinities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcamCell {
    /// Lower bound (−∞ for "no lower bound").
    pub lo: f64,
    /// Upper bound (+∞ for "no upper bound").
    pub hi: f64,
}

impl AcamCell {
    /// A cell matching everything (both thresholds disabled).
    pub fn dont_care() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// A cell matching `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn interval(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty interval");
        Self { lo, hi }
    }

    /// Whether `x` falls inside the stored interval (ideal cell).
    pub fn matches(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// ACAM array configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcamConfig {
    /// One-sigma programming error on each stored bound (in input units).
    pub bound_sigma: f64,
    /// One-sigma noise added to each applied input (in input units).
    pub input_noise: f64,
}

impl Default for AcamConfig {
    /// 1 % of a unit input range on each error source.
    fn default() -> Self {
        Self {
            bound_sigma: 0.01,
            input_noise: 0.01,
        }
    }
}

/// A programmed analog CAM: one row of interval cells per stored word.
#[derive(Debug, Clone)]
pub struct AcamArray {
    config: AcamConfig,
    /// Programmed (variation-including) bounds per row.
    rows: Vec<Vec<AcamCell>>,
    /// Labels attached to rows (e.g. decision-tree leaf classes).
    labels: Vec<usize>,
    width: usize,
}

impl AcamArray {
    /// Programs an ACAM from ideal rows, applying bound-programming
    /// variation.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged, or label count mismatches.
    pub fn program(
        rows: &[Vec<AcamCell>],
        labels: &[usize],
        config: AcamConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert!(!rows.is_empty(), "ACAM needs at least one row");
        assert_eq!(rows.len(), labels.len(), "one label per row");
        let width = rows[0].len();
        assert!(width > 0, "rows need at least one cell");
        let programmed = rows
            .iter()
            .map(|row| {
                assert_eq!(row.len(), width, "ragged ACAM rows");
                row.iter()
                    .map(|cell| {
                        let lo = if cell.lo.is_finite() {
                            rng.normal(cell.lo, config.bound_sigma)
                        } else {
                            cell.lo
                        };
                        let hi = if cell.hi.is_finite() {
                            rng.normal(cell.hi, config.bound_sigma)
                        } else {
                            cell.hi
                        };
                        // A noise-inverted interval (lo > hi) simply
                        // matches nothing — both threshold comparisons
                        // can never hold at once.
                        AcamCell { lo, hi }
                    })
                    .collect()
            })
            .collect();
        Self {
            config,
            rows: programmed,
            labels: labels.to_vec(),
            width,
        }
    }

    /// Number of stored words.
    pub fn words(&self) -> usize {
        self.rows.len()
    }

    /// Cells per word.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the labels of all rows matching the (noisy) query, in row
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn search(&self, query: &[f64], rng: &mut Rng64) -> Vec<usize> {
        assert_eq!(query.len(), self.width, "query width mismatch");
        let noisy: Vec<f64> = query
            .iter()
            .map(|&x| rng.normal(x, self.config.input_noise))
            .collect();
        self.rows
            .iter()
            .zip(&self.labels)
            .filter(|(row, _)| row.iter().zip(&noisy).all(|(c, &x)| c.matches(x)))
            .map(|(_, &label)| label)
            .collect()
    }

    /// Classifies a query: the label of the first matching row, if any.
    pub fn classify(&self, query: &[f64], rng: &mut Rng64) -> Option<usize> {
        self.search(query, rng).first().copied()
    }
}

/// A node of an axis-aligned decision tree, compiled to ACAM rows.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Internal split: `feature < threshold` goes left, else right.
    Split {
        /// Feature index compared at this node.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `x[feature] < threshold`.
        left: Box<TreeNode>,
        /// Subtree for `x[feature] >= threshold`.
        right: Box<TreeNode>,
    },
    /// Leaf with a class label.
    Leaf {
        /// Predicted class.
        class: usize,
    },
}

impl TreeNode {
    /// Compiles the tree into ACAM rows: one row per root-to-leaf path,
    /// with per-feature interval constraints intersected along the path.
    ///
    /// This is the standard tree-to-ACAM mapping: each leaf becomes one
    /// word whose cells store the feature bounds of its decision region.
    pub fn to_acam_rows(&self, features: usize) -> (Vec<Vec<AcamCell>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut path = vec![AcamCell::dont_care(); features];
        self.collect(&mut path, &mut rows, &mut labels);
        (rows, labels)
    }

    fn collect(
        &self,
        path: &mut Vec<AcamCell>,
        rows: &mut Vec<Vec<AcamCell>>,
        labels: &mut Vec<usize>,
    ) {
        match self {
            TreeNode::Leaf { class } => {
                // Unreachable leaves (contradictory constraints along the
                // path) compile to empty regions; skip them.
                if path.iter().all(|c| c.lo <= c.hi) {
                    rows.push(path.clone());
                    labels.push(*class);
                }
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let saved = path[*feature];
                path[*feature] = AcamCell {
                    lo: saved.lo,
                    hi: saved.hi.min(*threshold),
                };
                left.collect(path, rows, labels);
                path[*feature] = AcamCell {
                    lo: saved.lo.max(*threshold),
                    hi: saved.hi,
                };
                right.collect(path, rows, labels);
                path[*feature] = saved;
            }
        }
    }

    /// Software reference: evaluates the tree directly.
    pub fn evaluate(&self, x: &[f64]) -> usize {
        match self {
            TreeNode::Leaf { class } => *class,
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] < *threshold {
                    left.evaluate(x)
                } else {
                    right.evaluate(x)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal() -> AcamConfig {
        AcamConfig {
            bound_sigma: 0.0,
            input_noise: 0.0,
        }
    }

    fn small_tree() -> TreeNode {
        // f0 < 0.5 ? (f1 < 0.3 ? class0 : class1) : class2
        TreeNode::Split {
            feature: 0,
            threshold: 0.5,
            left: Box::new(TreeNode::Split {
                feature: 1,
                threshold: 0.3,
                left: Box::new(TreeNode::Leaf { class: 0 }),
                right: Box::new(TreeNode::Leaf { class: 1 }),
            }),
            right: Box::new(TreeNode::Leaf { class: 2 }),
        }
    }

    #[test]
    fn cell_matching_semantics() {
        let c = AcamCell::interval(0.2, 0.6);
        assert!(c.matches(0.2) && c.matches(0.4) && c.matches(0.6));
        assert!(!c.matches(0.1) && !c.matches(0.7));
        assert!(AcamCell::dont_care().matches(1e12));
    }

    #[test]
    fn tree_compiles_to_one_row_per_leaf() {
        let (rows, labels) = small_tree().to_acam_rows(2);
        assert_eq!(rows.len(), 3);
        assert_eq!(labels, vec![0, 1, 2]);
        // Unreachable leaves vanish: split twice on the same feature
        // with contradictory thresholds.
        let degenerate = TreeNode::Split {
            feature: 0,
            threshold: 0.3,
            left: Box::new(TreeNode::Split {
                feature: 0,
                threshold: 0.6,
                left: Box::new(TreeNode::Leaf { class: 0 }),
                right: Box::new(TreeNode::Leaf { class: 9 }), // x<0.3 ∧ x≥0.6
            }),
            right: Box::new(TreeNode::Leaf { class: 1 }),
        };
        let (rows2, labels2) = degenerate.to_acam_rows(1);
        assert_eq!(rows2.len(), 2);
        assert!(!labels2.contains(&9));
        // Leaf regions are disjoint: each point matches exactly one row.
        let mut rng = Rng64::new(1);
        let acam = AcamArray::program(&rows, &labels, ideal(), &mut rng);
        for _ in 0..200 {
            let q = [rng.uniform(), rng.uniform()];
            assert_eq!(acam.search(&q, &mut rng).len(), 1, "query {q:?}");
        }
    }

    #[test]
    fn ideal_acam_agrees_with_software_tree() {
        let tree = small_tree();
        let (rows, labels) = tree.to_acam_rows(2);
        let mut rng = Rng64::new(2);
        let acam = AcamArray::program(&rows, &labels, ideal(), &mut rng);
        for _ in 0..500 {
            let q = [rng.uniform(), rng.uniform()];
            assert_eq!(
                acam.classify(&q, &mut rng),
                Some(tree.evaluate(&q)),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn noise_only_hurts_near_boundaries() {
        let tree = small_tree();
        let (rows, labels) = tree.to_acam_rows(2);
        let noisy_cfg = AcamConfig {
            bound_sigma: 0.02,
            input_noise: 0.02,
        };
        let mut rng = Rng64::new(3);
        let acam = AcamArray::program(&rows, &labels, noisy_cfg, &mut rng);
        // Far from every boundary: always correct.
        for _ in 0..100 {
            assert_eq!(acam.classify(&[0.9, 0.9], &mut rng), Some(2));
        }
        // Hugging the f0 = 0.5 boundary: sometimes wrong.
        let mut wrong = 0;
        for _ in 0..400 {
            if acam.classify(&[0.505, 0.9], &mut rng) != Some(2) {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "boundary queries should occasionally miss");
    }

    #[test]
    fn accuracy_degrades_gracefully_with_variation() {
        let tree = small_tree();
        let (rows, labels) = tree.to_acam_rows(2);
        let acc_at = |sigma: f64| {
            let cfg = AcamConfig {
                bound_sigma: sigma,
                input_noise: sigma,
            };
            let mut rng = Rng64::new(4);
            let acam = AcamArray::program(&rows, &labels, cfg, &mut rng);
            let mut correct = 0;
            let trials = 1000;
            let mut qrng = Rng64::new(5);
            for _ in 0..trials {
                let q = [qrng.uniform(), qrng.uniform()];
                if acam.classify(&q, &mut rng) == Some(tree.evaluate(&q)) {
                    correct += 1;
                }
            }
            correct as f64 / trials as f64
        };
        let clean = acc_at(0.0);
        let mild = acc_at(0.02);
        let severe = acc_at(0.2);
        assert!(clean > 0.999);
        assert!(mild > severe, "mild {mild} severe {severe}");
        assert!(mild > 0.85, "mild noise accuracy {mild}");
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn wrong_query_width_panics() {
        let (rows, labels) = small_tree().to_acam_rows(2);
        let mut rng = Rng64::new(6);
        let acam = AcamArray::program(&rows, &labels, ideal(), &mut rng);
        acam.search(&[0.5], &mut rng);
    }
}
