//! CAM configuration space: cell designs, data kinds, match types.

use xlda_circuit::matchline::MatchlineConfig;
use xlda_circuit::tech::TechNode;
use xlda_device::fefet::Fefet;
use xlda_device::flash::Flash;
use xlda_device::mram::Mram;
use xlda_device::pcm::Pcm;
use xlda_device::rram::Rram;
use xlda_device::sram::Sram;
use xlda_device::MemoryDevice;

/// CAM cell circuit design (paper Sec. II-B1 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CamCellDesign {
    /// The compact 2-FeFET cell (Fig. 2B): TCAM, MCAM, and ACAM capable.
    Fefet2T,
    /// RRAM 2T2R TCAM cell.
    Rram2T2R,
    /// RRAM 6T2R analog CAM cell (exact match only, high static power).
    Acam6T2R,
    /// PCM 2T2R TCAM cell with clocked self-referenced sensing.
    Pcm2T2R,
    /// MRAM 4T2R TCAM cell.
    Mram4T2R,
    /// Conventional 16-transistor CMOS CAM cell.
    Sram16T,
    /// 2-transistor flash CAM cell (3D-NAND-style complementary storage).
    Flash2T,
}

impl CamCellDesign {
    /// All designs, for design-space enumeration.
    pub fn all() -> [CamCellDesign; 7] {
        [
            CamCellDesign::Fefet2T,
            CamCellDesign::Rram2T2R,
            CamCellDesign::Acam6T2R,
            CamCellDesign::Pcm2T2R,
            CamCellDesign::Mram4T2R,
            CamCellDesign::Sram16T,
            CamCellDesign::Flash2T,
        ]
    }

    /// Short human-readable name.
    pub fn label(&self) -> &'static str {
        match self {
            CamCellDesign::Fefet2T => "FeFET-2T",
            CamCellDesign::Rram2T2R => "RRAM-2T2R",
            CamCellDesign::Acam6T2R => "RRAM-6T2R-ACAM",
            CamCellDesign::Pcm2T2R => "PCM-2T2R",
            CamCellDesign::Mram4T2R => "MRAM-4T2R",
            CamCellDesign::Sram16T => "SRAM-16T",
            CamCellDesign::Flash2T => "Flash-2T",
        }
    }

    /// The storage device underlying the cell.
    pub fn device(&self) -> Box<dyn MemoryDevice + Send + Sync> {
        match self {
            CamCellDesign::Fefet2T => Box::new(Fefet::silicon()),
            CamCellDesign::Rram2T2R | CamCellDesign::Acam6T2R => Box::new(Rram::taox()),
            CamCellDesign::Pcm2T2R => Box::new(Pcm::gst()),
            CamCellDesign::Mram4T2R => Box::new(Mram::stt()),
            CamCellDesign::Sram16T => Box::new(Sram::cam_cell_16t()),
            CamCellDesign::Flash2T => Box::new(Flash::nor()),
        }
    }

    /// Number of device terminals (3-terminal cells need the extended
    /// Eva-CAM modeling path the paper calls out).
    pub fn terminals(&self) -> u8 {
        self.device().terminals()
    }

    /// Transistor+device count per cell (area driver).
    pub fn elements_per_cell(&self) -> u8 {
        match self {
            CamCellDesign::Fefet2T | CamCellDesign::Flash2T => 2,
            CamCellDesign::Rram2T2R | CamCellDesign::Pcm2T2R => 4,
            CamCellDesign::Acam6T2R => 8,
            CamCellDesign::Mram4T2R => 6,
            CamCellDesign::Sram16T => 16,
        }
    }

    /// Cell footprint in F².
    pub fn cell_area_f2(&self) -> f64 {
        match self {
            CamCellDesign::Fefet2T => 28.0,
            CamCellDesign::Rram2T2R => 36.0,
            CamCellDesign::Acam6T2R => 80.0,
            CamCellDesign::Pcm2T2R => 50.0,
            CamCellDesign::Mram4T2R => 100.0,
            CamCellDesign::Sram16T => 389.0,
            CamCellDesign::Flash2T => 24.0,
        }
    }

    /// Maximum bits a single cell can store for MCAM operation.
    pub fn max_bits_per_cell(&self) -> u8 {
        match self {
            CamCellDesign::Fefet2T => 3,
            CamCellDesign::Flash2T => 2,
            CamCellDesign::Acam6T2R => 4,
            _ => 1,
        }
    }

    /// Whether this cell supports best/threshold (distance) matches.
    ///
    /// The 6T2R ACAM supports exact match only (paper Sec. II-B1).
    pub fn supports_distance_match(&self) -> bool {
        !matches!(self, CamCellDesign::Acam6T2R)
    }

    /// Static power per cell (W) beyond leakage — the ACAM's standing
    /// current and SRAM's retention leakage.
    pub fn static_power_per_cell(&self) -> f64 {
        match self {
            CamCellDesign::Acam6T2R => 50e-9,
            CamCellDesign::Sram16T => 2.5e-9,
            _ => 0.0,
        }
    }

    /// Number of clocked sensing phases per search.
    ///
    /// The published PCM and MRAM chips use clocked *self-referenced*
    /// sensing, which evaluates the matchline twice per search.
    pub fn sense_phases(&self) -> u8 {
        match self {
            CamCellDesign::Pcm2T2R | CamCellDesign::Mram4T2R => 2,
            _ => 1,
        }
    }

    /// Matchline electrical parameters of the cell.
    ///
    /// For transistor-gated cells (FeFET, flash, SRAM, MRAM-4T2R) the
    /// pull-down path is a transistor, so the on/off ratio seen by the
    /// matchline is transistor-like regardless of the storage device; for
    /// resistor-in-path cells (2T2R) the device's own on/off ratio limits
    /// the matchline — which is exactly why RRAM/PCM TCAMs hit the
    /// mismatch limit sooner (paper Sec. VI).
    pub fn matchline_config(&self) -> MatchlineConfig {
        let (g_on, g_off, c_cell) = match self {
            CamCellDesign::Fefet2T => (20e-6, 2e-9, 0.10e-15),
            CamCellDesign::Flash2T => (50e-6, 0.5e-9, 0.10e-15),
            CamCellDesign::Sram16T => (100e-6, 1e-9, 0.25e-15),
            // MTJ state gates a compare transistor; the small TMR leaves
            // the "off" transistor partially on.
            CamCellDesign::Mram4T2R => (15e-6, 50e-9, 0.15e-15),
            // Discharge flows through the resistive device itself.
            CamCellDesign::Rram2T2R => (60e-6, 2e-6, 0.15e-15),
            CamCellDesign::Acam6T2R => (60e-6, 2e-6, 0.20e-15),
            CamCellDesign::Pcm2T2R => (40e-6, 0.5e-6, 0.12e-15),
        };
        // The clocked self-referenced PCM scheme senses a deeper swing.
        let v_ref_frac = match self {
            CamCellDesign::Pcm2T2R => 0.30,
            _ => 0.5,
        };
        MatchlineConfig {
            g_on,
            g_off,
            c_cell,
            precharge_frac: 1.0,
            v_ref_frac,
        }
    }
}

impl std::fmt::Display for CamCellDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Data representation stored/searched per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataKind {
    /// One bit per cell.
    Binary,
    /// One bit per cell plus a "don't care" state.
    Ternary,
    /// `b` bits per cell (MCAM).
    MultiBit(u8),
    /// Analog bounds per cell (ACAM).
    Analog,
}

impl DataKind {
    /// Bits of information stored per cell (analog cells are credited
    /// with 4 bits, the usual ACAM equivalence).
    pub fn bits_per_cell(&self) -> u8 {
        match self {
            DataKind::Binary | DataKind::Ternary => 1,
            DataKind::MultiBit(b) => *b,
            DataKind::Analog => 4,
        }
    }
}

/// Match semantics the array must implement (Fig. 2C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MatchKind {
    /// Exact match: flag words with zero mismatches.
    Exact,
    /// Best match: return the word with the smallest distance; the sense
    /// path must distinguish adjacent mismatch counts up to
    /// `max_distance`.
    Best {
        /// Largest distance that must remain resolvable.
        max_distance: usize,
    },
    /// Threshold match: flag words with at most `k` mismatches.
    Threshold {
        /// Distance threshold.
        k: usize,
    },
}

impl MatchKind {
    /// The number of adjacent mismatch counts the matchline sensing must
    /// distinguish (1 for exact: zero-vs-one).
    pub fn required_resolution(&self) -> usize {
        match self {
            MatchKind::Exact => 1,
            MatchKind::Best { max_distance } => (*max_distance).max(1),
            MatchKind::Threshold { k } => (*k).max(1),
        }
    }
}

/// Full CAM array configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CamConfig {
    /// Number of stored words (rows).
    pub words: usize,
    /// Search width in bits per word.
    pub bits_per_word: usize,
    /// Cell circuit design.
    pub design: CamCellDesign,
    /// Data representation.
    pub data: DataKind,
    /// Match semantics.
    pub match_kind: MatchKind,
    /// Row banking: words are split across this many independently
    /// driven banks, shortening searchlines at the cost of replicated
    /// drivers (1 = flat array).
    pub row_banks: usize,
    /// Process node.
    pub tech: TechNode,
}

impl Default for CamConfig {
    /// A 1024 × 128-bit ternary FeFET CAM at 40 nm with exact match.
    fn default() -> Self {
        Self {
            words: 1024,
            bits_per_word: 128,
            design: CamCellDesign::Fefet2T,
            data: DataKind::Ternary,
            match_kind: MatchKind::Exact,
            row_banks: 1,
            tech: TechNode::n40(),
        }
    }
}

impl CamConfig {
    /// Cells per word after multi-bit packing.
    pub fn cells_per_word(&self) -> usize {
        let b = self.data.bits_per_cell() as usize;
        self.bits_per_word.div_ceil(b)
    }

    /// Validates the configuration against the design support matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CamError`] describing the first unsupported combination.
    pub fn check(&self) -> Result<(), CamError> {
        if self.words == 0 || self.bits_per_word == 0 || self.row_banks == 0 {
            return Err(CamError::EmptyArray);
        }
        let bits = self.data.bits_per_cell();
        if bits == 0 || bits > self.design.max_bits_per_cell() {
            return Err(CamError::UnsupportedData {
                design: self.design,
                data: self.data,
            });
        }
        if matches!(
            self.match_kind,
            MatchKind::Best { .. } | MatchKind::Threshold { .. }
        ) && !self.design.supports_distance_match()
        {
            return Err(CamError::UnsupportedMatch {
                design: self.design,
                match_kind: self.match_kind,
            });
        }
        Ok(())
    }
}

/// Errors raised when a CAM configuration cannot be modeled.
#[derive(Debug, Clone, PartialEq)]
pub enum CamError {
    /// Zero rows or zero bits.
    EmptyArray,
    /// The cell design cannot store the requested data representation.
    UnsupportedData {
        /// Offending design.
        design: CamCellDesign,
        /// Requested data representation.
        data: DataKind,
    },
    /// The cell design cannot perform the requested match type.
    UnsupportedMatch {
        /// Offending design.
        design: CamCellDesign,
        /// Requested match type.
        match_kind: MatchKind,
    },
    /// No matchline length satisfies the sense-margin requirement.
    SenseMarginUnachievable {
        /// Mismatch counts that must stay distinguishable.
        required_resolution: usize,
    },
}

impl std::fmt::Display for CamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CamError::EmptyArray => write!(f, "array has zero words or zero bits"),
            CamError::UnsupportedData { design, data } => {
                write!(f, "{design} cannot store {data:?} data")
            }
            CamError::UnsupportedMatch { design, match_kind } => {
                write!(f, "{design} cannot perform {match_kind:?} matches")
            }
            CamError::SenseMarginUnachievable {
                required_resolution,
            } => write!(
                f,
                "no matchline length can resolve {required_resolution} mismatches"
            ),
        }
    }
}

impl std::error::Error for CamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(CamConfig::default().check().is_ok());
    }

    #[test]
    fn multibit_packs_cells() {
        let cfg = CamConfig {
            data: DataKind::MultiBit(3),
            bits_per_word: 128,
            ..CamConfig::default()
        };
        assert_eq!(cfg.cells_per_word(), 43); // ceil(128/3)
    }

    #[test]
    fn mram_rejects_multibit() {
        let cfg = CamConfig {
            design: CamCellDesign::Mram4T2R,
            data: DataKind::MultiBit(2),
            ..CamConfig::default()
        };
        assert!(matches!(cfg.check(), Err(CamError::UnsupportedData { .. })));
    }

    #[test]
    fn acam_rejects_best_match() {
        let cfg = CamConfig {
            design: CamCellDesign::Acam6T2R,
            data: DataKind::Analog,
            match_kind: MatchKind::Best { max_distance: 4 },
            ..CamConfig::default()
        };
        assert!(matches!(
            cfg.check(),
            Err(CamError::UnsupportedMatch { .. })
        ));
    }

    #[test]
    fn acam_accepts_exact_analog() {
        let cfg = CamConfig {
            design: CamCellDesign::Acam6T2R,
            data: DataKind::Analog,
            match_kind: MatchKind::Exact,
            ..CamConfig::default()
        };
        assert!(cfg.check().is_ok());
    }

    #[test]
    fn empty_array_rejected() {
        let cfg = CamConfig {
            words: 0,
            ..CamConfig::default()
        };
        assert_eq!(cfg.check(), Err(CamError::EmptyArray));
    }

    #[test]
    fn sram_cam_is_largest_cell() {
        let areas: Vec<f64> = CamCellDesign::all()
            .iter()
            .map(|d| d.cell_area_f2())
            .collect();
        let sram = CamCellDesign::Sram16T.cell_area_f2();
        assert!(areas.iter().all(|&a| a <= sram));
    }

    #[test]
    fn required_resolution() {
        assert_eq!(MatchKind::Exact.required_resolution(), 1);
        assert_eq!(MatchKind::Best { max_distance: 8 }.required_resolution(), 8);
        assert_eq!(MatchKind::Threshold { k: 3 }.required_resolution(), 3);
    }

    #[test]
    fn error_display_nonempty() {
        let e = CamError::EmptyArray;
        assert!(!e.to_string().is_empty());
    }
}
