fn main() {
    for row in xlda_evacam::validate::validate_all().unwrap() {
        println!(
            "{:18} area {:>10.0} um2 ({:?})  lat {:>8.3} ns ({:?})  energy {:>8.1} pJ ({:?})",
            row.label,
            row.model_area_um2,
            row.area_error.map(|e| format!("{:+.1}%", e * 100.0)),
            row.model_latency_s * 1e9,
            row.latency_error.map(|e| format!("{:+.1}%", e * 100.0)),
            row.model_energy_j * 1e12,
            row.energy_error.map(|e| format!("{:+.1}%", e * 100.0))
        );
    }
}
