//! Stochastic-conductance projection crossbars for in-memory LSH
//! (paper Sec. IV, Fig. 4B).
//!
//! Locality-sensitive hashing needs a random projection matrix with zero
//! mean. The paper's insight: as-fabricated RRAM devices in their
//! high-resistance state already *are* i.i.d. random conductances — so a
//! crossbar programmed with stochastic HRS devices computes the random
//! projection in-memory. A hash bit is the sign of the current difference
//! between two adjacent columns; the ternary variant outputs a "don't
//! care" when the difference is too small to be stable against
//! conductance relaxation.

use xlda_device::rram::Rram;
use xlda_num::matrix::Matrix;
use xlda_num::rng::Rng64;

/// A crossbar of stochastic HRS devices computing sign-random projections.
#[derive(Debug, Clone)]
pub struct StochasticProjection {
    device: Rram,
    /// Conductances, `dim x (2 * bits)` — adjacent column pairs form one
    /// differential hash bit.
    g: Matrix,
    /// Read voltage (V).
    pub v_read: f64,
    /// Wire resistance between crosspoints (Ω); induces the current-
    /// dependent bias the paper mitigates by using HRS devices.
    pub r_wire: f64,
    /// Relative read noise (one sigma).
    pub read_noise: f64,
    noise_seed: u64,
}

impl StochasticProjection {
    /// Programs a `dim`-input, `bits`-output projection from
    /// as-fabricated stochastic HRS conductances.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `bits` is zero.
    pub fn new(dim: usize, bits: usize, device: &Rram, rng: &mut Rng64) -> Self {
        assert!(
            dim > 0 && bits > 0,
            "projection dimensions must be positive"
        );
        let mut g = Matrix::zeros(dim, 2 * bits);
        for i in 0..dim {
            for j in 0..2 * bits {
                *g.at_mut(i, j) = device.sample_stochastic_hrs(rng);
            }
        }
        Self {
            device: device.clone(),
            g,
            v_read: 0.2,
            r_wire: 1.0,
            read_noise: 0.01,
            noise_seed: rng.next_u64(),
        }
    }

    /// Number of signature bits produced.
    pub fn bits(&self) -> usize {
        self.g.cols() / 2
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.g.rows()
    }

    /// Applies conductance relaxation over `decades` decades of time —
    /// the source of unstable hash bits (Fig. 4C).
    pub fn relax(&mut self, decades: f64, rng: &mut Rng64) {
        let dev = self.device.clone();
        self.g.map_inplace(|g| dev.relax(g, decades, rng));
    }

    /// Differential column currents: one signed value per signature bit.
    ///
    /// Inputs must be non-negative (post-ReLU features); they are scaled
    /// to read voltages internally.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "input length mismatch");
        let x_max = x.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-12);
        let v: Vec<f64> = x.iter().map(|&u| u / x_max * self.v_read).collect();
        let raw = self.g.vecmat(&v);
        let rows = self.dim() as f64;
        // IR-drop attenuation grows with column index — the systematic
        // bias the paper observes with low-resistance (high-current)
        // mappings.
        let mut nrng = Rng64::new(self.noise_seed ^ hash_slice(&v));
        let attenuated: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(j, &i)| {
                let g_col: f64 = self.g.col(j).iter().sum();
                let r_path = self.r_wire * (rows / 2.0 + j as f64) / 2.0;
                // Multiplicative read noise on each column current.
                i / (1.0 + g_col * r_path) * (1.0 + nrng.normal(0.0, self.read_noise))
            })
            .collect();
        attenuated
            .chunks_exact(2)
            .map(|pair| pair[0] - pair[1])
            .collect()
    }

    /// Binary LSH signature: the sign of each differential current.
    pub fn hash(&self, x: &[f64]) -> Vec<i8> {
        self.project(x)
            .iter()
            .map(|&d| if d >= 0.0 { 1 } else { -1 })
            .collect()
    }

    /// Ternary LSH signature (TLSH): bits whose differential magnitude is
    /// below `threshold` (A) become `0`, the "don't care" state that
    /// always contributes zero Hamming distance (Fig. 4C).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative.
    pub fn ternary_hash(&self, x: &[f64], threshold: f64) -> Vec<i8> {
        assert!(threshold >= 0.0, "negative threshold");
        self.project(x)
            .iter()
            .map(|&d| {
                if d.abs() < threshold {
                    0
                } else if d >= 0.0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    /// A threshold scaled to the typical differential magnitude:
    /// `frac` of the mean |projection| over provided probe inputs.
    pub fn calibrate_threshold(&self, probes: &[Vec<f64>], frac: f64) -> f64 {
        let mut mags = Vec::new();
        for p in probes {
            for d in self.project(p) {
                mags.push(d.abs());
            }
        }
        frac * xlda_num::stats::mean(&mags)
    }
}

/// Hamming distance between two ternary signatures: "don't care" (0)
/// positions in *either* signature contribute zero distance.
///
/// # Panics
///
/// Panics if the signatures differ in length.
pub fn ternary_hamming(a: &[i8], b: &[i8]) -> usize {
    assert_eq!(a.len(), b.len(), "signature length mismatch");
    a.iter()
        .zip(b)
        .filter(|(&x, &y)| x != 0 && y != 0 && x != y)
        .count()
}

fn hash_slice(x: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in x {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(dim: usize, bits: usize, seed: u64) -> StochasticProjection {
        let dev = Rram::taox();
        StochasticProjection::new(dim, bits, &dev, &mut Rng64::new(seed))
    }

    fn random_input(dim: usize, rng: &mut Rng64) -> Vec<f64> {
        (0..dim).map(|_| rng.uniform()).collect()
    }

    #[test]
    fn hash_is_deterministic() {
        let p = proj(64, 32, 1);
        let mut rng = Rng64::new(2);
        let x = random_input(64, &mut rng);
        assert_eq!(p.hash(&x), p.hash(&x));
    }

    #[test]
    fn hash_bits_roughly_balanced() {
        // Zero-mean projections: ones and minus-ones appear about equally
        // across inputs.
        let p = proj(128, 64, 3);
        let mut rng = Rng64::new(4);
        let mut ones = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let x = random_input(128, &mut rng);
            for b in p.hash(&x) {
                if b == 1 {
                    ones += 1;
                }
                total += 1;
            }
        }
        let frac = ones as f64 / total as f64;
        assert!((0.3..0.7).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn similar_inputs_hash_closer_than_dissimilar() {
        let p = proj(128, 128, 5);
        let mut rng = Rng64::new(6);
        let x = random_input(128, &mut rng);
        // Small perturbation vs. fresh random vector.
        let near: Vec<f64> = x.iter().map(|&v| (v + 0.01).min(1.0)).collect();
        let far = random_input(128, &mut rng);
        let hx = p.hash(&x);
        let hn = p.hash(&near);
        let hf = p.hash(&far);
        let d_near = ternary_hamming(&hx, &hn);
        let d_far = ternary_hamming(&hx, &hf);
        assert!(d_near < d_far, "near {d_near} far {d_far}");
    }

    #[test]
    fn ternary_marks_small_margins_dont_care() {
        let p = proj(64, 64, 7);
        let mut rng = Rng64::new(8);
        let x = random_input(64, &mut rng);
        let thr = p.calibrate_threshold(std::slice::from_ref(&x), 0.5);
        let t = p.ternary_hash(&x, thr);
        let dont_care = t.iter().filter(|&&b| b == 0).count();
        assert!(dont_care > 0, "expected some X states");
        assert!(dont_care < t.len(), "not all should be X");
        // Binary hash never emits X.
        assert!(p.hash(&x).iter().all(|&b| b != 0));
    }

    #[test]
    fn tlsh_suppresses_relaxation_flips() {
        // Fig. 4C: bits near the hashing plane flip under relaxation;
        // the ternary scheme masks them.
        let mut rng = Rng64::new(9);
        let dev = Rram::taox();
        let mut flips_lsh = 0usize;
        let mut flips_tlsh = 0usize;
        for trial in 0..20 {
            let mut p = StochasticProjection::new(96, 64, &dev, &mut Rng64::new(100 + trial));
            let x = random_input(96, &mut rng);
            let thr = p.calibrate_threshold(std::slice::from_ref(&x), 0.4);
            let h0 = p.hash(&x);
            let t0 = p.ternary_hash(&x, thr);
            p.relax(3.0, &mut rng);
            let h1 = p.hash(&x);
            let t1 = p.ternary_hash(&x, thr);
            flips_lsh += h0.iter().zip(&h1).filter(|(&a, &b)| a != b).count();
            // A ternary "flip" is a definite disagreement (+1 vs -1).
            flips_tlsh += t0
                .iter()
                .zip(&t1)
                .filter(|(&a, &b)| a != 0 && b != 0 && a != b)
                .count();
        }
        assert!(
            flips_tlsh * 2 < flips_lsh,
            "tlsh {flips_tlsh} vs lsh {flips_lsh}"
        );
        assert!(flips_lsh > 0, "relaxation should flip some bits");
    }

    #[test]
    fn ternary_hamming_ignores_x() {
        let a = [1, -1, 0, 1];
        let b = [-1, -1, 1, 0];
        // Positions: 0 differs (1), 1 matches, 2 has X in a, 3 has X in b.
        assert_eq!(ternary_hamming(&a, &b), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_signatures_panic() {
        ternary_hamming(&[1], &[1, -1]);
    }
}
