//! Analog crossbar simulator (paper Sec. II-B2 and the substrate of both
//! case studies).
//!
//! A crossbar stores a weight matrix as device conductances and computes
//! matrix-vector products in analog: inputs drive the rows as voltages,
//! and per Kirchhoff the column currents sum `G·v` in one step. This crate
//! provides both:
//!
//! - a **functional simulator** ([`Crossbar`]) that actually computes MVMs
//!   through the non-ideality chain — programming variation, conductance
//!   quantization, IR drop (fast model or full nodal solve), read noise,
//!   ADC quantization, stuck-at defects;
//! - a **macro model** ([`macro_model::CrossbarMacro`]) that reports
//!   latency/energy/area per operation, NeuroSim-style;
//! - a **stochastic projection** builder ([`stochastic`]) exploiting
//!   as-fabricated HRS randomness for in-memory LSH (Sec. IV).
//!
//! # Examples
//!
//! ```
//! use xlda_crossbar::{Crossbar, CrossbarConfig, Fidelity};
//! use xlda_num::{Matrix, Rng64};
//!
//! let mut rng = Rng64::new(7);
//! let config = CrossbarConfig { rows: 32, cols: 16, ..CrossbarConfig::default() };
//! let w = Matrix::random_normal(32, 16, 0.0, 0.5, &mut rng);
//! let xbar = Crossbar::program(&config, &w, &mut rng);
//! let x = vec![0.5; 32];
//! let y = xbar.mvm(&x, Fidelity::Ideal);
//! assert_eq!(y.len(), 16);
//! ```

pub mod macro_model;
pub mod stochastic;

pub use macro_model::CrossbarError;

use xlda_device::rram::Rram;
use xlda_num::matrix::Matrix;
use xlda_num::rng::Rng64;
use xlda_num::solve::GridSolver;

/// How faithfully an MVM is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Pure linear algebra on target conductances (no non-idealities).
    Ideal,
    /// Programmed conductances + read noise + ADC, with a closed-form
    /// per-column IR-drop attenuation factor.
    Fast,
    /// Programmed conductances + read noise + ADC, with the full
    /// Gauss–Seidel nodal solve of the resistive grid.
    Full,
}

/// Crossbar electrical and converter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarConfig {
    /// Array rows (inputs).
    pub rows: usize,
    /// Array columns (outputs). Differential weight mapping uses one
    /// physical column pair per logical column.
    pub cols: usize,
    /// Device model programmed at each crosspoint.
    pub device: Rram,
    /// Read voltage applied on active rows (V).
    pub v_read: f64,
    /// Wire resistance between adjacent crosspoints (Ω).
    pub r_wire: f64,
    /// Input DAC resolution (bits); inputs are quantized to this grid.
    pub dac_bits: u8,
    /// Output ADC resolution (bits); `0` disables output quantization.
    pub adc_bits: u8,
    /// Relative read-current noise (one sigma).
    pub read_noise: f64,
    /// Fraction of devices stuck at `g_min` (fabrication defects).
    pub stuck_off_rate: f64,
}

impl Default for CrossbarConfig {
    /// A 64×64 TaO_x crossbar with 8-level programming, 4-bit DAC,
    /// 6-bit ADC, 1 Ω segment wires.
    fn default() -> Self {
        Self {
            rows: 64,
            cols: 64,
            device: Rram::taox(),
            v_read: 0.2,
            r_wire: 1.0,
            dac_bits: 4,
            adc_bits: 6,
            read_noise: 0.01,
            stuck_off_rate: 0.0,
        }
    }
}

/// A programmed crossbar holding a weight matrix as differential
/// conductance pairs.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    /// Positive-column conductances (`rows x cols`).
    g_pos: Matrix,
    /// Negative-column conductances (`rows x cols`).
    g_neg: Matrix,
    /// Ideal (target) conductances for the Ideal fidelity path.
    g_pos_target: Matrix,
    g_neg_target: Matrix,
    /// Weight scale: weight = (g_pos - g_neg) / g_scale.
    g_scale: f64,
    noise_seed: u64,
}

impl Crossbar {
    /// Programs `weights` (`rows x cols`) onto a differential crossbar.
    ///
    /// Weights are scaled so the largest magnitude maps to the full
    /// conductance window; each device suffers the RRAM model's
    /// state-dependent programming variation, and a `stuck_off_rate`
    /// fraction of devices are forced to `g_min`.
    ///
    /// # Panics
    ///
    /// Panics if the weight shape disagrees with the configuration.
    pub fn program(config: &CrossbarConfig, weights: &Matrix, rng: &mut Rng64) -> Self {
        assert_eq!(weights.rows(), config.rows, "weight rows mismatch");
        assert_eq!(weights.cols(), config.cols, "weight cols mismatch");
        let dev = &config.device;
        let w_max = weights
            .as_slice()
            .iter()
            .fold(0.0f64, |m, &w| m.max(w.abs()))
            .max(1e-12);
        let g_span = dev.g_max - dev.g_min;
        let g_scale = g_span / w_max;

        let (r, c) = (config.rows, config.cols);
        let mut g_pos_target = Matrix::zeros(r, c);
        let mut g_neg_target = Matrix::zeros(r, c);
        let mut g_pos = Matrix::zeros(r, c);
        let mut g_neg = Matrix::zeros(r, c);
        for i in 0..r {
            for j in 0..c {
                let w = weights.at(i, j);
                let (tp, tn) = if w >= 0.0 {
                    ((dev.g_min + w * g_scale).min(dev.g_max), dev.g_min)
                } else {
                    (dev.g_min, (dev.g_min - w * g_scale).min(dev.g_max))
                };
                *g_pos_target.at_mut(i, j) = tp;
                *g_neg_target.at_mut(i, j) = tn;
                let stuck_p = rng.chance(config.stuck_off_rate);
                let stuck_n = rng.chance(config.stuck_off_rate);
                *g_pos.at_mut(i, j) = if stuck_p {
                    dev.g_min
                } else {
                    dev.program(tp, rng)
                };
                *g_neg.at_mut(i, j) = if stuck_n {
                    dev.g_min
                } else {
                    dev.program(tn, rng)
                };
            }
        }
        Self {
            config: config.clone(),
            g_pos,
            g_neg,
            g_pos_target,
            g_neg_target,
            g_scale,
            noise_seed: rng.next_u64(),
        }
    }

    /// The configuration this crossbar was programmed with.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Programmed positive-column conductances.
    pub fn g_pos(&self) -> &Matrix {
        &self.g_pos
    }

    /// Programmed negative-column conductances.
    pub fn g_neg(&self) -> &Matrix {
        &self.g_neg
    }

    /// Applies conductance relaxation to every device over `decades`
    /// decades of elapsed time (Sec. IV non-ideality).
    pub fn relax(&mut self, decades: f64, rng: &mut Rng64) {
        let dev = self.config.device.clone();
        self.g_pos.map_inplace(|g| dev.relax(g, decades, rng));
        self.g_neg.map_inplace(|g| dev.relax(g, decades, rng));
    }

    /// Quantizes an input vector to the DAC grid over `[-1, 1]`.
    fn quantize_input(&self, x: &[f64]) -> Vec<f64> {
        let levels = ((1u32 << self.config.dac_bits) - 1) as f64;
        x.iter()
            .map(|&v| {
                let t = ((v + 1.0) / 2.0).clamp(0.0, 1.0);
                ((t * levels).round() / levels) * 2.0 - 1.0
            })
            .collect()
    }

    /// Computes a matrix-vector product `y = W^T x` through the crossbar.
    ///
    /// Inputs are interpreted in `[-1, 1]` (scaled to read voltages),
    /// outputs are returned in weight units (descaled from currents).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mvm(&self, x: &[f64], fidelity: Fidelity) -> Vec<f64> {
        assert_eq!(x.len(), self.config.rows, "input length mismatch");
        match fidelity {
            Fidelity::Ideal => {
                let ip = self.g_pos_target.vecmat(x);
                let ineg = self.g_neg_target.vecmat(x);
                ip.iter()
                    .zip(&ineg)
                    .map(|(p, n)| (p - n) / self.g_scale)
                    .collect()
            }
            Fidelity::Fast => self.mvm_nonideal(x, false),
            Fidelity::Full => self.mvm_nonideal(x, true),
        }
    }

    fn mvm_nonideal(&self, x: &[f64], full_solve: bool) -> Vec<f64> {
        let xq = self.quantize_input(x);
        let v: Vec<f64> = xq.iter().map(|&u| u * self.config.v_read).collect();

        let (ip, ineg) = if full_solve {
            (
                self.solve_currents(&self.g_pos, &v),
                self.solve_currents(&self.g_neg, &v),
            )
        } else {
            (
                self.fast_currents(&self.g_pos, &v),
                self.fast_currents(&self.g_neg, &v),
            )
        };

        // Deterministic per-call read noise derived from the data.
        let mut nrng = Rng64::new(self.noise_seed ^ hash_inputs(&xq));
        let full_scale = self.full_scale_current();
        let levels = if self.config.adc_bits == 0 {
            0.0
        } else {
            ((1u64 << self.config.adc_bits) - 1) as f64
        };
        ip.iter()
            .zip(&ineg)
            .map(|(p, n)| {
                let mut i = p - n;
                i += nrng.normal(0.0, self.config.read_noise * full_scale);
                if levels > 0.0 {
                    let t = ((i / full_scale) + 1.0) / 2.0;
                    i = ((t.clamp(0.0, 1.0) * levels).round() / levels) * 2.0 * full_scale
                        - full_scale;
                }
                i / (self.config.v_read * self.g_scale)
            })
            .collect()
    }

    /// Worst-case single-ended column current, used as converter full
    /// scale.
    fn full_scale_current(&self) -> f64 {
        self.config.rows as f64 * self.config.device.g_max * self.config.v_read * 0.5
    }

    /// Signed-voltage ideal currents on programmed conductances (fast
    /// path) with a per-column IR-drop attenuation.
    fn fast_currents(&self, g: &Matrix, v: &[f64]) -> Vec<f64> {
        let raw = g.vecmat(v);
        // Closed-form attenuation: a column at index j sees accumulated
        // wire resistance ~ r_wire * (rows/2 + j), loaded by its total
        // conductance.
        let rows = self.config.rows as f64;
        raw.iter()
            .enumerate()
            .map(|(j, &i)| {
                let g_col: f64 = g.col(j).iter().sum();
                let r_path = self.config.r_wire * (rows / 2.0 + j as f64) / 2.0;
                i / (1.0 + g_col * r_path)
            })
            .collect()
    }

    /// Full nodal solve. Splits signed inputs into positive and negative
    /// phases (hardware applies them in two cycles).
    fn solve_currents(&self, g: &Matrix, v: &[f64]) -> Vec<f64> {
        let g_wire = 1.0 / self.config.r_wire.max(1e-3);
        let solver = GridSolver::new(self.config.rows, self.config.cols, g_wire, 1e-1, 1e-1);
        let vpos: Vec<f64> = v.iter().map(|&u| u.max(0.0)).collect();
        let vneg: Vec<f64> = v.iter().map(|&u| (-u).max(0.0)).collect();
        let sp = solver.solve(g, &vpos);
        let sn = solver.solve(g, &vneg);
        sp.col_currents
            .iter()
            .zip(&sn.col_currents)
            .map(|(a, b)| a - b)
            .collect()
    }

    /// Root-mean-square error of this crossbar's MVM against the exact
    /// product, for `trials` random inputs — a quick fidelity probe.
    pub fn mvm_rmse(&self, fidelity: Fidelity, trials: usize, rng: &mut Rng64) -> f64 {
        let mut se = 0.0;
        let mut n = 0;
        for _ in 0..trials {
            let x: Vec<f64> = (0..self.config.rows)
                .map(|_| rng.uniform_in(-1.0, 1.0))
                .collect();
            let ideal = self.mvm(&x, Fidelity::Ideal);
            let got = self.mvm(&x, fidelity);
            for (a, b) in ideal.iter().zip(&got) {
                se += (a - b) * (a - b);
                n += 1;
            }
        }
        (se / n as f64).sqrt()
    }
}

fn hash_inputs(x: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in x {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CrossbarConfig {
        CrossbarConfig {
            rows: 16,
            cols: 8,
            ..CrossbarConfig::default()
        }
    }

    fn weights(rng: &mut Rng64, cfg: &CrossbarConfig) -> Matrix {
        Matrix::random_normal(cfg.rows, cfg.cols, 0.0, 0.5, rng)
    }

    #[test]
    fn ideal_mvm_matches_linear_algebra() {
        let mut rng = Rng64::new(1);
        let cfg = small_config();
        let w = weights(&mut rng, &cfg);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x: Vec<f64> = rng.normal_vec(cfg.rows, 0.0, 0.3);
        let y = xbar.mvm(&x, Fidelity::Ideal);
        let expect = w.transpose().matvec(&x);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fast_mvm_tracks_ideal_within_tolerance() {
        let mut rng = Rng64::new(2);
        let cfg = small_config();
        let w = weights(&mut rng, &cfg);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let rmse = xbar.mvm_rmse(Fidelity::Fast, 20, &mut rng);
        // Non-ideal but usable: errors well under the weight scale.
        assert!(rmse < 0.25, "rmse {rmse}");
        assert!(rmse > 0.0);
    }

    #[test]
    fn full_solve_close_to_fast_for_small_arrays() {
        let mut rng = Rng64::new(3);
        let cfg = small_config();
        let w = weights(&mut rng, &cfg);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x: Vec<f64> = rng.normal_vec(cfg.rows, 0.0, 0.3);
        let fast = xbar.mvm(&x, Fidelity::Fast);
        let full = xbar.mvm(&x, Fidelity::Full);
        for (a, b) in fast.iter().zip(&full) {
            assert!((a - b).abs() < 0.3, "{a} vs {b}");
        }
    }

    #[test]
    fn more_wire_resistance_more_error() {
        let mut rng = Rng64::new(4);
        let mut cfg = CrossbarConfig {
            rows: 64,
            cols: 64,
            read_noise: 0.0,
            adc_bits: 0,
            dac_bits: 8,
            ..CrossbarConfig::default()
        };
        let w = weights(&mut rng, &cfg);
        cfg.r_wire = 0.2;
        let clean = Crossbar::program(&cfg, &w, &mut Rng64::new(10));
        cfg.r_wire = 20.0;
        let lossy = Crossbar::program(&cfg, &w, &mut Rng64::new(10));
        let e_clean = clean.mvm_rmse(Fidelity::Fast, 10, &mut Rng64::new(20));
        let e_lossy = lossy.mvm_rmse(Fidelity::Fast, 10, &mut Rng64::new(20));
        assert!(e_lossy > e_clean, "{e_lossy} vs {e_clean}");
    }

    #[test]
    fn stuck_devices_increase_error() {
        let mut rng = Rng64::new(5);
        let cfg_ok = CrossbarConfig {
            read_noise: 0.0,
            ..small_config()
        };
        let cfg_bad = CrossbarConfig {
            stuck_off_rate: 0.2,
            ..cfg_ok.clone()
        };
        let w = weights(&mut rng, &cfg_ok);
        let ok = Crossbar::program(&cfg_ok, &w, &mut Rng64::new(11));
        let bad = Crossbar::program(&cfg_bad, &w, &mut Rng64::new(11));
        let e_ok = ok.mvm_rmse(Fidelity::Fast, 20, &mut Rng64::new(21));
        let e_bad = bad.mvm_rmse(Fidelity::Fast, 20, &mut Rng64::new(21));
        assert!(e_bad > e_ok);
    }

    #[test]
    fn coarse_adc_increases_error() {
        let mut rng = Rng64::new(6);
        let base = CrossbarConfig {
            read_noise: 0.0,
            ..small_config()
        };
        let w = weights(&mut rng, &base);
        let fine = Crossbar::program(
            &CrossbarConfig {
                adc_bits: 10,
                ..base.clone()
            },
            &w,
            &mut Rng64::new(12),
        );
        let coarse = Crossbar::program(
            &CrossbarConfig {
                adc_bits: 2,
                ..base.clone()
            },
            &w,
            &mut Rng64::new(12),
        );
        let e_fine = fine.mvm_rmse(Fidelity::Fast, 20, &mut Rng64::new(22));
        let e_coarse = coarse.mvm_rmse(Fidelity::Fast, 20, &mut Rng64::new(22));
        assert!(e_coarse > e_fine, "{e_coarse} vs {e_fine}");
    }

    #[test]
    fn relaxation_perturbs_conductances() {
        let mut rng = Rng64::new(7);
        let cfg = small_config();
        let w = weights(&mut rng, &cfg);
        let mut xbar = Crossbar::program(&cfg, &w, &mut rng);
        let before = xbar.g_pos().clone();
        xbar.relax(3.0, &mut rng);
        let after = xbar.g_pos();
        let mut changed = 0;
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            if (a - b).abs() > 1e-9 {
                changed += 1;
            }
        }
        assert!(changed > before.as_slice().len() / 2);
    }

    #[test]
    fn noise_is_deterministic_per_input() {
        let mut rng = Rng64::new(8);
        let cfg = small_config();
        let w = weights(&mut rng, &cfg);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x: Vec<f64> = rng.normal_vec(cfg.rows, 0.0, 0.3);
        assert_eq!(xbar.mvm(&x, Fidelity::Fast), xbar.mvm(&x, Fidelity::Fast));
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let mut rng = Rng64::new(9);
        let cfg = small_config();
        let w = weights(&mut rng, &cfg);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        xbar.mvm(&[0.0; 3], Fidelity::Ideal);
    }
}
