//! NeuroSim-style macro model: per-operation latency, energy, and area of
//! a crossbar MVM core including its data converters.

use crate::CrossbarConfig;
use xlda_circuit::adc::{RowDac, SarAdc};
use xlda_circuit::tech::TechNode;
use xlda_circuit::wire::Wire;
use xlda_num::memo::quantize;
use xlda_num::memo_cache;

/// Memoized figure-of-merit bundle of one macro geometry. Design-space
/// sweeps rebuild the same macro for every candidate sharing a
/// (geometry, device, node) triple, so the derived costs are cached
/// process-wide.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MacroFoms {
    mvm: MvmCost,
    area_m2: f64,
}

memo_cache!(
    static MACRO_FOMS: ((usize, usize, usize), (u8, u8), u64, u64, u64) => MacroFoms,
    "crossbar.macro"
);

/// A crossbar macro configuration the model cannot evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossbarError {
    /// `adc_share` of zero: no column could ever be converted.
    ZeroAdcShare,
    /// Zero ADC bits: the macro model needs an output converter to
    /// price the read path.
    NoOutputAdc,
    /// An empty array (zero rows or columns) has no MVM to model.
    EmptyArray,
}

impl std::fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossbarError::ZeroAdcShare => write!(f, "adc_share must be positive"),
            CrossbarError::NoOutputAdc => write!(f, "macro model requires an output ADC"),
            CrossbarError::EmptyArray => write!(f, "crossbar has zero rows or columns"),
        }
    }
}

impl std::error::Error for CrossbarError {}

/// Figure-of-merit model of one crossbar compute core.
#[derive(Debug, Clone)]
pub struct CrossbarMacro {
    config: CrossbarConfig,
    tech: TechNode,
    dac: RowDac,
    adc: SarAdc,
    /// Columns sharing one ADC through a mux (1 = ADC per column).
    pub adc_share: usize,
}

/// Per-MVM figures of merit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvmCost {
    /// Latency of one full matrix-vector product (s).
    pub latency_s: f64,
    /// Energy of one full matrix-vector product (J).
    pub energy_j: f64,
}

impl CrossbarMacro {
    /// Builds the macro model at a process node.
    ///
    /// # Panics
    ///
    /// Panics if `adc_share` is zero or ADC bits are zero (macro model
    /// needs converters); guarded call sites should use
    /// [`CrossbarMacro::try_new`].
    pub fn new(config: &CrossbarConfig, tech: &TechNode, adc_share: usize) -> Self {
        match Self::try_new(config, tech, adc_share) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CrossbarMacro::new`].
    ///
    /// # Errors
    ///
    /// [`CrossbarError`] naming the first configuration defect (zero ADC
    /// share, missing output ADC, or an empty array).
    pub fn try_new(
        config: &CrossbarConfig,
        tech: &TechNode,
        adc_share: usize,
    ) -> Result<Self, CrossbarError> {
        if adc_share == 0 {
            return Err(CrossbarError::ZeroAdcShare);
        }
        if config.adc_bits == 0 {
            return Err(CrossbarError::NoOutputAdc);
        }
        if config.rows == 0 || config.cols == 0 {
            return Err(CrossbarError::EmptyArray);
        }
        Ok(Self {
            config: config.clone(),
            tech: tech.clone(),
            dac: RowDac::new(config.dac_bits, tech),
            adc: SarAdc::new(config.adc_bits, tech),
            adc_share,
        })
    }

    fn row_line(&self) -> Wire {
        // Crosspoint pitch ~ 2F for a 4F² resistive cell.
        let pitch = 2.0 * self.tech.feature_m();
        Wire::new(self.config.cols as f64 * pitch, &self.tech)
    }

    fn col_line(&self) -> Wire {
        let pitch = 2.0 * self.tech.feature_m();
        Wire::new(self.config.rows as f64 * pitch, &self.tech)
    }

    /// Array settling time: the RC of the worst-case column loaded by all
    /// devices at maximum conductance.
    pub fn settle_time(&self) -> f64 {
        let wire = self.col_line();
        let g_total = self.config.rows as f64 * self.config.device.g_max;
        let c_line = wire.capacitance() + self.config.rows as f64 * 0.1e-15;
        // Conservative: 3 time constants of R_eq * C.
        3.0 * c_line / g_total.max(1e-9) + wire.elmore_delay()
    }

    /// The memoized FOM bundle for this macro geometry. Read noise and
    /// stuck-device rate are deliberately absent from the key: they
    /// shape MVM *fidelity*, not the latency/energy/area model.
    fn foms(&self) -> MacroFoms {
        MACRO_FOMS.get_or_insert_with(
            (
                (self.config.rows, self.config.cols, self.adc_share),
                (self.config.dac_bits, self.config.adc_bits),
                self.config.device.memo_key(),
                quantize(self.config.v_read),
                self.tech.memo_key(),
            ),
            || MacroFoms {
                mvm: self.compute_mvm_cost(),
                area_m2: self.compute_area_m2(),
            },
        )
    }

    /// Cost of one full `rows x cols` analog MVM.
    pub fn mvm_cost(&self) -> MvmCost {
        self.foms().mvm
    }

    fn compute_mvm_cost(&self) -> MvmCost {
        let conversions = self.config.cols.div_ceil(self.adc_share);
        let latency =
            self.dac.latency() + self.settle_time() + self.adc.latency() * self.adc_share as f64;
        // Array static burn during evaluation: average half-on devices.
        let g_avg = 0.5 * (self.config.device.g_max + self.config.device.g_min);
        let i_array =
            self.config.rows as f64 * self.config.cols as f64 * g_avg * self.config.v_read * 0.5;
        let t_eval = self.dac.latency() + self.settle_time();
        let e_array = i_array * self.config.v_read * t_eval;
        let e_dac = self.config.rows as f64 * self.dac.energy(self.row_line().capacitance());
        let e_adc = conversions as f64 * self.adc.energy() * self.adc_share as f64;
        MvmCost {
            latency_s: latency,
            energy_j: e_array + e_dac + e_adc,
        }
    }

    /// Area of the core (m²): array plus converters and muxes.
    pub fn area_m2(&self) -> f64 {
        self.foms().area_m2
    }

    fn compute_area_m2(&self) -> f64 {
        let f2 = self.tech.f2_area_m2();
        let cell = self.config.device.cell_area_f2();
        let array = (self.config.rows * self.config.cols) as f64 * cell * f2;
        let dacs = self.config.rows as f64 * self.dac.area();
        let adcs = (self.config.cols.div_ceil(self.adc_share)) as f64 * self.adc.area();
        let mux = self.config.cols as f64 * 10.0 * f2;
        (array + dacs + adcs + mux) * 1.2
    }

    /// Energy to program the full array once (J).
    pub fn program_energy(&self) -> f64 {
        (self.config.rows * self.config.cols) as f64 * 2.0 * self.config.device.write_energy()
    }

    /// Time to program the full array row-by-row (s).
    pub fn program_time(&self) -> f64 {
        self.config.rows as f64 * self.config.device.write_latency() * 2.0
    }
}

// Pull the trait into scope for device FOM access inside this module.
use xlda_device::MemoryDevice;

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rows: usize, cols: usize, share: usize) -> CrossbarMacro {
        let cfg = CrossbarConfig {
            rows,
            cols,
            ..CrossbarConfig::default()
        };
        CrossbarMacro::new(&cfg, &TechNode::n40(), share)
    }

    #[test]
    fn mvm_cost_positive_and_scales() {
        let small = mk(64, 64, 8).mvm_cost();
        let big = mk(256, 256, 8).mvm_cost();
        assert!(small.latency_s > 0.0 && small.energy_j > 0.0);
        assert!(big.energy_j > small.energy_j);
    }

    #[test]
    fn adc_sharing_trades_latency_for_area() {
        let dedicated = mk(64, 64, 1);
        let shared = mk(64, 64, 16);
        assert!(shared.mvm_cost().latency_s > dedicated.mvm_cost().latency_s);
        assert!(shared.area_m2() < dedicated.area_m2());
    }

    #[test]
    fn amortized_mvm_beats_digital_energy_scale() {
        // The analog core should compute a 64x64 MVM for far less energy
        // than 4096 digital MACs at ~1 pJ each would cost with off-chip
        // weight fetches (the paper's EIE-style motivation).
        let cost = mk(64, 64, 8).mvm_cost();
        let digital_with_dram = 4096.0 * 2e-12;
        assert!(cost.energy_j < digital_with_dram, "{}", cost.energy_j);
    }

    #[test]
    fn program_cost_scales_with_cells() {
        let a = mk(64, 64, 8);
        let b = mk(128, 128, 8);
        assert!(b.program_energy() > 3.9 * a.program_energy());
        assert!(b.program_time() > a.program_time());
    }

    #[test]
    #[should_panic(expected = "adc_share")]
    fn zero_share_panics() {
        mk(64, 64, 0);
    }

    #[test]
    fn try_new_reports_configuration_defects() {
        let tech = TechNode::n40();
        let cfg = CrossbarConfig::default();
        assert_eq!(
            CrossbarMacro::try_new(&cfg, &tech, 0).err(),
            Some(CrossbarError::ZeroAdcShare)
        );
        let no_adc = CrossbarConfig {
            adc_bits: 0,
            ..cfg.clone()
        };
        assert_eq!(
            CrossbarMacro::try_new(&no_adc, &tech, 8).err(),
            Some(CrossbarError::NoOutputAdc)
        );
        let empty = CrossbarConfig { rows: 0, ..cfg };
        assert_eq!(
            CrossbarMacro::try_new(&empty, &tech, 8).err(),
            Some(CrossbarError::EmptyArray)
        );
    }
}
