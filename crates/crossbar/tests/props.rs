//! Property-based tests for the crossbar simulator.

use proptest::prelude::*;
use xlda_crossbar::stochastic::{ternary_hamming, StochasticProjection};
use xlda_crossbar::{Crossbar, CrossbarConfig, Fidelity};
use xlda_device::rram::Rram;
use xlda_num::matrix::Matrix;
use xlda_num::rng::Rng64;

fn arb_shape() -> impl Strategy<Value = (usize, usize)> {
    (2usize..32, 2usize..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ideal_mvm_equals_linear_algebra((rows, cols) in arb_shape(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let cfg = CrossbarConfig { rows, cols, ..CrossbarConfig::default() };
        let w = Matrix::random_normal(rows, cols, 0.0, 0.5, &mut rng);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x = rng.normal_vec(rows, 0.0, 0.5);
        let y = xbar.mvm(&x, Fidelity::Ideal);
        let expect = w.transpose().matvec(&x);
        for (a, b) in y.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn nonideal_mvm_is_finite_and_bounded((rows, cols) in arb_shape(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let cfg = CrossbarConfig { rows, cols, ..CrossbarConfig::default() };
        let w = Matrix::random_normal(rows, cols, 0.0, 0.5, &mut rng);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x = rng.normal_vec(rows, 0.0, 0.5);
        for fid in [Fidelity::Fast, Fidelity::Full] {
            let y = xbar.mvm(&x, fid);
            prop_assert_eq!(y.len(), cols);
            for v in y {
                prop_assert!(v.is_finite());
                // IR drop and quantization attenuate — results stay within
                // a loose physical envelope of the weight scale.
                prop_assert!(v.abs() < 1e4);
            }
        }
    }

    #[test]
    fn programmed_conductances_in_device_window((rows, cols) in arb_shape(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let cfg = CrossbarConfig { rows, cols, ..CrossbarConfig::default() };
        let dev = Rram::taox();
        let w = Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        for &g in xbar.g_pos().as_slice().iter().chain(xbar.g_neg().as_slice()) {
            prop_assert!((dev.g_min..=dev.g_max).contains(&g));
        }
    }

    #[test]
    fn mvm_is_deterministic((rows, cols) in arb_shape(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let cfg = CrossbarConfig { rows, cols, ..CrossbarConfig::default() };
        let w = Matrix::random_normal(rows, cols, 0.0, 0.5, &mut rng);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x = rng.normal_vec(rows, 0.0, 0.5);
        prop_assert_eq!(xbar.mvm(&x, Fidelity::Fast), xbar.mvm(&x, Fidelity::Fast));
    }

    #[test]
    fn hash_entries_are_ternary(dim in 2usize..64, bits in 1usize..32, seed in any::<u64>()) {
        let dev = Rram::taox();
        let mut rng = Rng64::new(seed);
        let proj = StochasticProjection::new(dim, bits, &dev, &mut rng);
        let x: Vec<f64> = (0..dim).map(|_| rng.uniform()).collect();
        let h = proj.hash(&x);
        prop_assert_eq!(h.len(), bits);
        prop_assert!(h.iter().all(|&b| b == 1 || b == -1));
        let t = proj.ternary_hash(&x, 1e-6);
        prop_assert!(t.iter().all(|&b| (-1..=1).contains(&b)));
    }

    #[test]
    fn ternary_hamming_bounds_and_symmetry(
        a in prop::collection::vec(-1i8..=1, 1..64),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let b: Vec<i8> = a.iter().map(|_| (rng.index(3) as i8) - 1).collect();
        let d = ternary_hamming(&a, &b);
        prop_assert!(d <= a.len());
        prop_assert_eq!(d, ternary_hamming(&b, &a));
        prop_assert_eq!(ternary_hamming(&a, &a), 0);
    }

    #[test]
    fn raising_threshold_never_increases_definite_bits(
        dim in 4usize..48,
        bits in 2usize..24,
        seed in any::<u64>(),
    ) {
        let dev = Rram::taox();
        let mut rng = Rng64::new(seed);
        let proj = StochasticProjection::new(dim, bits, &dev, &mut rng);
        let x: Vec<f64> = (0..dim).map(|_| rng.uniform()).collect();
        let thr = proj.calibrate_threshold(std::slice::from_ref(&x), 0.3);
        let lo = proj.ternary_hash(&x, thr);
        let hi = proj.ternary_hash(&x, thr * 2.0);
        let definite = |s: &[i8]| s.iter().filter(|&&b| b != 0).count();
        prop_assert!(definite(&hi) <= definite(&lo));
    }
}
