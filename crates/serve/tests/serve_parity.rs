//! End-to-end parity: the service must return *bit-identical* FOMs to
//! direct `Scenario::candidates` library calls — cold caches, warm
//! caches, interleaved kinds, and a saturated queue included.
//!
//! Runs the real binary in `--stdio` mode (one process per test, piped
//! line protocol), which exercises the same queue → batcher → pool →
//! drain pipeline as the TCP transport.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use xlda_circuit::tech::TechNode;
use xlda_core::evaluate::{HdcScenario, MannScenario, Scenario};
use xlda_core::triage::{rank, Objective};
use xlda_serve::json::Json;

/// A running `xlda-serve --stdio` child with a response-reader thread.
struct ServerProc {
    child: Child,
    stdin: ChildStdin,
    responses: mpsc::Receiver<Json>,
}

impl ServerProc {
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xlda-serve"))
            .arg("--stdio")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn xlda-serve");
        let stdin = child.stdin.take().expect("child stdin");
        let stdout = child.stdout.take().expect("child stdout");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let v = Json::parse(&line).expect("server emitted well-formed JSON");
                if tx.send(v).is_err() {
                    break;
                }
            }
        });
        Self {
            child,
            stdin,
            responses: rx,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
    }

    fn recv(&self) -> Json {
        self.responses
            .recv_timeout(Duration::from_secs(60))
            .expect("response before timeout")
    }

    /// Receives `n` responses, keyed by id; every id must be distinct.
    fn recv_n(&self, n: usize) -> HashMap<String, Json> {
        let mut out = HashMap::new();
        for _ in 0..n {
            let v = self.recv();
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .expect("response has id")
                .to_string();
            assert!(out.insert(id.clone(), v).is_none(), "duplicate id {id}");
        }
        out
    }

    fn shutdown(mut self) {
        let _ = writeln!(self.stdin, r#"{{"id":"__bye","kind":"shutdown"}}"#);
        let _ = self.stdin.flush();
        let status = self.child.wait().expect("child exit");
        assert!(status.success(), "server exited with {status}");
    }
}

/// Asserts a response's candidate array is bit-identical to the
/// library evaluation of `scenario`.
fn assert_parity(resp: &Json, scenario: &dyn Scenario) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "failed response: {resp}"
    );
    let want = scenario.candidates().expect("library evaluation succeeds");
    let got = resp
        .get("candidates")
        .and_then(Json::as_arr)
        .expect("candidates array");
    assert_eq!(got.len(), want.len(), "candidate count");
    for (g, c) in got.iter().zip(&want) {
        assert_eq!(g.get("name").and_then(Json::as_str), Some(c.name.as_str()));
        for (field, expect) in [
            ("latency_s", c.fom.latency_s),
            ("energy_j", c.fom.energy_j),
            ("area_mm2", c.fom.area_mm2),
            ("accuracy", c.fom.accuracy),
        ] {
            let val = g
                .get(field)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{}: missing {field}", c.name));
            assert_eq!(
                val.to_bits(),
                expect.to_bits(),
                "{}.{field}: served {val:e} != library {expect:e}",
                c.name
            );
        }
    }
}

#[test]
fn interleaved_kinds_match_library_bit_exactly_cold_and_warm() {
    let mut server = ServerProc::spawn(&[]);

    // A mixed stream: default + perturbed scenarios of every kind,
    // submitted twice (pass 0 = cold caches, pass 1 = warm caches).
    let hdc_alt = HdcScenario {
        classes: 12,
        acc_sw: 0.93,
        tech: TechNode::n22(),
        ..HdcScenario::default()
    };
    let mann_alt = MannScenario {
        hash_bits: 96,
        entries: 500,
        ..MannScenario::default()
    };
    for pass in 0..2 {
        server.send(&format!(r#"{{"id":"hdc-{pass}","kind":"hdc"}}"#));
        server.send(&format!(
            r#"{{"id":"hdcx-{pass}","kind":"hdc","scenario":{{"classes":12,"acc_sw":0.93,"tech":"n22"}}}}"#
        ));
        server.send(&format!(r#"{{"id":"mann-{pass}","kind":"mann"}}"#));
        server.send(&format!(
            r#"{{"id":"mannx-{pass}","kind":"mann","scenario":{{"hash_bits":96,"entries":500}}}}"#
        ));
        server.send(&format!(r#"{{"id":"edge-{pass}","kind":"edge"}}"#));
        server.send(&format!(
            r#"{{"id":"tpu-{pass}","kind":"tpu_nvm","batch":100}}"#
        ));
        server.send(&format!(
            r#"{{"id":"tri-{pass}","kind":"triage","objective":"latency_first","floor":0.9}}"#
        ));
        let by_id = server.recv_n(7);
        assert_parity(&by_id[&format!("hdc-{pass}")], &HdcScenario::default());
        assert_parity(&by_id[&format!("hdcx-{pass}")], &hdc_alt);
        assert_parity(&by_id[&format!("mann-{pass}")], &MannScenario::default());
        assert_parity(&by_id[&format!("mannx-{pass}")], &mann_alt);
        assert_parity(
            &by_id[&format!("edge-{pass}")],
            &xlda_core::evaluate::EdgeScenario::default(),
        );
        assert_parity(
            &by_id[&format!("tpu-{pass}")],
            &xlda_core::evaluate::TpuNvmScenario::new(HdcScenario::default(), 100),
        );

        // Triage parity: candidates AND the served ranking must match
        // the library's rank() on those candidates.
        let tri = &by_id[&format!("tri-{pass}")];
        assert_parity(tri, &HdcScenario::default());
        let want = rank(
            &HdcScenario::default().candidates().unwrap(),
            &Objective::latency_first(Some(0.9)),
        );
        let got = tri.get("ranking").and_then(Json::as_arr).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, r) in got.iter().zip(&want) {
            assert_eq!(g.get("name").and_then(Json::as_str), Some(r.name.as_str()));
            assert_eq!(
                g.get("score").and_then(Json::as_f64).unwrap().to_bits(),
                r.score.to_bits()
            );
            assert_eq!(
                g.get("meets_floor").and_then(Json::as_bool),
                Some(r.meets_floor)
            );
        }
    }

    // After the warm pass the process-wide caches must show hits.
    server.send(r#"{"id":"st","kind":"stats"}"#);
    let stats = server.recv();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let caches = stats.get("caches").and_then(Json::as_arr).unwrap();
    let hits: f64 = caches
        .iter()
        .filter_map(|c| c.get("hits").and_then(Json::as_f64))
        .sum();
    assert!(hits > 0.0, "warm pass produced no cache hits: {stats}");
    assert_eq!(stats.get("completed").and_then(Json::as_f64), Some(14.0));

    server.shutdown();
}

#[test]
fn saturated_queue_rejections_are_well_formed_and_retryable() {
    // Tiny queue + long batch window: most of a rapid burst must be
    // rejected with retry-after, and retries must eventually succeed,
    // so no request is ever silently dropped.
    let mut server = ServerProc::spawn(&["--queue-cap", "2", "--batch-window-ms", "100"]);
    let total = 12;
    let mut pending: Vec<String> = (0..total).map(|i| format!("b{i}")).collect();
    let mut done: HashMap<String, Json> = HashMap::new();
    let mut rejections = 0u32;
    let mut rounds = 0;
    while !pending.is_empty() {
        rounds += 1;
        assert!(
            rounds < 100,
            "requests not converging; {} left",
            pending.len()
        );
        for id in &pending {
            server.send(&format!(r#"{{"id":"{id}","kind":"hdc"}}"#));
        }
        let mut retry = Vec::new();
        for _ in 0..pending.len() {
            let v = server.recv();
            let id = v.get("id").and_then(Json::as_str).unwrap().to_string();
            match v.get("ok").and_then(Json::as_bool) {
                Some(true) => {
                    done.insert(id, v);
                }
                Some(false) => {
                    assert_eq!(
                        v.get("code").and_then(Json::as_str),
                        Some("queue_full"),
                        "unexpected failure: {v}"
                    );
                    let retry_ms = v
                        .get("retry_after_ms")
                        .and_then(Json::as_f64)
                        .expect("backpressure carries retry_after_ms");
                    // The hint is derived from the observed drain rate,
                    // clamped to [1 ms, 10 s]; pin the contract so a
                    // config change can't silently widen it.
                    assert!(
                        (1.0..=10_000.0).contains(&retry_ms),
                        "retry_after_ms {retry_ms} outside pinned [1, 10000] range"
                    );
                    assert_eq!(retry_ms.fract(), 0.0, "hint is whole milliseconds");
                    rejections += 1;
                    retry.push(id);
                }
                None => panic!("response without ok: {v}"),
            }
        }
        pending = retry;
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(120));
        }
    }
    assert_eq!(done.len(), total, "every request eventually served");
    assert!(rejections > 0, "cap-2 queue never rejected a 12-burst");
    for v in done.values() {
        assert_parity(v, &HdcScenario::default());
    }

    // The queue must never have grown past its cap.
    server.send(r#"{"id":"st","kind":"stats"}"#);
    let stats = server.recv();
    let depth = stats.get("queue_depth").and_then(Json::as_f64).unwrap();
    let cap = stats.get("queue_cap").and_then(Json::as_f64).unwrap();
    assert!(depth <= cap, "queue depth {depth} exceeds cap {cap}");
    assert_eq!(
        stats.get("rejected").and_then(Json::as_f64),
        Some(rejections as f64)
    );

    server.shutdown();
}

#[test]
fn concurrent_writers_interleave_without_corruption() {
    // Two threads share one server via its stdin; every line must stay
    // intact and every request must be answered exactly once.
    let mut server = ServerProc::spawn(&[]);
    let per_thread = 8;
    // Collect all request lines first, then blast them from one thread
    // while another thread drains responses concurrently.
    for i in 0..per_thread {
        server.send(&format!(r#"{{"id":"a{i}","kind":"hdc"}}"#));
        server.send(&format!(r#"{{"id":"m{i}","kind":"mann"}}"#));
        server.send(&format!(
            r#"{{"id":"t{i}","kind":"triage","objective":"energy_first"}}"#
        ));
    }
    let by_id = server.recv_n(3 * per_thread);
    for i in 0..per_thread {
        assert_parity(&by_id[&format!("a{i}")], &HdcScenario::default());
        assert_parity(&by_id[&format!("m{i}")], &MannScenario::default());
        assert_parity(&by_id[&format!("t{i}")], &HdcScenario::default());
    }
    server.shutdown();
}

#[test]
fn expired_deadline_and_bad_request_reported_not_dropped() {
    let mut server = ServerProc::spawn(&[]);
    server.send(r#"{"id":"dead","kind":"mann","deadline_ms":0}"#);
    server.send(r#"{"id":"","kind":"hdc"}"#);
    server.send(r#"{"id":"live","kind":"mann"}"#);
    let mut seen = HashMap::new();
    for _ in 0..3 {
        let v = server.recv();
        let id = v.get("id").and_then(Json::as_str).unwrap().to_string();
        seen.insert(id, v);
    }
    assert_eq!(
        seen["dead"].get("code").and_then(Json::as_str),
        Some("deadline")
    );
    assert_eq!(
        seen[""].get("code").and_then(Json::as_str),
        Some("bad_request")
    );
    assert_parity(&seen["live"], &MannScenario::default());
    server.shutdown();
}
