//! End-to-end tests for the persistent result store and the `refine`
//! request kind, against the real binary in `--stdio` mode.
//!
//! The restart test is the store's reason to exist: kill the daemon,
//! start a new process on the same `--store` file, and repeated
//! requests must come back bit-identical as pure lookups (hits, no
//! misses). Refine tests pin the known/cached/evaluated skip semantics
//! and the halving triage path.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use xlda_serve::json::Json;

/// A running `xlda-serve --stdio` child with a response-reader thread.
struct ServerProc {
    child: Child,
    stdin: ChildStdin,
    responses: mpsc::Receiver<Json>,
}

impl ServerProc {
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xlda-serve"))
            .arg("--stdio")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn xlda-serve");
        let stdin = child.stdin.take().expect("child stdin");
        let stdout = child.stdout.take().expect("child stdout");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let v = Json::parse(&line).expect("server emitted well-formed JSON");
                if tx.send(v).is_err() {
                    break;
                }
            }
        });
        Self {
            child,
            stdin,
            responses: rx,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
    }

    fn recv(&self) -> Json {
        self.responses
            .recv_timeout(Duration::from_secs(60))
            .expect("response before timeout")
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }

    fn shutdown(mut self) {
        let _ = writeln!(self.stdin, r#"{{"id":"__bye","kind":"shutdown"}}"#);
        let _ = self.stdin.flush();
        let status = self.child.wait().expect("child exit");
        assert!(status.success(), "server exited with {status}");
    }
}

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "xlda_serve_store_{}_{}.bin",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn store_block(stats: &Json) -> &Json {
    stats.get("store").expect("stats has a store block")
}

#[test]
fn store_survives_restart_and_serves_lookups() {
    let path = tmp("restart");
    let path_s = path.to_str().unwrap().to_string();
    let evals = [
        r#"{"id":"a","kind":"hdc","scenario":{"classes":11}}"#,
        r#"{"id":"b","kind":"hdc","scenario":{"classes":12,"tech":"n22"}}"#,
        r#"{"id":"c","kind":"mann_mc","scenario":{"trials":64,"seed":5,"hash_bits":16}}"#,
    ];

    let mut server = ServerProc::spawn(&["--store", &path_s]);
    let cold: Vec<Json> = evals.iter().map(|l| server.request(l)).collect();
    for v in &cold {
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    }
    let stats = server.request(r#"{"id":"s","kind":"stats"}"#);
    let store = store_block(&stats);
    assert_eq!(store.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(store.get("hits").and_then(Json::as_f64), Some(0.0));
    assert_eq!(store.get("misses").and_then(Json::as_f64), Some(3.0));
    assert_eq!(store.get("entries").and_then(Json::as_f64), Some(3.0));
    server.shutdown();

    // A fresh process on the same file answers from disk: every repeat
    // is a hit and every field is bit-identical to the cold response.
    let mut server = ServerProc::spawn(&["--store", &path_s]);
    let warm: Vec<Json> = evals.iter().map(|l| server.request(l)).collect();
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.get("candidates").unwrap().to_string(),
            w.get("candidates").unwrap().to_string(),
            "restart changed a candidate payload"
        );
        if let Some(d) = c.get("distributions") {
            assert_eq!(
                d.to_string(),
                w.get("distributions").unwrap().to_string(),
                "restart changed a distribution payload"
            );
        }
    }
    let stats = server.request(r#"{"id":"s","kind":"stats"}"#);
    let store = store_block(&stats);
    assert_eq!(store.get("hits").and_then(Json::as_f64), Some(3.0));
    assert_eq!(store.get("misses").and_then(Json::as_f64), Some(0.0));
    assert_eq!(store.get("hit_rate").and_then(Json::as_f64), Some(1.0));
    // The metrics endpoint exposes the same counters as Prometheus text.
    let metrics = server.request(r#"{"id":"m","kind":"metrics"}"#);
    let text = metrics.get("prometheus").and_then(Json::as_str).unwrap();
    assert!(text.contains("xlda_store_hits_total 3"), "{text}");
    assert!(text.contains("# TYPE xlda_store_entries gauge"));
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stats_reports_store_disabled_without_flag() {
    let mut server = ServerProc::spawn(&[]);
    let stats = server.request(r#"{"id":"s","kind":"stats"}"#);
    let store = store_block(&stats);
    assert_eq!(store.get("enabled").and_then(Json::as_bool), Some(false));
    assert!(store.get("hits").is_none());
    server.shutdown();
}

#[test]
fn refine_skips_known_digests_and_marks_cached_points() {
    let path = tmp("refine");
    let path_s = path.to_str().unwrap().to_string();
    let mut server = ServerProc::spawn(&["--store", &path_s]);

    let grid = r#""base":"hdc","grid":{"classes":[10,20,30]}"#;
    let first = server.request(&format!(r#"{{"id":"r1","kind":"refine",{grid}}}"#));
    assert_eq!(
        first.get("ok").and_then(Json::as_bool),
        Some(true),
        "{first}"
    );
    assert_eq!(first.get("kind").and_then(Json::as_str), Some("refine"));
    assert_eq!(first.get("grid").and_then(Json::as_f64), Some(3.0));
    assert_eq!(first.get("evaluated").and_then(Json::as_f64), Some(3.0));
    let points = first.get("points").and_then(Json::as_arr).unwrap();
    let digests: Vec<String> = points
        .iter()
        .map(|p| {
            assert_eq!(p.get("status").and_then(Json::as_str), Some("evaluated"));
            assert!(p.get("candidates").is_some(), "evaluated point has a body");
            p.get("digest").and_then(Json::as_str).unwrap().to_string()
        })
        .collect();

    // Same grid, two digests declared known: those come back as bare
    // acknowledgements, the third resolves from the store as a lookup.
    let second = server.request(&format!(
        r#"{{"id":"r2","kind":"refine",{grid},"known":["{}","{}"]}}"#,
        digests[0], digests[2]
    ));
    assert_eq!(second.get("known").and_then(Json::as_f64), Some(2.0));
    assert_eq!(second.get("cached").and_then(Json::as_f64), Some(1.0));
    assert_eq!(second.get("evaluated").and_then(Json::as_f64), Some(0.0));
    let points = second.get("points").and_then(Json::as_arr).unwrap();
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.get("digest").and_then(Json::as_str).unwrap(), digests[i]);
        if i == 1 {
            assert_eq!(p.get("status").and_then(Json::as_str), Some("cached"));
            assert!(p.get("candidates").is_some());
        } else {
            assert_eq!(p.get("status").and_then(Json::as_str), Some("known"));
            assert!(p.get("candidates").is_none(), "known points send no body");
        }
    }
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn refine_halving_triages_and_ranks() {
    let path = tmp("halving");
    let path_s = path.to_str().unwrap().to_string();
    let mut server = ServerProc::spawn(&["--store", &path_s]);
    let req = concat!(
        r#"{"id":"h","kind":"refine","base":"mann","#,
        r#""grid":{"hash_bits":[16,32,64,128,256,512,1024,2048]},"#,
        r#""mode":"halving","fraction":0.25,"objective":"latency_first"}"#
    );
    let v = server.request(req);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    let grid = v.get("grid").and_then(Json::as_f64).unwrap();
    let evaluated = v.get("evaluated").and_then(Json::as_f64).unwrap();
    assert_eq!(grid, 8.0);
    assert!(
        evaluated < grid,
        "halving must prune: evaluated {evaluated} of {grid}"
    );
    let points = v.get("points").and_then(Json::as_arr).unwrap();
    let pruned = points
        .iter()
        .filter(|p| p.get("status").and_then(Json::as_str) == Some("pruned"))
        .count();
    assert!(pruned > 0, "some points must be pruned");
    let ranking = v.get("ranking").and_then(Json::as_arr).unwrap();
    assert_eq!(ranking.len() as f64, evaluated);
    for r in ranking {
        assert!(r.get("digest").and_then(Json::as_str).is_some());
        assert!(r.get("score").and_then(Json::as_f64).is_some());
    }
    // A second halving pass over the warmed store is pure lookups.
    let again = server.request(&req.replace(r#""id":"h""#, r#""id":"h2""#));
    assert_eq!(again.get("evaluated").and_then(Json::as_f64), Some(0.0));
    assert_eq!(again.get("cached").and_then(Json::as_f64), Some(evaluated));
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
