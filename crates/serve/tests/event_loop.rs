//! Adversarial clients against the readiness-driven TCP transport:
//! slow writers, split and pipelined frames, oversized and malformed
//! frames, deadline expiry behind a stalled batch, abrupt disconnects,
//! and an event-vs-threaded transport A/B parity check.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xlda_serve::json::Json;
use xlda_serve::{Server, ServerConfig};

/// Binds a throwaway port and runs the given transport on its own
/// thread; the server exits when a client sends `shutdown`.
fn spawn(config: ServerConfig, threaded: bool) -> (SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = Server::new(config);
    let handle = std::thread::spawn(move || {
        let r = if threaded {
            server.run_tcp_threaded(listener)
        } else {
            server.run_tcp(listener)
        };
        r.expect("transport exits cleanly");
    });
    // The listener is bound before spawn, so clients can connect
    // immediately; the kernel queues them until the loop accepts.
    (addr, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert!(!line.is_empty(), "connection closed before response");
    Json::parse(line.trim_end()).expect("well-formed response")
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<()>) {
    let mut c = connect(addr);
    c.write_all(b"{\"id\":\"bye\",\"kind\":\"shutdown\"}\n")
        .unwrap();
    let mut reader = BufReader::new(c.try_clone().unwrap());
    let v = read_response(&mut reader);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    drop((c, reader));
    handle.join().expect("server thread");
}

#[test]
fn byte_at_a_time_client_is_served() {
    let (addr, handle) = spawn(ServerConfig::default(), false);
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());
    // Trickle the frame in one byte per write: the loop must
    // accumulate partial frames across many readiness events without
    // blocking anyone else (the stats probe below shares the server).
    for b in b"{\"id\":\"slow\",\"kind\":\"hdc\"}\n" {
        c.write_all(&[*b]).unwrap();
        c.flush().unwrap();
    }
    let v = read_response(&mut reader);
    assert_eq!(v.get("id").and_then(Json::as_str), Some("slow"));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert!(!v
        .get("candidates")
        .and_then(Json::as_arr)
        .unwrap()
        .is_empty());
    shutdown(addr, handle);
}

#[test]
fn pipelined_and_split_frames_all_answered() {
    let (addr, handle) = spawn(ServerConfig::default(), false);
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());
    // Three whole frames in one segment, then one frame split midway
    // through its JSON across two segments.
    c.write_all(
        b"{\"id\":\"p0\",\"kind\":\"hdc\"}\n{\"id\":\"p1\",\"kind\":\"mann\"}\n{\"id\":\"p2\",\"kind\":\"edge\"}\n{\"id\":\"p3\",\"ki",
    )
    .unwrap();
    c.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    c.write_all(b"nd\":\"hdc\"}\n").unwrap();
    c.flush().unwrap();
    let mut ids = std::collections::HashSet::new();
    for _ in 0..4 {
        let v = read_response(&mut reader);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        ids.insert(v.get("id").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(
        ids.len(),
        4,
        "all four pipelined requests answered: {ids:?}"
    );
    shutdown(addr, handle);
}

#[test]
fn oversized_frame_rejected_and_connection_closed() {
    let (addr, handle) = spawn(
        ServerConfig {
            max_frame: 256,
            ..ServerConfig::default()
        },
        false,
    );
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());
    // 4 KiB with no newline: the framing cursor can never resync, so
    // the server must reject and hang up rather than buffer forever.
    c.write_all(&[b'x'; 4096]).unwrap();
    c.flush().unwrap();
    let v = read_response(&mut reader);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("frame_too_large")
    );
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("EOF after rejection");
    assert!(rest.is_empty(), "no frames after frame_too_large: {rest:?}");
    shutdown(addr, handle);
}

#[test]
fn malformed_frame_fails_alone_connection_stays_usable() {
    let (addr, handle) = spawn(ServerConfig::default(), false);
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());
    // Invalid UTF-8, then garbage JSON, then a valid request — the
    // first two fail their own frames only.
    c.write_all(b"\xff\xfe\xfd\n").unwrap();
    c.write_all(b"not json\n").unwrap();
    c.write_all(b"{\"id\":\"after\",\"kind\":\"hdc\"}\n")
        .unwrap();
    c.flush().unwrap();
    let utf8 = read_response(&mut reader);
    assert_eq!(utf8.get("code").and_then(Json::as_str), Some("bad_request"));
    let garbage = read_response(&mut reader);
    assert_eq!(
        garbage.get("code").and_then(Json::as_str),
        Some("bad_request")
    );
    let ok = read_response(&mut reader);
    assert_eq!(ok.get("id").and_then(Json::as_str), Some("after"));
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    shutdown(addr, handle);
}

#[test]
fn deadline_expires_behind_a_stalled_batch() {
    // One worker with a 150 ms pre-drain stall (the saturation knob):
    // both requests sit queued long enough for the zero-deadline one
    // to expire, while its neighbour completes normally.
    let (addr, handle) = spawn(
        ServerConfig {
            threads: 1,
            batch_window: Duration::from_millis(150),
            ..ServerConfig::default()
        },
        false,
    );
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());
    c.write_all(b"{\"id\":\"patient\",\"kind\":\"hdc\"}\n{\"id\":\"expired\",\"kind\":\"hdc\",\"deadline_ms\":0}\n")
        .unwrap();
    c.flush().unwrap();
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..2 {
        let v = read_response(&mut reader);
        by_id.insert(v.get("id").and_then(Json::as_str).unwrap().to_string(), v);
    }
    assert_eq!(
        by_id["patient"].get("ok").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        by_id["expired"].get("code").and_then(Json::as_str),
        Some("deadline")
    );
    shutdown(addr, handle);
}

#[test]
fn abrupt_disconnect_releases_the_connection_slot() {
    let (addr, handle) = spawn(ServerConfig::default(), false);
    // A client that submits work and vanishes without reading: the
    // response must be discarded and the slot reclaimed, not leaked.
    for _ in 0..3 {
        let mut c = connect(addr);
        c.write_all(b"{\"id\":\"gone\",\"kind\":\"hdc\"}\n")
            .unwrap();
        c.flush().unwrap();
        drop(c);
    }
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut open = f64::NAN;
    let mut probe = 0;
    while Instant::now() < deadline {
        probe += 1;
        c.write_all(format!("{{\"id\":\"s{probe}\",\"kind\":\"stats\"}}\n").as_bytes())
            .unwrap();
        c.flush().unwrap();
        let v = read_response(&mut reader);
        open = v.get("open_connections").and_then(Json::as_f64).unwrap();
        // Only this stats connection may remain open.
        if open == 1.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(open, 1.0, "vanished clients must not leak slots");
    shutdown(addr, handle);
}

#[test]
fn event_and_threaded_transports_answer_bit_exactly_alike() {
    let requests: Vec<String> = [
        r#"{"id":"r0","kind":"hdc"}"#,
        r#"{"id":"r1","kind":"mann"}"#,
        r#"{"id":"r2","kind":"edge"}"#,
        r#"{"id":"r3","kind":"tpu_nvm"}"#,
        r#"{"id":"r4","kind":"hdc","scenario":{"dimension":4096}}"#,
        r#"{"id":"r5","kind":"triage","objective":{"top_k":3}}"#,
        r#"{"id":"r6","kind":"nope"}"#,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let collect = |threaded: bool| -> std::collections::BTreeMap<String, String> {
        let (addr, handle) = spawn(ServerConfig::default(), threaded);
        let mut c = connect(addr);
        let mut reader = BufReader::new(c.try_clone().unwrap());
        for r in &requests {
            c.write_all(r.as_bytes()).unwrap();
            c.write_all(b"\n").unwrap();
        }
        c.flush().unwrap();
        let mut by_id = std::collections::BTreeMap::new();
        for _ in 0..requests.len() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let id = Json::parse(line.trim_end())
                .unwrap()
                .get("id")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            by_id.insert(id, line.trim_end().to_string());
        }
        drop((c, reader));
        shutdown(addr, handle);
        by_id
    };

    let event = collect(false);
    let threaded = collect(true);
    assert_eq!(event.len(), requests.len());
    // Byte-for-byte identical responses (bit-exact floats included):
    // the transports may differ in scheduling, never in answers.
    assert_eq!(event, threaded);
}
