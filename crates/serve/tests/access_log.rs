//! Wide-event access-log coverage against the real event loop: every
//! request — including byte-at-a-time frames, parse failures, and
//! deadline misses — lands as exactly one well-formed NDJSON line, and
//! a wedged log sink is absorbed by the drop counter rather than
//! stalling the event loop or shutdown.
#![cfg(unix)]

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xlda_serve::json::Json;
use xlda_serve::{AccessLog, Server, ServerConfig};

/// A sink that appends to a shared buffer the test inspects after the
/// server (and with it the log's writer thread) has shut down.
struct Collect(Arc<Mutex<Vec<u8>>>);

impl Write for Collect {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn spawn_with_log(config: ServerConfig, log: AccessLog) -> (SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = Server::with_parts(config, None, Some(log));
    let handle = std::thread::spawn(move || {
        server.run_tcp(listener).expect("transport exits cleanly");
    });
    (addr, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert!(!line.is_empty(), "connection closed before response");
    Json::parse(line.trim_end()).expect("well-formed response")
}

#[test]
fn every_request_becomes_one_well_formed_ndjson_line() {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let log = AccessLog::with_writer(Box::new(Collect(Arc::clone(&buf))), 1024);
    let (addr, handle) = spawn_with_log(ServerConfig::default(), log);
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());

    // 1. A byte-at-a-time frame: the log line must describe the whole
    // request, not the dribbled reads.
    for b in b"{\"id\":\"trickle\",\"kind\":\"hdc\"}\n" {
        c.write_all(&[*b]).unwrap();
        c.flush().unwrap();
    }
    let v = read_response(&mut reader);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

    // 2. A parse failure: still exactly one log line, outcome bad_request.
    c.write_all(b"this is not json\n").unwrap();
    let v = read_response(&mut reader);
    assert_eq!(v.get("code").and_then(Json::as_str), Some("bad_request"));

    // 3. A deadline miss: traced like any eval, outcome deadline.
    c.write_all(b"{\"id\":\"late\",\"kind\":\"hdc\",\"deadline_ms\":0}\n")
        .unwrap();
    let v = read_response(&mut reader);
    assert_eq!(v.get("code").and_then(Json::as_str), Some("deadline"));

    c.write_all(b"{\"id\":\"bye\",\"kind\":\"shutdown\"}\n")
        .unwrap();
    let v = read_response(&mut reader);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    drop((c, reader));
    handle.join().expect("server thread");

    // The server (and the AccessLog inside it) has dropped, so the
    // writer thread has flushed everything including the meta footer.
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad NDJSON {e:?}: {l}")))
        .collect();
    // 4 requests + 1 footer, one line each.
    assert_eq!(lines.len(), 5, "one line per request plus footer:\n{text}");

    let find = |id: &str| {
        lines
            .iter()
            .find(|l| l.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no log line for {id}:\n{text}"))
    };
    let trickle = find("trickle");
    assert_eq!(trickle.get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(trickle.get("kind").and_then(Json::as_str), Some("hdc"));
    assert!(trickle.get("stages_ns").is_some(), "wide event has stages");
    assert!(trickle.get("total_ns").and_then(Json::as_f64).unwrap() > 0.0);

    let late = find("late");
    assert_eq!(late.get("outcome").and_then(Json::as_str), Some("deadline"));
    assert_eq!(late.get("ok").and_then(Json::as_bool), Some(false));

    let bad = lines
        .iter()
        .find(|l| l.get("outcome").and_then(Json::as_str) == Some("bad_request"))
        .expect("parse failure logged");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    let footer = lines.last().unwrap();
    assert_eq!(
        footer.get("type").and_then(Json::as_str),
        Some("access_log_meta")
    );
    assert_eq!(footer.get("written").and_then(Json::as_f64), Some(4.0));
    assert_eq!(footer.get("dropped").and_then(Json::as_f64), Some(0.0));
}

#[test]
fn wedged_log_sink_is_absorbed_by_the_drop_counter_not_a_stall() {
    struct Wedged;
    impl Write for Wedged {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            std::thread::sleep(Duration::from_secs(3600));
            unreachable!("test process exits first")
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    let log = AccessLog::with_writer(Box::new(Wedged), 1);
    // Wedge the writer thread: one line, then wait past the flush
    // interval so the writer takes it and blocks inside the sink.
    log.log("{\"id\":\"wedge\"}".to_string());
    std::thread::sleep(Duration::from_millis(250));

    let (addr, handle) = spawn_with_log(ServerConfig::default(), log);
    let mut c = connect(addr);
    let mut reader = BufReader::new(c.try_clone().unwrap());

    let start = Instant::now();
    for i in 0..10 {
        c.write_all(format!("{{\"id\":\"w{i}\",\"kind\":\"hdc\"}}\n").as_bytes())
            .unwrap();
        let v = read_response(&mut reader);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "requests must not stall behind the wedged log"
    );

    // The stats response accounts for the loss explicitly.
    c.write_all(b"{\"id\":\"s\",\"kind\":\"stats\"}\n").unwrap();
    let v = read_response(&mut reader);
    let al = v.get("access_log").expect("access_log block");
    assert_eq!(al.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(
        al.get("dropped").and_then(Json::as_f64).unwrap() >= 9.0,
        "cap-1 queue behind a wedged writer must drop: {v:?}"
    );

    c.write_all(b"{\"id\":\"bye\",\"kind\":\"shutdown\"}\n")
        .unwrap();
    let v = read_response(&mut reader);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    drop((c, reader));
    let shutdown_start = Instant::now();
    handle.join().expect("server thread");
    // AccessLog::drop waits a bounded grace then abandons the wedged
    // writer; server shutdown must not hang on it.
    assert!(
        shutdown_start.elapsed() < Duration::from_secs(10),
        "shutdown must abandon the wedged writer thread"
    );
}
