//! Request/response schema for the newline-delimited JSON protocol.
//!
//! One request per line in, one response per line out, matched by the
//! client-chosen `id`. Evaluation requests dispatch through
//! [`Scenario`]: the service never matches on workload internals, so a
//! new workload only has to implement the trait to become servable.
//!
//! Request shape:
//!
//! ```json
//! {"id":"r1","kind":"hdc","scenario":{"classes":26,"tech":"n40"},"deadline_ms":500}
//! {"id":"r2","kind":"triage","objective":"energy_first","floor":0.9}
//! {"id":"r3","kind":"stats"}
//! {"id":"r4","kind":"metrics"}
//! {"id":"r5","kind":"shutdown"}
//! ```
//!
//! `scenario` fields are optional overrides on the workload's
//! `Default`; `kind` is one of `hdc | mann | edge | tpu_nvm | triage |
//! cam_yield_mc | mann_mc | nvm_mc | refine | stats | metrics | debug |
//! shutdown`. The `*_mc` kinds are Monte-Carlo scenarios: their
//! `scenario` object also accepts the population controls `trials`,
//! `seed`, `batch`, and `threads`, and their responses carry a
//! `distributions` array of summary digests next to `candidates`.
//!
//! `refine` is incremental DSE against the result store: it expands a
//! `grid` cross-product over a `base` workload, skips the digests the
//! client reports as `known`, resolves the rest through the store
//! (lookup or fresh evaluation), and optionally triages by successive
//! halving instead of exhaustively:
//!
//! ```json
//! {"id":"r6","kind":"refine","base":"hdc",
//!  "scenario":{"acc_sw":0.9},
//!  "grid":{"classes":[10,20,30],"tech":["n40","n22"]},
//!  "known":["<32-hex digest>"],
//!  "mode":"halving","fraction":0.25,
//!  "objective":"latency_first","floor":0.9}
//! ```
//!
//! See DESIGN.md §9, §12, and §13 for the full schema.

use crate::json::{obj, Json};
use std::collections::HashSet;
use xlda_circuit::tech::TechNode;
use xlda_core::evaluate::{EdgeScenario, HdcScenario, MannScenario, Scenario, TpuNvmScenario};
use xlda_core::fom::Candidate;
use xlda_core::mc::{
    CamYieldMcScenario, MannAccuracyMcScenario, McDistribution, McParams, NvmLifetimeMcScenario,
};
use xlda_core::store::Digest;
use xlda_core::triage::Objective;

/// Cross-product cap for one `refine` grid; larger explorations should
/// be split across requests (each one returns the digests needed to
/// resume exactly where it stopped).
pub const REFINE_MAX_POINTS: usize = 1024;

/// Ranking objective requested by a `triage` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TriageObjective {
    /// `Objective::latency_first`.
    LatencyFirst,
    /// `Objective::energy_first`.
    EnergyFirst,
}

/// Ranking spec carried by a `triage` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriageSpec {
    /// Which weighted objective ranks the candidates.
    pub objective: TriageObjective,
    /// Optional iso-accuracy floor.
    pub floor: Option<f64>,
}

impl TriageSpec {
    /// The core-crate objective this spec selects.
    pub fn objective(&self) -> Objective {
        match self.objective {
            TriageObjective::LatencyFirst => Objective::latency_first(self.floor),
            TriageObjective::EnergyFirst => Objective::energy_first(self.floor),
        }
    }
}

/// How a `refine` request spends its evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefineMode {
    /// Evaluate every unresolved grid point.
    Full,
    /// Successive-halving triage: evaluate a strided `fraction` of the
    /// grid first, then refine around the survivors.
    Halving {
        /// Initial evaluated fraction (stride `ceil(1/fraction)`).
        fraction: f64,
    },
}

/// One expanded grid point of a `refine` request.
pub struct RefinePoint {
    /// The point's content address ([`Scenario::store_key`]).
    pub digest: Digest,
    /// The scenario to evaluate on a miss.
    pub scenario: Box<dyn Scenario>,
}

/// A parsed `refine` request: incremental DSE over an expanded grid,
/// skipping digests the client already holds and points the store has
/// already resolved.
pub struct RefineSpec {
    /// Base workload kind the grid spans.
    pub base: String,
    /// The expanded cross-product, in axis-major order.
    pub points: Vec<RefinePoint>,
    /// Digests the client already has results for; these points are
    /// acknowledged as `"known"` without any lookup or evaluation.
    pub known: HashSet<Digest>,
    /// Full sweep or successive-halving triage.
    pub mode: RefineMode,
    /// Ranking objective for the response's `ranking` block (required
    /// meaningfully by halving mode; optional for full sweeps).
    pub triage: Option<TriageSpec>,
}

/// A parsed, admissible request.
pub enum Request {
    /// Evaluate a scenario (optionally ranking the result).
    Eval {
        /// Client-chosen correlation id, echoed in the response.
        id: String,
        /// The workload to evaluate, behind the unified trait.
        scenario: Box<dyn Scenario>,
        /// Present for `kind: "triage"`.
        triage: Option<TriageSpec>,
        /// Per-request deadline in milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Report queue/latency/cache statistics.
    Stats {
        /// Correlation id.
        id: String,
    },
    /// Report the server's counters, histograms, span aggregates, and
    /// memo caches in Prometheus text exposition format.
    Metrics {
        /// Correlation id.
        id: String,
    },
    /// Begin a graceful drain.
    Shutdown {
        /// Correlation id.
        id: String,
    },
    /// Report the flight recorder's retained slow/error request traces
    /// with their stage breakdowns.
    Debug {
        /// Correlation id.
        id: String,
    },
    /// Incremental DSE against the persistent result store.
    Refine {
        /// Correlation id.
        id: String,
        /// The expanded grid and its skip/triage controls.
        spec: RefineSpec,
        /// Per-request deadline in milliseconds from admission.
        deadline_ms: Option<u64>,
    },
}

/// Parses one request line. `Err` carries `(id-if-known, message)` so
/// the rejection can still be correlated.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let v = Json::parse(line).map_err(|e| (String::new(), format!("malformed JSON: {e}")))?;
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let fail = |msg: &str| Err((id.clone(), msg.to_string()));
    let kind = match v.get("kind").and_then(Json::as_str) {
        Some(k) => k,
        None => return fail("missing \"kind\""),
    };
    if id.is_empty() {
        return fail("missing \"id\"");
    }
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => match d.as_usize() {
            Some(ms) => Some(ms as u64),
            None => return fail("\"deadline_ms\" must be a non-negative integer"),
        },
    };
    let spec = v.get("scenario").cloned().unwrap_or(Json::Obj(Vec::new()));
    if kind == "refine" {
        let spec = parse_refine(&v, &spec).map_err(|m| (id.clone(), m))?;
        return Ok(Request::Refine {
            id,
            spec,
            deadline_ms,
        });
    }
    let scenario: Box<dyn Scenario> = match kind {
        "stats" => return Ok(Request::Stats { id }),
        "metrics" => return Ok(Request::Metrics { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "debug" => return Ok(Request::Debug { id }),
        "hdc" | "triage" => Box::new(hdc_scenario(&spec).map_err(|m| (id.clone(), m))?),
        "mann" => Box::new(mann_scenario(&spec).map_err(|m| (id.clone(), m))?),
        "cam_yield_mc" => Box::new(cam_yield_mc_scenario(&spec).map_err(|m| (id.clone(), m))?),
        "mann_mc" => Box::new(mann_mc_scenario(&spec).map_err(|m| (id.clone(), m))?),
        "nvm_mc" => Box::new(nvm_mc_scenario(&spec).map_err(|m| (id.clone(), m))?),
        "edge" => Box::new(EdgeScenario::new(
            hdc_scenario(&spec).map_err(|m| (id.clone(), m))?,
        )),
        "tpu_nvm" => {
            let batch = match v.get("batch") {
                None | Some(Json::Null) => 1,
                Some(b) => match b.as_usize() {
                    Some(n) if n > 0 => n,
                    _ => return fail("\"batch\" must be a positive integer"),
                },
            };
            Box::new(TpuNvmScenario::new(
                hdc_scenario(&spec).map_err(|m| (id.clone(), m))?,
                batch,
            ))
        }
        other => return fail(&format!("unknown kind {other:?}")),
    };
    let triage = if kind == "triage" {
        let objective = match v.get("objective").and_then(Json::as_str) {
            None | Some("latency_first") => TriageObjective::LatencyFirst,
            Some("energy_first") => TriageObjective::EnergyFirst,
            Some(o) => return fail(&format!("unknown objective {o:?}")),
        };
        let floor = match v.get("floor") {
            None | Some(Json::Null) => None,
            Some(f) => match f.as_f64() {
                Some(x) if x.is_finite() => Some(x),
                _ => return fail("\"floor\" must be a finite number"),
            },
        };
        Some(TriageSpec { objective, floor })
    } else {
        None
    };
    Ok(Request::Eval {
        id,
        scenario,
        triage,
        deadline_ms,
    })
}

fn tech_node(name: &str) -> Result<TechNode, String> {
    Ok(match name {
        "n130" => TechNode::n130(),
        "n90" => TechNode::n90(),
        "n65" => TechNode::n65(),
        "n45" => TechNode::n45(),
        "n40" => TechNode::n40(),
        "n32" => TechNode::n32(),
        "n22" => TechNode::n22(),
        other => return Err(format!("unknown tech node {other:?}")),
    })
}

/// Reads an optional usize override, erroring on wrong types.
fn usize_field(spec: &Json, key: &str, into: &mut usize) -> Result<(), String> {
    match spec.get(key) {
        None | Some(Json::Null) => Ok(()),
        Some(v) => match v.as_usize() {
            Some(n) => {
                *into = n;
                Ok(())
            }
            None => Err(format!("{key:?} must be a non-negative integer")),
        },
    }
}

/// Reads an optional f64 override, erroring on wrong types.
fn f64_field(spec: &Json, key: &str, into: &mut f64) -> Result<(), String> {
    match spec.get(key) {
        None | Some(Json::Null) => Ok(()),
        Some(v) => match v.as_f64() {
            Some(x) => {
                *into = x;
                Ok(())
            }
            None => Err(format!("{key:?} must be a number")),
        },
    }
}

/// Builds an [`HdcScenario`] from default + JSON overrides.
pub fn hdc_scenario(spec: &Json) -> Result<HdcScenario, String> {
    let mut s = HdcScenario::default();
    usize_field(spec, "dim_in", &mut s.dim_in)?;
    usize_field(spec, "classes", &mut s.classes)?;
    usize_field(spec, "hv_dim_sw", &mut s.hv_dim_sw)?;
    usize_field(spec, "hv_dim_3b", &mut s.hv_dim_3b)?;
    usize_field(spec, "hv_dim_2b", &mut s.hv_dim_2b)?;
    usize_field(spec, "hv_dim_1b", &mut s.hv_dim_1b)?;
    f64_field(spec, "acc_sw", &mut s.acc_sw)?;
    f64_field(spec, "acc_3b", &mut s.acc_3b)?;
    f64_field(spec, "acc_2b", &mut s.acc_2b)?;
    f64_field(spec, "acc_1b", &mut s.acc_1b)?;
    f64_field(spec, "acc_mlp", &mut s.acc_mlp)?;
    if let Some(t) = spec.get("tech") {
        match t.as_str() {
            Some(name) => s.tech = tech_node(name)?,
            None => return Err("\"tech\" must be a node name string".into()),
        }
    }
    Ok(s)
}

/// Builds a [`MannScenario`] from default + JSON overrides.
pub fn mann_scenario(spec: &Json) -> Result<MannScenario, String> {
    let mut s = MannScenario::default();
    usize_field(spec, "weights", &mut s.weights)?;
    usize_field(spec, "emb_dim", &mut s.emb_dim)?;
    usize_field(spec, "hash_bits", &mut s.hash_bits)?;
    usize_field(spec, "entries", &mut s.entries)?;
    f64_field(spec, "acc_software", &mut s.acc_software)?;
    f64_field(spec, "acc_rram", &mut s.acc_rram)?;
    if let Some(t) = spec.get("tech") {
        match t.as_str() {
            Some(name) => s.tech = tech_node(name)?,
            None => return Err("\"tech\" must be a node name string".into()),
        }
    }
    Ok(s)
}

/// Reads the shared Monte-Carlo population controls out of a scenario
/// spec object.
fn mc_params(spec: &Json, mc: &mut McParams) -> Result<(), String> {
    usize_field(spec, "trials", &mut mc.trials)?;
    usize_field(spec, "batch", &mut mc.batch)?;
    usize_field(spec, "threads", &mut mc.threads)?;
    match spec.get("seed") {
        None | Some(Json::Null) => {}
        Some(v) => match v.as_usize() {
            Some(n) => mc.seed = n as u64,
            None => return Err("\"seed\" must be a non-negative integer".into()),
        },
    }
    Ok(())
}

/// Builds a [`CamYieldMcScenario`] from default + JSON overrides.
pub fn cam_yield_mc_scenario(spec: &Json) -> Result<CamYieldMcScenario, String> {
    let mut s = CamYieldMcScenario::default();
    mc_params(spec, &mut s.mc)?;
    usize_field(spec, "cells", &mut s.cells)?;
    usize_field(spec, "mismatches", &mut s.mismatches)?;
    f64_field(spec, "g_on", &mut s.g_on)?;
    f64_field(spec, "g_off", &mut s.g_off)?;
    f64_field(spec, "sigma_g_on_rel", &mut s.variation.sigma_g_on_rel)?;
    f64_field(spec, "sigma_g_off_rel", &mut s.variation.sigma_g_off_rel)?;
    f64_field(spec, "target_error", &mut s.target_error)?;
    Ok(s)
}

/// Builds a [`MannAccuracyMcScenario`] from default + JSON overrides.
pub fn mann_mc_scenario(spec: &Json) -> Result<MannAccuracyMcScenario, String> {
    let mut s = MannAccuracyMcScenario::default();
    mc_params(spec, &mut s.mc)?;
    usize_field(spec, "hash_bits", &mut s.hash_bits)?;
    usize_field(spec, "entries", &mut s.entries)?;
    f64_field(spec, "acc_software", &mut s.acc_software)?;
    f64_field(spec, "relax_decades", &mut s.relax_decades)?;
    f64_field(spec, "read_noise", &mut s.read_noise)?;
    f64_field(spec, "acc_floor", &mut s.acc_floor)?;
    Ok(s)
}

/// Builds an [`NvmLifetimeMcScenario`] from default + JSON overrides.
/// Traffic is specified as `traffic_mb_s` (MB/s) to match the bench
/// workload vocabulary.
pub fn nvm_mc_scenario(spec: &Json) -> Result<NvmLifetimeMcScenario, String> {
    let mut s = NvmLifetimeMcScenario::default();
    mc_params(spec, &mut s.mc)?;
    f64_field(spec, "capacity_bytes", &mut s.capacity_bytes)?;
    let mut traffic_mb_s = s.write_bytes_per_second / 1e6;
    f64_field(spec, "traffic_mb_s", &mut traffic_mb_s)?;
    s.write_bytes_per_second = traffic_mb_s * 1e6;
    f64_field(spec, "leveling", &mut s.leveling)?;
    f64_field(spec, "leveling_sigma", &mut s.leveling_sigma)?;
    f64_field(spec, "endurance", &mut s.endurance)?;
    f64_field(
        spec,
        "endurance_sigma_decades",
        &mut s.endurance_sigma_decades,
    )?;
    f64_field(spec, "required_years", &mut s.required_years)?;
    let mut vth_bits = s.vth_bits as usize;
    usize_field(spec, "vth_bits", &mut vth_bits)?;
    if !(1..=4).contains(&vth_bits) {
        return Err("\"vth_bits\" must be between 1 and 4".into());
    }
    s.vth_bits = vth_bits as u8;
    f64_field(spec, "vth_sigma", &mut s.vth_sigma)?;
    Ok(s)
}

/// Builds a scenario of any evaluable `base` kind from one spec object
/// (defaults + overrides). Unlike the top-level request shape, wrapper
/// parameters (`batch` for `tpu_nvm`) live *inside* the spec so refine
/// grids can sweep them as axes.
pub fn build_scenario(base: &str, spec: &Json) -> Result<Box<dyn Scenario>, String> {
    Ok(match base {
        "hdc" => Box::new(hdc_scenario(spec)?),
        "mann" => Box::new(mann_scenario(spec)?),
        "edge" => Box::new(EdgeScenario::new(hdc_scenario(spec)?)),
        "tpu_nvm" => {
            let mut batch = 1usize;
            usize_field(spec, "batch", &mut batch)?;
            if batch == 0 {
                return Err("\"batch\" must be a positive integer".into());
            }
            Box::new(TpuNvmScenario::new(hdc_scenario(spec)?, batch))
        }
        "cam_yield_mc" => Box::new(cam_yield_mc_scenario(spec)?),
        "mann_mc" => Box::new(mann_mc_scenario(spec)?),
        "nvm_mc" => Box::new(nvm_mc_scenario(spec)?),
        other => return Err(format!("unknown refine base kind {other:?}")),
    })
}

/// Sets (or replaces) one key in a JSON object value.
fn obj_set(spec: &mut Json, key: &str, value: Json) {
    if let Json::Obj(pairs) = spec {
        pairs.retain(|(k, _)| k != key);
        pairs.push((key.to_string(), value));
    }
}

/// Parses the `refine`-specific fields and expands the grid
/// cross-product into digested points.
///
/// Shape:
///
/// ```json
/// {"id":"r6","kind":"refine","base":"hdc",
///  "scenario":{"acc_sw":0.9},
///  "grid":{"classes":[10,20,30],"tech":["n40","n22"]},
///  "known":["<32-hex digest>", "..."],
///  "mode":"halving","fraction":0.25,
///  "objective":"latency_first","floor":0.9}
/// ```
fn parse_refine(v: &Json, base_spec: &Json) -> Result<RefineSpec, String> {
    let base = match v.get("base").and_then(Json::as_str) {
        Some(b) => b.to_string(),
        None => return Err("refine requires a \"base\" workload kind".into()),
    };
    // Grid axes expand in the order the request lists them; a missing
    // or empty grid means one point (the base scenario itself).
    let mut axes: Vec<(String, Vec<Json>)> = Vec::new();
    match v.get("grid") {
        None | Some(Json::Null) => {}
        Some(Json::Obj(pairs)) => {
            for (key, vals) in pairs {
                let Some(vals) = vals.as_arr() else {
                    return Err(format!("grid axis {key:?} must be an array"));
                };
                if vals.is_empty() {
                    return Err(format!("grid axis {key:?} is empty"));
                }
                axes.push((key.clone(), vals.to_vec()));
            }
        }
        Some(_) => return Err("\"grid\" must be an object of axis arrays".into()),
    }
    let total: usize = axes
        .iter()
        .try_fold(1usize, |acc, (_, vals)| acc.checked_mul(vals.len()))
        .ok_or_else(|| "grid overflows".to_string())?;
    if total > REFINE_MAX_POINTS {
        return Err(format!(
            "grid expands to {total} points (cap {REFINE_MAX_POINTS}); split the request"
        ));
    }
    let mut points = Vec::with_capacity(total);
    for i in 0..total {
        let mut spec = base_spec.clone();
        let mut rest = i;
        for (key, vals) in &axes {
            obj_set(&mut spec, key, vals[rest % vals.len()].clone());
            rest /= vals.len();
        }
        let scenario = build_scenario(&base, &spec)?;
        let digest = scenario
            .store_key()
            .ok_or_else(|| format!("base kind {base:?} has no store key"))?;
        points.push(RefinePoint { digest, scenario });
    }
    let mut known = HashSet::new();
    match v.get("known") {
        None | Some(Json::Null) => {}
        Some(Json::Arr(items)) => {
            for item in items {
                let Some(hex) = item.as_str() else {
                    return Err("\"known\" entries must be digest strings".into());
                };
                let Some(d) = Digest::from_hex(hex) else {
                    return Err(format!("\"known\" digest {hex:?} is not 32 hex chars"));
                };
                known.insert(d);
            }
        }
        Some(_) => return Err("\"known\" must be an array of digest strings".into()),
    }
    let mode = match v.get("mode").and_then(Json::as_str) {
        None | Some("full") => RefineMode::Full,
        Some("halving") => {
            let fraction = match v.get("fraction") {
                None | Some(Json::Null) => 0.25,
                Some(f) => match f.as_f64() {
                    Some(x) if x.is_finite() && x > 0.0 && x <= 1.0 => x,
                    _ => return Err("\"fraction\" must be in (0, 1]".into()),
                },
            };
            RefineMode::Halving { fraction }
        }
        Some(other) => return Err(format!("unknown refine mode {other:?}")),
    };
    let triage = match v.get("objective").and_then(Json::as_str) {
        None => None,
        Some("latency_first") => Some(TriageObjective::LatencyFirst),
        Some("energy_first") => Some(TriageObjective::EnergyFirst),
        Some(o) => return Err(format!("unknown objective {o:?}")),
    }
    .map(|objective| -> Result<TriageSpec, String> {
        let floor = match v.get("floor") {
            None | Some(Json::Null) => None,
            Some(f) => match f.as_f64() {
                Some(x) if x.is_finite() => Some(x),
                _ => return Err("\"floor\" must be a finite number".into()),
            },
        };
        Ok(TriageSpec { objective, floor })
    })
    .transpose()?;
    Ok(RefineSpec {
        base,
        points,
        known,
        mode,
        triage,
    })
}

/// Serializes one Monte-Carlo distribution digest. The checksum is a
/// hex string: `f64` cannot carry 64 significant bits, and clients use
/// it only for equality (determinism audits).
pub fn distribution_json(d: &McDistribution) -> Json {
    obj(vec![
        ("name", Json::Str(d.name.to_string())),
        ("unit", Json::Str(d.unit.to_string())),
        ("criterion", Json::Str(d.criterion.to_string())),
        ("trials", Json::Num(d.summary.trials as f64)),
        ("nan_count", Json::Num(d.summary.nan_count as f64)),
        ("mean", Json::Num(d.summary.mean)),
        ("std_dev", Json::Num(d.summary.std_dev)),
        ("min", Json::Num(d.summary.min)),
        ("max", Json::Num(d.summary.max)),
        ("p5", Json::Num(d.summary.p5)),
        ("p50", Json::Num(d.summary.p50)),
        ("p95", Json::Num(d.summary.p95)),
        ("yield_fraction", Json::Num(d.yield_fraction)),
        ("checksum", Json::Str(format!("{:016x}", d.checksum))),
    ])
}

/// Serializes one candidate with full-precision FOMs.
pub fn candidate_json(c: &Candidate) -> Json {
    obj(vec![
        ("name", Json::Str(c.name.clone())),
        ("latency_s", Json::Num(c.fom.latency_s)),
        ("energy_j", Json::Num(c.fom.energy_j)),
        ("area_mm2", Json::Num(c.fom.area_mm2)),
        ("accuracy", Json::Num(c.fom.accuracy)),
    ])
}

/// A well-formed success response line (no trailing newline).
pub fn ok_response(id: &str, kind: &'static str, body: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![
        ("id", Json::Str(id.to_string())),
        ("ok", Json::Bool(true)),
        ("kind", Json::Str(kind.to_string())),
    ];
    pairs.extend(body);
    obj(pairs).to_string()
}

/// A well-formed error response line. `retry_after_ms` is present only
/// for backpressure rejections, signalling the client to resubmit.
pub fn err_response(id: &str, code: &str, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut pairs = vec![
        ("id", Json::Str(id.to_string())),
        ("ok", Json::Bool(false)),
        ("code", Json::Str(code.to_string())),
        ("error", Json::Str(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms", Json::Num(ms as f64)));
    }
    obj(pairs).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_hdc_request() {
        let r = parse_request(r#"{"id":"a","kind":"hdc"}"#).unwrap();
        match r {
            Request::Eval {
                id,
                scenario,
                triage,
                deadline_ms,
            } => {
                assert_eq!(id, "a");
                assert_eq!(scenario.kind(), "hdc");
                assert!(triage.is_none());
                assert!(deadline_ms.is_none());
            }
            _ => panic!("not an eval request"),
        }
    }

    #[test]
    fn scenario_overrides_apply() {
        let r = parse_request(
            r#"{"id":"a","kind":"hdc","scenario":{"classes":7,"acc_sw":0.77,"tech":"n22"}}"#,
        )
        .unwrap();
        let cands = match r {
            Request::Eval { scenario, .. } => scenario.candidates().unwrap(),
            _ => panic!(),
        };
        let mut s = HdcScenario {
            classes: 7,
            acc_sw: 0.77,
            ..HdcScenario::default()
        };
        s.tech = TechNode::n22();
        use xlda_core::evaluate::Scenario as _;
        assert_eq!(cands, s.candidates().unwrap());
    }

    #[test]
    fn triage_request_carries_spec() {
        let r =
            parse_request(r#"{"id":"t","kind":"triage","objective":"energy_first","floor":0.9}"#)
                .unwrap();
        match r {
            Request::Eval { triage, .. } => {
                assert_eq!(
                    triage,
                    Some(TriageSpec {
                        objective: TriageObjective::EnergyFirst,
                        floor: Some(0.9),
                    })
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn all_eval_kinds_parse_and_dispatch() {
        for (kind, expect) in [
            ("hdc", "hdc"),
            ("mann", "mann"),
            ("edge", "edge"),
            ("tpu_nvm", "tpu_nvm"),
            ("triage", "hdc"),
            ("cam_yield_mc", "cam_yield_mc"),
            ("mann_mc", "mann_mc"),
            ("nvm_mc", "nvm_mc"),
        ] {
            let line = format!(r#"{{"id":"x","kind":"{kind}"}}"#);
            match parse_request(&line).unwrap() {
                Request::Eval { scenario, .. } => assert_eq!(scenario.kind(), expect),
                _ => panic!("{kind} did not parse as eval"),
            }
        }
    }

    #[test]
    fn refine_expands_the_grid_cross_product() {
        let r = parse_request(
            r#"{"id":"r","kind":"refine","base":"hdc","scenario":{"acc_sw":0.9},
                "grid":{"classes":[10,20,30],"tech":["n40","n22"]}}"#,
        )
        .unwrap();
        let spec = match r {
            Request::Refine { id, spec, .. } => {
                assert_eq!(id, "r");
                spec
            }
            _ => panic!("not a refine request"),
        };
        assert_eq!(spec.base, "hdc");
        assert_eq!(spec.points.len(), 6);
        assert_eq!(spec.mode, RefineMode::Full);
        assert!(spec.known.is_empty());
        // Every expanded point is distinct and its digest matches a
        // hand-built scenario's store key.
        let digests: HashSet<Digest> = spec.points.iter().map(|p| p.digest).collect();
        assert_eq!(digests.len(), 6);
        let mut want = HdcScenario {
            classes: 20,
            acc_sw: 0.9,
            ..HdcScenario::default()
        };
        want.tech = TechNode::n22();
        use xlda_core::evaluate::Scenario as _;
        assert!(digests.contains(&want.store_key().unwrap()));
    }

    #[test]
    fn refine_parses_known_mode_and_triage() {
        let hex = HdcScenario::default().store_key().unwrap().to_hex();
        let line = format!(
            r#"{{"id":"r","kind":"refine","base":"mann","grid":{{"hash_bits":[16,32]}},
                "known":["{hex}"],"mode":"halving","fraction":0.5,
                "objective":"energy_first","floor":0.8}}"#
        );
        let spec = match parse_request(&line).unwrap() {
            Request::Refine { spec, .. } => spec,
            _ => panic!(),
        };
        assert_eq!(spec.points.len(), 2);
        assert_eq!(spec.mode, RefineMode::Halving { fraction: 0.5 });
        assert!(spec.known.contains(&Digest::from_hex(&hex).unwrap()));
        assert_eq!(
            spec.triage,
            Some(TriageSpec {
                objective: TriageObjective::EnergyFirst,
                floor: Some(0.8),
            })
        );
    }

    #[test]
    fn refine_rejects_bad_requests() {
        for (line, frag) in [
            (r#"{"id":"r","kind":"refine"}"#, "base"),
            (
                r#"{"id":"r","kind":"refine","base":"warp_drive"}"#,
                "unknown refine base",
            ),
            (
                r#"{"id":"r","kind":"refine","base":"hdc","grid":{"classes":[]}}"#,
                "empty",
            ),
            (
                r#"{"id":"r","kind":"refine","base":"hdc","grid":{"classes":7}}"#,
                "array",
            ),
            (
                r#"{"id":"r","kind":"refine","base":"hdc","known":["zz"]}"#,
                "hex",
            ),
            (
                r#"{"id":"r","kind":"refine","base":"hdc","mode":"halving","fraction":0.0}"#,
                "fraction",
            ),
        ] {
            let msg = match parse_request(line) {
                Err((_, msg)) => msg,
                Ok(_) => panic!("accepted bad refine {line}"),
            };
            assert!(msg.contains(frag), "{line} -> {msg}");
        }
    }

    #[test]
    fn refine_caps_the_grid_size() {
        // 11 * 11 * 11 = 1331 > 1024.
        let axis: Vec<String> = (0..11).map(|i| (10 + i).to_string()).collect();
        let axis = axis.join(",");
        let line = format!(
            r#"{{"id":"r","kind":"refine","base":"hdc",
                "grid":{{"classes":[{axis}],"dim_in":[{axis}],"hv_dim_sw":[{axis}]}}}}"#
        );
        let msg = match parse_request(&line) {
            Err((_, msg)) => msg,
            Ok(_) => panic!("accepted an oversized grid"),
        };
        assert!(msg.contains("1331"), "{msg}");
    }

    #[test]
    fn mc_overrides_apply() {
        let r = parse_request(
            r#"{"id":"m","kind":"mann_mc","scenario":{"trials":64,"seed":9,"hash_bits":16,"relax_decades":1.5}}"#,
        )
        .unwrap();
        let eval = match r {
            Request::Eval { scenario, .. } => scenario.evaluate().unwrap(),
            _ => panic!(),
        };
        let expect = MannAccuracyMcScenario {
            mc: McParams {
                trials: 64,
                seed: 9,
                ..McParams::default()
            },
            hash_bits: 16,
            relax_decades: 1.5,
            ..MannAccuracyMcScenario::default()
        };
        assert_eq!(eval, expect.evaluate().unwrap());
        assert_eq!(eval.distributions.len(), 2);
    }

    #[test]
    fn mc_rejects_bad_population_controls() {
        for (line, frag) in [
            (
                r#"{"id":"a","kind":"nvm_mc","scenario":{"seed":-1}}"#,
                "seed",
            ),
            (
                r#"{"id":"a","kind":"cam_yield_mc","scenario":{"trials":"many"}}"#,
                "trials",
            ),
            (
                r#"{"id":"a","kind":"nvm_mc","scenario":{"vth_bits":9}}"#,
                "vth_bits",
            ),
        ] {
            let msg = match parse_request(line) {
                Err((_, msg)) => msg,
                Ok(_) => panic!("accepted bad request {line}"),
            };
            assert!(msg.contains(frag), "{line} -> {msg}");
        }
    }

    #[test]
    fn distribution_json_round_trips() {
        let s = MannAccuracyMcScenario {
            mc: McParams {
                trials: 32,
                ..McParams::default()
            },
            hash_bits: 8,
            ..MannAccuracyMcScenario::default()
        };
        use xlda_core::evaluate::Scenario as _;
        let eval = s.evaluate().unwrap();
        let j = distribution_json(&eval.distributions[0]);
        let v = Json::parse(&j.to_string()).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("accuracy"));
        assert_eq!(v.get("trials").and_then(Json::as_f64), Some(32.0));
        assert_eq!(
            v.get("checksum").and_then(Json::as_str),
            Some(format!("{:016x}", eval.distributions[0].checksum).as_str())
        );
    }

    #[test]
    fn metrics_kind_parses() {
        match parse_request(r#"{"id":"m","kind":"metrics"}"#).unwrap() {
            Request::Metrics { id } => assert_eq!(id, "m"),
            _ => panic!("metrics did not parse"),
        }
    }

    #[test]
    fn rejects_bad_requests_with_reason() {
        for (line, frag) in [
            ("{}", "missing \"kind\""),
            (r#"{"kind":"hdc"}"#, "missing \"id\""),
            (r#"{"id":"a","kind":"nope"}"#, "unknown kind"),
            (r#"{"id":"a","kind":"hdc","deadline_ms":-5}"#, "deadline_ms"),
            (
                r#"{"id":"a","kind":"hdc","scenario":{"classes":"x"}}"#,
                "classes",
            ),
            (
                r#"{"id":"a","kind":"hdc","scenario":{"tech":"n28"}}"#,
                "unknown tech node",
            ),
            (r#"{"id":"a","kind":"tpu_nvm","batch":0}"#, "batch"),
            ("not json", "malformed JSON"),
        ] {
            let msg = match parse_request(line) {
                Err((_, msg)) => msg,
                Ok(_) => panic!("accepted bad request {line}"),
            };
            assert!(msg.contains(frag), "{line} -> {msg}");
        }
    }

    #[test]
    fn response_lines_are_parseable_json() {
        let ok = ok_response("a", "hdc", vec![("candidates", Json::Arr(vec![]))]);
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response("b", "queue_full", "queue full", Some(2));
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_f64), Some(2.0));
    }
}
