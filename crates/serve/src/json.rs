//! Minimal JSON value, parser, and emitter.
//!
//! The workspace's vendored-deps policy means `serde` resolves to a
//! no-op shim, so the wire format is hand-rolled (precedent: the
//! `sweep_bench` micro-parser in `xlda-bench`). This is a full
//! recursive-descent parser rather than a field scanner because the
//! service must reject malformed requests with a useful error instead
//! of misreading them.
//!
//! Numbers are `f64` throughout. Emission uses Rust's `{}` formatting,
//! which prints the shortest decimal that round-trips to the same bits;
//! parsing uses `str::parse::<f64>`, which recovers those bits exactly.
//! That pair is what gives the service bit-exact FOM parity with direct
//! library calls (asserted in `tests/serve_parity.rs`).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, first match wins on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a whole UTF-8 sequence through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes and quotes a string for JSON output.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // Non-finite numbers have no JSON spelling; FOMs are
            // validated finite upstream, so this only fires on
            // diagnostics and degrades to null rather than emitting
            // an unparseable token. The emitter is shared with the
            // observability exporters so traces and responses agree
            // bit-for-bit.
            Json::Num(x) => xlda_obs::export::write_f64(f, *x),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Convenience builder for object literals.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u00e9\"").unwrap(),
            Json::Str("a\nbé".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{a:1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for &x in &[
            1.0,
            -0.0,
            std::f64::consts::PI,
            2.2250738585072014e-308,
            1.7976931348623157e308,
            6.02e23,
            1e-15,
            0.1 + 0.2,
        ] {
            let emitted = Json::Num(x).to_string();
            let back = Json::parse(&emitted).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {emitted}");
        }
    }

    #[test]
    fn string_round_trips_with_escapes() {
        let s = "quote\" slash\\ tab\t newline\n unicode é \u{1F600} ctl\u{0001}";
        let emitted = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&emitted).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pair_escape() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn usize_coercion_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(42.0).as_usize(), Some(42));
        assert_eq!(Json::Num(42.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
