//! The readiness-driven TCP transport (unix only): one thread, one
//! poller, every socket nonblocking.
//!
//! Replaces the thread-per-connection transport on unix. The loop owns
//! the listener, a self-wake pipe, and a slab of connections keyed by
//! poller token:
//!
//! - token 0 — the listener; readable means `accept` until
//!   `WouldBlock`, treating aborted/reset/EMFILE-class failures as
//!   retryable instead of fatal;
//! - token 1 — the waker read end; workers poke it when a response
//!   spilled to a backlog (write interest needed) or a half-closed
//!   connection finished its last job (close needed), and `shutdown`
//!   pokes it to start the drain;
//! - tokens ≥ 2 — connections, at `token - 2` in the slab.
//!
//! Requests admitted here are answered by worker threads writing
//! straight to the socket (see [`crate::conn::ConnSink`]); the loop
//! only ever touches a connection's write side to drain a backlog, so
//! the common-case response path crosses no extra thread.
//!
//! On `shutdown` the loop stops accepting, lets the workers finish the
//! queue, flushes every backlog, and returns once all sinks are idle —
//! the same no-admitted-request-dropped guarantee as the stdio
//! transport.

use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use crate::conn::{Conn, FillOutcome, Waker};
use crate::poll::{Interest, Poller};
use crate::protocol;
use crate::server::{self, loop_support as sup, ResponseSink, Shared};

const LISTENER: usize = 0;
const WAKER: usize = 1;
const CONN_BASE: usize = 2;

/// Idle tick: an upper bound on how stale the loop's view of the drain
/// flag can get, not a latency floor — anything actionable arrives as
/// an fd event or a waker poke.
const TICK: Duration = Duration::from_millis(50);

/// One live connection plus the interest currently registered for it,
/// so interest churn costs a syscall only when it changes.
struct Slot {
    conn: Conn,
    interest: Interest,
}

pub(crate) fn run(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let waker = Waker::new(wake_tx);
    sup::install_waker(shared, waker.clone());
    let result = run_inner(shared, &listener, &waker, &wake_rx);
    sup::clear_waker(shared);
    result
}

fn run_inner(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    waker: &Waker,
    wake_rx: &UnixStream,
) -> io::Result<()> {
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;
    poller.register(wake_rx.as_raw_fd(), WAKER, Interest::READ)?;
    let max_frame = sup::config(shared).max_frame;
    let mut slots: Vec<Option<Slot>> = Vec::new();
    let mut events = Vec::new();
    let mut accepting = true;

    loop {
        events.clear();
        poller.wait(&mut events, Some(TICK))?;

        for ev in events.iter().copied() {
            match ev.token {
                LISTENER => {
                    accept_ready(shared, listener, waker, &mut poller, &mut slots, max_frame)?
                }
                WAKER => drain_waker(wake_rx),
                token => {
                    let idx = token - CONN_BASE;
                    // Stale token: the slot closed earlier this tick.
                    let Some(slot) = slots.get_mut(idx).and_then(Option::as_mut) else {
                        continue;
                    };
                    if ev.writable {
                        slot.conn.sink.flush_backlog();
                    }
                    let close = (ev.readable && read_ready(shared, &mut slot.conn)) || ev.hangup;
                    if close {
                        close_slot(shared, &mut poller, &mut slots, idx);
                    }
                }
            }
        }

        // Sweep: close drained connections (job_finished wakes us with
        // no token) and re-sync registered interest with sink state.
        for idx in 0..slots.len() {
            let Some(slot) = slots[idx].as_mut() else {
                continue;
            };
            if slot.conn.drained() {
                close_slot(shared, &mut poller, &mut slots, idx);
                continue;
            }
            let desired = Interest {
                readable: !slot.conn.half_closed,
                writable: slot.conn.sink.wants_write(),
            };
            if desired != slot.interest {
                poller.modify(slot.conn.fd(), CONN_BASE + idx, desired)?;
                slot.interest = desired;
            }
        }

        if sup::draining(shared) {
            if accepting {
                accepting = false;
                poller.deregister(listener.as_raw_fd())?;
            }
            // Exit once nothing is owed: the queue is empty and every
            // connection has no job in flight and no unflushed bytes.
            let owed =
                sup::queue_len(shared) > 0 || slots.iter().flatten().any(|s| !s.conn.sink.idle());
            if !owed {
                return Ok(());
            }
        }
    }
}

/// Accepts until the listener would block. Aborted/reset peers and
/// fd/memory exhaustion are retryable — back off briefly and leave the
/// rest of the backlog for the next readiness event rather than
/// killing the server.
fn accept_ready(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    waker: &Waker,
    poller: &mut Poller,
    slots: &mut Vec<Option<Slot>>,
    max_frame: usize,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => register_conn(shared, waker, poller, slots, stream, max_frame),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if server::accept_retryable(&e) => {
                std::thread::sleep(Duration::from_millis(1));
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

fn register_conn(
    shared: &Arc<Shared>,
    waker: &Waker,
    poller: &mut Poller,
    slots: &mut Vec<Option<Slot>>,
    stream: TcpStream,
    max_frame: usize,
) {
    // Request/response lines are exactly the traffic Nagle + delayed
    // ACK penalizes; and every read/write must be nonblocking.
    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let idx = slots.iter().position(Option::is_none).unwrap_or_else(|| {
        slots.push(None);
        slots.len() - 1
    });
    let token = CONN_BASE + idx;
    let Ok(conn) = Conn::new(stream, token, max_frame, waker.clone()) else {
        return;
    };
    if poller.register(conn.fd(), token, Interest::READ).is_ok() {
        sup::connection_opened(shared);
        slots[idx] = Some(Slot {
            conn,
            interest: Interest::READ,
        });
    }
}

/// One read pass over a readable connection: fill, frame, dispatch.
/// Returns `true` when the connection must be closed now (broken
/// socket or oversized frame); EOF only half-closes — queued responses
/// still go back before [`Conn::drained`] retires the slot.
fn read_ready(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    let outcome = conn.fill();
    if matches!(outcome, FillOutcome::Broken) {
        conn.sink.poison();
        return true;
    }
    let sink: Arc<dyn ResponseSink> = conn.sink.clone();
    while let Some(frame) = conn.next_line() {
        match frame {
            Ok(line) => {
                if !line.trim().is_empty() {
                    server::handle_line_from(shared, line, &sink, true);
                }
            }
            // A malformed frame fails alone; the stream stays framed,
            // so the connection remains usable.
            Err(()) => sink.send(&protocol::err_response(
                "",
                "bad_request",
                "request frame is not valid UTF-8",
                None,
            )),
        }
    }
    conn.compact();
    if conn.frame_overflow() {
        sink.send(&protocol::err_response(
            "",
            "frame_too_large",
            &format!("request frame exceeds {} bytes", conn.max_frame()),
            None,
        ));
        // The framing cursor is unrecoverable past this point; flush
        // what the socket will take, then drop the connection.
        conn.sink.flush_backlog();
        conn.sink.poison();
        return true;
    }
    if matches!(outcome, FillOutcome::Eof) {
        conn.half_closed = true;
    }
    false
}

fn close_slot(shared: &Arc<Shared>, poller: &mut Poller, slots: &mut [Option<Slot>], idx: usize) {
    if let Some(slot) = slots[idx].take() {
        let _ = poller.deregister(slot.conn.fd());
        sup::connection_closed(shared);
    }
}

/// Swallows pending wake bytes; any number of pokes collapse into one
/// loop iteration.
fn drain_waker(mut wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    while matches!(wake_rx.read(&mut buf), Ok(n) if n > 0) {}
}
