//! Hand-rolled readiness polling: epoll on Linux, POSIX `poll()`
//! elsewhere on unix.
//!
//! The workspace's vendored-deps policy rules out `mio`/`tokio`, and the
//! serving tier needs exactly one primitive from them: "block until one
//! of these fds is readable/writable". Rust's std links libc on every
//! unix target, so the two syscall families are declared directly —
//! no crate, no runtime, ~150 lines.
//!
//! Both backends present the same level-triggered interface:
//!
//! - [`Poller::register`] / [`Poller::modify`] / [`Poller::deregister`]
//!   associate an fd with a caller-chosen `usize` token and an
//!   [`Interest`] (readable and/or writable);
//! - [`Poller::wait`] blocks until at least one registered fd is ready
//!   (or the timeout lapses) and appends [`Event`]s.
//!
//! Level-triggered (the epoll default) rather than edge-triggered on
//! purpose: a short read that leaves bytes buffered re-arms on the next
//! `wait`, so the event loop can bound per-connection work per tick
//! without bookkeeping a readiness cache — worth more than the syscall
//! it saves at this request size. The waker is a nonblocking
//! `UnixStream` pair (std, portable) rather than an eventfd, registered
//! by the event loop like any other fd.

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness transitions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest: the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest: a connection with a backlogged write buffer.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Readable now (includes EOF: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup condition; the fd should be torn down after the
    /// pending bytes (if any) are consumed.
    pub hangup: bool,
}

fn last_errno() -> io::Error {
    io::Error::last_os_error()
}

/// Retries a syscall interrupted by a signal.
macro_rules! retry_eintr {
    ($e:expr) => {
        loop {
            let r = $e;
            if r >= 0 {
                break r;
            }
            let err = last_errno();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    };
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Kernel epoll_event. Packed on x86-64 (the kernel ABI there), the
    /// natural layout everywhere else — matching glibc's definition.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// epoll-backed poller. The kernel keeps the interest set; each
    /// `wait` is one syscall regardless of registration count.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall; the returned fd is owned here.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_errno());
            }
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            // RDHUP rides with read interest only: a write-only
            // registration (half-closed peer, backlogged responses)
            // must not level-trigger forever on the persistent
            // peer-shutdown condition.
            let mut ev = EpollEvent {
                events: if interest.readable {
                    EPOLLIN | EPOLLRDHUP
                } else {
                    0
                } | if interest.writable { EPOLLOUT } else { 0 },
                data: token as u64,
            };
            // SAFETY: `ev` outlives the call; fd validity is the caller's
            // contract (registered fds are owned by the event loop).
            let r = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if r < 0 {
                return Err(last_errno());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = timeout
                .map(|d| d.as_millis().min(c_int::MAX as u128) as c_int)
                .unwrap_or(-1);
            // SAFETY: `buf` is a live, correctly-sized out array.
            let n = retry_eintr!(unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            });
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            // A full buffer means more events may be pending; grow so a
            // busy server converges to one syscall per tick.
            if n as usize == self.buf.len() {
                let len = self.buf.len() * 2;
                self.buf.resize(len, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned and closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::os::raw::{c_short, c_ulong};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll()`-backed fallback: the interest set lives in userspace and
    /// is rebuilt into a `pollfd` array per wait — O(fds) per tick, fine
    /// for the connection counts a single non-Linux dev box sees.
    pub struct Poller {
        fds: Vec<(RawFd, usize, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self { fds: Vec::new() })
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.fds.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            match self.fds.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.fds.retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut pollfds: Vec<PollFd> = self
                .fds
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms = timeout
                .map(|d| d.as_millis().min(c_int::MAX as u128) as c_int)
                .unwrap_or(-1);
            // SAFETY: `pollfds` is a live array of nfds entries.
            retry_eintr!(unsafe {
                poll(pollfds.as_mut_ptr(), pollfds.len() as c_ulong, timeout_ms)
            });
            for (pfd, &(_, token, _)) in pollfds.iter().zip(&self.fds) {
                if pfd.revents != 0 {
                    events.push(Event {
                        token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_fires_on_buffered_bytes() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no bytes yet: {events:?}");

        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread bytes re-arm the next wait.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 1);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained fd must go quiet: {events:?}");
    }

    #[test]
    fn interest_modification_and_deregistration_apply() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        // Write interest on an empty socket buffer fires immediately.
        poller
            .register(b.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Dropping write interest silences it.
        poller.modify(b.as_raw_fd(), 1, Interest::READ).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");

        poller.deregister(b.as_raw_fd()).unwrap();
        drop(a); // hangup on a deregistered fd must not surface
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn hangup_reports_on_peer_close() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.token == 3 && (e.readable || e.hangup)),
            "peer close must wake the poller: {events:?}"
        );
    }
}
